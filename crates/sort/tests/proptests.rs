//! Property tests for the sort kernels: merges flatten to sorted output,
//! samplesort/mergesort agree with std, stability holds.

use papar_sort::merge::{kway_merge, kway_merge_ord, merge_into};
use papar_sort::parallel;
use proptest::prelude::*;

proptest! {
    /// Merging k sorted runs gives the sorted multiset union.
    #[test]
    fn kway_merge_is_sorted_union(runs in prop::collection::vec(
        prop::collection::vec(any::<i32>(), 0..40), 0..6)) {
        let sorted_runs: Vec<Vec<i32>> = runs.iter().map(|r| {
            let mut v = r.clone();
            v.sort_unstable();
            v
        }).collect();
        let merged = kway_merge(&sorted_runs, |a, b| a.cmp(b));
        let mut expect: Vec<i32> = runs.concat();
        expect.sort_unstable();
        prop_assert_eq!(&merged, &expect);
        prop_assert_eq!(kway_merge_ord(&sorted_runs), expect);
    }

    /// Two-way merge keeps ties in left-then-right order.
    #[test]
    fn merge_into_is_stable(a in prop::collection::vec(0u8..8, 0..30),
                            b in prop::collection::vec(0u8..8, 0..30)) {
        let mut sa: Vec<(u8, char)> = a.iter().map(|&k| (k, 'a')).collect();
        let mut sb: Vec<(u8, char)> = b.iter().map(|&k| (k, 'b')).collect();
        sa.sort_by_key(|&(k, _)| k);
        sb.sort_by_key(|&(k, _)| k);
        let mut out = Vec::new();
        merge_into(&sa, &sb, &mut out, |x, y| x.0.cmp(&y.0));
        prop_assert!(out.windows(2).all(|w| w[0].0 < w[1].0
            || (w[0].0 == w[1].0 && !(w[0].1 == 'b' && w[1].1 == 'a'))));
        prop_assert_eq!(out.len(), sa.len() + sb.len());
    }

    /// The parallel sorts agree with the standard library for every thread
    /// count.
    #[test]
    fn parallel_sorts_agree_with_std(mut v in prop::collection::vec(any::<u64>(), 0..5000),
                                     threads in 1usize..5) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut stable = v.clone();
        parallel::par_sort_by(&mut stable, threads, |a, b| a.cmp(b));
        prop_assert_eq!(&stable, &expect);
        parallel::par_sort_unstable_by(&mut v, threads, |a, b| a < b);
        prop_assert_eq!(&v, &expect);
    }

    /// Stability of the stable path: equal keys keep insertion order.
    #[test]
    fn par_sort_by_is_stable(keys in prop::collection::vec(0u8..6, 0..5000),
                             threads in 1usize..5) {
        let mut v: Vec<(u8, usize)> = keys.into_iter().enumerate()
            .map(|(i, k)| (k, i)).collect();
        parallel::par_sort_by(&mut v, threads, |a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
