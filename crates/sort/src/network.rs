//! Compare–exchange sorting networks (Batcher odd–even mergesort).
//!
//! ASPaS builds its in-register sorters from sorting networks because every
//! comparison pair is data-independent, which vectorizes. The same property
//! makes the networks branch-predictable scalar code here. Networks are
//! generated once per size by Batcher's odd–even merge construction and
//! cached; [`sort_small`] applies them for slices up to
//! [`MAX_NETWORK_SIZE`] elements.
//!
//! Sorting networks are *not* stable; the stable sort paths use insertion
//! sort for their base case instead.

use std::cmp::Ordering;
use std::sync::OnceLock;

/// Largest slice length the precomputed networks cover.
pub const MAX_NETWORK_SIZE: usize = 32;

/// Generate Batcher's odd–even mergesort network for `n` inputs as a list
/// of compare–exchange pairs `(i, j)` with `i < j`.
///
/// Batcher's construction is defined for power-of-two sizes; for other `n`
/// the network for the next power of two is generated and every comparator
/// touching an index `>= n` is dropped. That is equivalent to padding the
/// input with `+inf` sentinels (a comparator whose upper lane holds `+inf`
/// never swaps), so the truncated network still sorts.
pub fn batcher_network(n: usize) -> Vec<(usize, usize)> {
    if n < 2 {
        return Vec::new();
    }
    let p = n.next_power_of_two();
    let mut pairs = Vec::new();
    sort_rec(0, p, &mut pairs);
    pairs.retain(|&(_, j)| j < n);
    pairs
}

fn sort_rec(lo: usize, n: usize, pairs: &mut Vec<(usize, usize)>) {
    if n > 1 {
        let m = n / 2;
        sort_rec(lo, m, pairs);
        sort_rec(lo + m, m, pairs);
        merge_rec(lo, n, 1, pairs);
    }
}

/// Batcher odd–even merge of the two sorted halves of the power-of-two
/// range starting at `lo` with `n` elements, comparing elements `r` apart.
fn merge_rec(lo: usize, n: usize, r: usize, pairs: &mut Vec<(usize, usize)>) {
    let m = r * 2;
    if m < n {
        merge_rec(lo, n, m, pairs);
        merge_rec(lo + r, n, m, pairs);
        let mut i = lo + r;
        while i + r <= lo + n - m {
            pairs.push((i, i + r));
            i += m;
        }
    } else {
        pairs.push((lo, lo + r));
    }
}

pub(crate) fn cached_network(n: usize) -> &'static [(usize, usize)] {
    static NETWORKS: OnceLock<Vec<Vec<(usize, usize)>>> = OnceLock::new();
    let all = NETWORKS.get_or_init(|| (0..=MAX_NETWORK_SIZE).map(batcher_network).collect());
    &all[n]
}

/// Sort a small slice in place with a precomputed network.
///
/// # Panics
///
/// Panics if `v.len() > MAX_NETWORK_SIZE`; callers dispatch on length.
pub fn sort_small<T, F>(v: &mut [T], mut less: F)
where
    F: FnMut(&T, &T) -> bool,
{
    assert!(
        v.len() <= MAX_NETWORK_SIZE,
        "sort_small called with {} > {MAX_NETWORK_SIZE} elements",
        v.len()
    );
    for &(i, j) in cached_network(v.len()) {
        if less(&v[j], &v[i]) {
            v.swap(i, j);
        }
    }
}

/// Sort a small slice by a comparator.
pub fn sort_small_by<T, F>(v: &mut [T], mut cmp: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    sort_small(v, |a, b| cmp(a, b) == Ordering::Less);
}

/// Stable insertion sort, the base case of the stable mergesort paths.
pub fn insertion_sort_by<T, F>(v: &mut [T], mut cmp: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    for i in 1..v.len() {
        let mut j = i;
        while j > 0 && cmp(&v[j - 1], &v[j]) == Ordering::Greater {
            v.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 0–1 principle: a comparison network sorts all inputs iff it
    /// sorts every binary input. Exhaustively check sizes up to 12.
    #[test]
    fn zero_one_principle_exhaustive() {
        for n in 0..=12usize {
            for mask in 0..(1u32 << n) {
                let mut v: Vec<u32> = (0..n).map(|i| (mask >> i) & 1).collect();
                sort_small(&mut v, |a, b| a < b);
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "network n={n} failed on mask {mask:b}"
                );
            }
        }
    }

    #[test]
    fn sorts_random_inputs_at_every_size() {
        // Deterministic LCG so the test needs no rand dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 0..=MAX_NETWORK_SIZE {
            for _ in 0..50 {
                let mut v: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_small(&mut v, |a, b| a < b);
                assert_eq!(v, expect, "n={n}");
            }
        }
    }

    #[test]
    fn comparator_variant_sorts_descending() {
        let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
        sort_small_by(&mut v, |a, b| b.cmp(a));
        assert_eq!(v, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "sort_small called with")]
    fn oversized_slice_panics() {
        let mut v = vec![0u8; MAX_NETWORK_SIZE + 1];
        sort_small(&mut v, |a, b| a < b);
    }

    #[test]
    fn insertion_sort_is_stable() {
        // Pairs sorted by first element only; second element records the
        // original order.
        let mut v = vec![(2, 0), (1, 1), (2, 2), (1, 3), (2, 4)];
        insertion_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        assert_eq!(v, vec![(1, 1), (1, 3), (2, 0), (2, 2), (2, 4)]);
    }

    #[test]
    fn network_sizes_are_reasonable() {
        // Batcher's construction is O(n log^2 n) comparators; spot-check a
        // couple of known counts (n=4 -> 5, n=8 -> 19).
        assert_eq!(batcher_network(0).len(), 0);
        assert_eq!(batcher_network(1).len(), 0);
        assert_eq!(batcher_network(2).len(), 1);
        assert_eq!(batcher_network(4).len(), 5);
        assert_eq!(batcher_network(8).len(), 19);
    }

    #[test]
    fn network_pairs_are_well_formed() {
        for n in 2..=MAX_NETWORK_SIZE {
            for (i, j) in batcher_network(n) {
                assert!(i < j && j < n, "bad pair ({i},{j}) for n={n}");
            }
        }
    }
}
