//! Multi-threaded sorts: parallel mergesort (stable and unstable) and
//! samplesort.
//!
//! This is the ASPaS top level: split the input into one run per thread,
//! sort runs independently (sorting-network base case for the unstable
//! path, insertion-sort base case for the stable path), then do a multiway
//! merge. A samplesort variant partitions by sampled splitters first, which
//! is the same mechanism the MapReduce sampler uses to pick reduce-key
//! ranges.
//!
//! The thread count is an explicit parameter rather than a global pool:
//! inside the simulated cluster every *node* runs its own sorts with its
//! own core budget, so parallelism must stay within the node's allotment.

use std::cmp::Ordering;

use crate::merge::{kway_merge, merge_into};
use crate::network::{insertion_sort_by, sort_small, MAX_NETWORK_SIZE};

/// Below this length sorting sequentially beats spawning threads.
pub(crate) const PARALLEL_CUTOFF: usize = 4096;

/// Sequential stable mergesort with an insertion-sort base case.
pub fn mergesort_by<T: Clone, F>(v: &mut [T], mut cmp: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    let mut buf: Vec<T> = Vec::with_capacity(v.len());
    mergesort_rec(v, &mut buf, &mut cmp);
}

fn mergesort_rec<T: Clone, F>(v: &mut [T], buf: &mut Vec<T>, cmp: &mut F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    if v.len() <= MAX_NETWORK_SIZE {
        insertion_sort_by(v, &mut *cmp);
        return;
    }
    let mid = v.len() / 2;
    mergesort_rec(&mut v[..mid], buf, cmp);
    mergesort_rec(&mut v[mid..], buf, cmp);
    let (a, b) = v.split_at(mid);
    merge_into(a, b, buf, &mut *cmp);
    v.clone_from_slice(buf);
}

/// Sequential unstable quicksort with a sorting-network base case (the
/// scalar analog of ASPaS's SIMD in-register sorters).
///
/// Partitioning is three-way (Dutch national flag), so inputs dominated by
/// duplicate keys — common for partitioning workloads like sequence lengths
/// — cost O(n) per distinct value instead of degrading quadratically.
/// Recursion always descends into the smaller side and loops on the larger,
/// bounding stack depth at O(log n).
pub fn quicksort_by<T, F>(mut v: &mut [T], less: &F)
where
    T: Clone,
    F: Fn(&T, &T) -> bool,
{
    loop {
        if v.len() <= MAX_NETWORK_SIZE {
            sort_small(v, |a, b| less(a, b));
            return;
        }
        let pivot = v[median_of_three(v, less)].clone();
        let (mut lt, mut i, mut gt) = (0usize, 0usize, v.len());
        while i < gt {
            if less(&v[i], &pivot) {
                v.swap(lt, i);
                lt += 1;
                i += 1;
            } else if less(&pivot, &v[i]) {
                gt -= 1;
                v.swap(i, gt);
            } else {
                i += 1;
            }
        }
        // Elements in v[lt..gt] equal the pivot and are already placed.
        if lt < v.len() - gt {
            quicksort_by(&mut v[..lt], less);
            v = &mut v[gt..];
        } else {
            quicksort_by(&mut v[gt..], less);
            v = &mut v[..lt];
        }
    }
}

fn median_of_three<T, F>(v: &[T], less: &F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let (a, b, c) = (0, v.len() / 2, v.len() - 1);
    let lt = |i: usize, j: usize| less(&v[i], &v[j]);
    if lt(a, b) {
        if lt(b, c) {
            b
        } else if lt(a, c) {
            c
        } else {
            a
        }
    } else if lt(a, c) {
        a
    } else if lt(b, c) {
        c
    } else {
        b
    }
}

/// Split `v` into `n` contiguous chunks of near-equal length.
fn chunk_bounds(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.max(1);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let sz = base + usize::from(i < extra);
        out.push((start, start + sz));
        start += sz;
    }
    out
}

/// Stable parallel sort by comparator.
///
/// Runs are sorted on `threads` OS threads, then merged stably in run-index
/// order, so the whole sort is stable.
pub fn par_sort_by<T, F>(v: &mut Vec<T>, threads: usize, cmp: F)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if v.len() < PARALLEL_CUTOFF || threads <= 1 {
        mergesort_by(v, &cmp);
        return;
    }
    let bounds = chunk_bounds(v.len(), threads);
    {
        let mut rest: &mut [T] = v;
        crossbeam::thread::scope(|s| {
            for &(start, end) in &bounds {
                let len = end - start;
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let cmp = &cmp;
                s.spawn(move |_| mergesort_by(chunk, cmp));
            }
        })
        .expect("sort worker panicked");
    }
    let runs: Vec<Vec<T>> = bounds
        .iter()
        .map(|&(start, end)| v[start..end].to_vec())
        .collect();
    *v = kway_merge(&runs, |a, b| cmp(a, b));
}

/// Unstable parallel sort by a strict-less predicate, using samplesort:
/// sample splitters, bucket the input, sort buckets in parallel, and
/// concatenate. Falls back to sequential quicksort on small inputs.
pub fn par_sort_unstable_by<T, F>(v: &mut Vec<T>, threads: usize, less: F)
where
    T: Clone + Send,
    F: Fn(&T, &T) -> bool + Sync,
{
    if v.len() < PARALLEL_CUTOFF || threads <= 1 {
        quicksort_by(v, &less);
        return;
    }
    // Oversample: 32 candidates per bucket gives well-balanced buckets with
    // high probability (the same regime the paper's reducer sampler uses).
    let buckets = threads;
    let oversample = 32;
    let step = (v.len() / (buckets * oversample)).max(1);
    let mut sample: Vec<T> = v.iter().step_by(step).cloned().collect();
    quicksort_by(&mut sample, &less);
    let splitters: Vec<T> = (1..buckets)
        .map(|i| sample[i * sample.len() / buckets].clone())
        .collect();

    let mut parts: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
    for item in v.drain(..) {
        // First bucket whose splitter is not less than the item.
        let b = splitters.partition_point(|s| less(s, &item));
        parts[b].push(item);
    }
    // The calling thread sorts the first bucket itself while the helpers
    // run: no spawned thread sits idle waiting for it, and the caller's
    // CPU time reflects its 1/threads share of the work (which is what
    // the simulated cluster's per-task compute accounting samples).
    let (first, rest) = parts.split_at_mut(1);
    crossbeam::thread::scope(|s| {
        for part in rest.iter_mut() {
            let less = &less;
            s.spawn(move |_| quicksort_by(part, less));
        }
        quicksort_by(&mut first[0], &less);
    })
    .expect("sort worker panicked");
    for part in parts {
        v.extend(part);
    }
}

/// Stable parallel sort by an extracted key (the PaPar sort operator's
/// entry point: sort records by one field).
pub fn sort_by_key<T, K, F>(v: &mut Vec<T>, threads: usize, key: F)
where
    T: Clone + Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by(v, threads, |a, b| key(a).cmp(&key(b)));
}

/// Unstable parallel sort by an extracted key.
pub fn sort_unstable_by_key<T, K, F>(v: &mut Vec<T>, threads: usize, key: F)
where
    T: Clone + Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_unstable_by(v, threads, |a, b| key(a) < key(b));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_vec(n: usize, seed: u64, modulo: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n).map(|_| xorshift(&mut s) % modulo).collect()
    }

    #[test]
    fn mergesort_matches_std() {
        for n in [0, 1, 2, 33, 100, 1000] {
            let mut v = random_vec(n, 42, 1 << 20);
            let mut expect = v.clone();
            expect.sort();
            mergesort_by(&mut v, |a, b| a.cmp(b));
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn mergesort_is_stable() {
        let mut v: Vec<(u64, usize)> = random_vec(500, 7, 10)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i))
            .collect();
        mergesort_by(&mut v, |a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn quicksort_matches_std() {
        for n in [0, 1, 2, 33, 100, 1000] {
            let mut v = random_vec(n, 99, 1 << 20);
            let mut expect = v.clone();
            expect.sort_unstable();
            quicksort_by(&mut v, &|a, b| a < b);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn quicksort_handles_duplicates_and_sorted_input() {
        let mut v = vec![5u64; 2000];
        quicksort_by(&mut v, &|a, b| a < b);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut asc: Vec<u64> = (0..2000).collect();
        quicksort_by(&mut asc, &|a, b| a < b);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let mut desc: Vec<u64> = (0..2000).rev().collect();
        quicksort_by(&mut desc, &|a, b| a < b);
        assert!(desc.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_sort_matches_std_across_thread_counts() {
        for threads in [1, 2, 4, 8] {
            let mut v = random_vec(20_000, 3, 1 << 30);
            let mut expect = v.clone();
            expect.sort();
            par_sort_by(&mut v, threads, |a, b| a.cmp(b));
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_sort_is_stable() {
        let mut v: Vec<(u64, usize)> = random_vec(30_000, 11, 100)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i))
            .collect();
        par_sort_by(&mut v, 4, |a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "stability violated at {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn samplesort_matches_std() {
        for threads in [1, 2, 4, 8] {
            let mut v = random_vec(20_000, 17, 1 << 30);
            let mut expect = v.clone();
            expect.sort_unstable();
            par_sort_unstable_by(&mut v, threads, |a, b| a < b);
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn samplesort_with_heavy_duplicates() {
        let mut v = random_vec(50_000, 23, 3);
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sort_unstable_by(&mut v, 8, |a, b| a < b);
        assert_eq!(v, expect);
    }

    #[test]
    fn key_based_entry_points() {
        let mut v: Vec<(u64, &str)> = vec![(3, "c"), (1, "a"), (2, "b")];
        sort_by_key(&mut v, 2, |t| t.0);
        assert_eq!(v, vec![(1, "a"), (2, "b"), (3, "c")]);
        let mut w = random_vec(10_000, 31, 1000);
        sort_unstable_by_key(&mut w, 4, |&x| std::cmp::Reverse(x));
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn chunk_bounds_cover_input() {
        for (len, n) in [(10, 3), (0, 4), (7, 7), (5, 9), (100, 1)] {
            let b = chunk_bounds(len, n);
            assert_eq!(b.len(), n.max(1));
            assert_eq!(b[0].0, 0);
            assert_eq!(b.last().unwrap().1, len);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }
}
