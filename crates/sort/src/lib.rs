//! ASPaS-style sorting kernels for the PaPar sort operator.
//!
//! The paper attributes part of PaPar's single-node advantage to ASPaS
//! (Hou et al., ICS'15), "a highly optimized mergesort implementation on
//! multicore processors" built from SIMD sorting networks and multiway
//! merges. This crate reproduces that design in safe Rust:
//!
//! * [`network`] — branch-free compare–exchange sorting networks (Batcher
//!   odd–even mergesort) for small fixed sizes, the role ASPaS gives to its
//!   SIMD intra-register sorters,
//! * [`merge`] — two-way and k-way merges,
//! * [`parallel`] — multi-threaded mergesort (stable and unstable) and a
//!   samplesort, the shared-memory sorts each simulated cluster node runs
//!   inside its map/reduce stages, and
//! * [`packed`] — widened monomorphic kernels over packed 128-bit keys
//!   (branchless compare–exchange, unrolled network base case), the hot
//!   path of the engine's zero-copy reduce sort.
//!
//! The public entry points are [`parallel::sort_by_key`] /
//! [`parallel::sort_unstable_by_key`]; everything else is exposed for tests
//! and benchmarks.

pub mod merge;
pub mod network;
pub mod packed;
pub mod parallel;

pub use parallel::{sort_by_key, sort_unstable_by_key};
