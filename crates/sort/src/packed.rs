//! Widened sort kernels over packed 128-bit keys.
//!
//! The engine's zero-copy reduce path compresses each shuffled pair into a
//! single `u128` — reducer id, order-preserving key prefix, and scan index
//! packed so that *unsigned integer comparison equals the shuffle order*
//! (see the engine's packing layout). Sorting those is the scalar analog of
//! ASPaS operating on vector registers: every element is a fixed-width POD
//! in two machine words, comparisons are register compares instead of
//! `Value::cmp` calls chasing heap pointers, and the compare–exchange
//! primitive is branchless (`min`/xor — compiles to `cmp`/`cmov` chains, no
//! data-dependent branches), so the sorting-network base case runs at full
//! pipeline width.
//!
//! Everything here is monomorphic on `u128`: the samplesort's splitter
//! sampling and bucket moves — `Clone` calls for generic element types —
//! become plain register copies.

use crate::network::{self, MAX_NETWORK_SIZE};
use crate::parallel::PARALLEL_CUTOFF;

/// Branchless compare–exchange: after the call `v[i] <= v[j]`. The xor
/// trick writes both lanes unconditionally, so there is no data-dependent
/// branch for the predictor to miss on random keys.
#[inline(always)]
pub fn compare_exchange(v: &mut [u128], i: usize, j: usize) {
    let (a, b) = (v[i], v[j]);
    let lo = if a < b { a } else { b };
    v[i] = lo;
    v[j] = a ^ b ^ lo;
}

/// Sort up to [`MAX_NETWORK_SIZE`] packed keys with the cached Batcher
/// network, unrolled four comparators at a time. Comparator pairs are
/// data-independent within a Batcher round, so the unrolled exchanges
/// pipeline without serializing on a branch per comparator.
///
/// # Panics
///
/// Panics if `v.len() > MAX_NETWORK_SIZE`; callers dispatch on length.
pub fn sort_small_packed(v: &mut [u128]) {
    assert!(
        v.len() <= MAX_NETWORK_SIZE,
        "sort_small_packed called with {} > {MAX_NETWORK_SIZE} elements",
        v.len()
    );
    let pairs = network::cached_network(v.len());
    let mut quads = pairs.chunks_exact(4);
    for quad in &mut quads {
        compare_exchange(v, quad[0].0, quad[0].1);
        compare_exchange(v, quad[1].0, quad[1].1);
        compare_exchange(v, quad[2].0, quad[2].1);
        compare_exchange(v, quad[3].0, quad[3].1);
    }
    for &(i, j) in quads.remainder() {
        compare_exchange(v, i, j);
    }
}

/// Sequential sort of packed keys: three-way quicksort (duplicate prefixes
/// are the common case for partitioning workloads) with the branchless
/// network as base case. Monomorphic `u128` throughout — the pivot is a
/// register copy, not a `clone`.
pub fn sort_packed(mut v: &mut [u128]) {
    loop {
        if v.len() <= MAX_NETWORK_SIZE {
            sort_small_packed(v);
            return;
        }
        let pivot = v[median_of_three(v)];
        let (mut lt, mut i, mut gt) = (0usize, 0usize, v.len());
        while i < gt {
            let x = v[i];
            if x < pivot {
                v.swap(lt, i);
                lt += 1;
                i += 1;
            } else if x > pivot {
                gt -= 1;
                v.swap(i, gt);
            } else {
                i += 1;
            }
        }
        // Recurse into the smaller side, loop on the larger: O(log n) stack.
        if lt < v.len() - gt {
            sort_packed(&mut v[..lt]);
            v = &mut v[gt..];
        } else {
            sort_packed(&mut v[gt..]);
            v = &mut v[..lt];
        }
    }
}

fn median_of_three(v: &[u128]) -> usize {
    let (a, b, c) = (0, v.len() / 2, v.len() - 1);
    let lt = |i: usize, j: usize| v[i] < v[j];
    if lt(a, b) {
        if lt(b, c) {
            b
        } else if lt(a, c) {
            c
        } else {
            a
        }
    } else if lt(a, c) {
        a
    } else if lt(b, c) {
        c
    } else {
        b
    }
}

/// Parallel samplesort of packed keys: sample splitters, bucket, sort
/// buckets on `threads` OS threads, concatenate. The packed order is total
/// (the low bits carry a unique scan index), so the unstable parallel sort
/// still yields one unique permutation at every thread count.
pub fn par_sort_packed(v: &mut Vec<u128>, threads: usize) {
    if v.len() < PARALLEL_CUTOFF || threads <= 1 {
        sort_packed(v);
        return;
    }
    let buckets = threads;
    let oversample = 32;
    let step = (v.len() / (buckets * oversample)).max(1);
    let mut sample: Vec<u128> = v.iter().step_by(step).copied().collect();
    sort_packed(&mut sample);
    let splitters: Vec<u128> = (1..buckets)
        .map(|i| sample[i * sample.len() / buckets])
        .collect();

    let mut parts: Vec<Vec<u128>> = (0..buckets).map(|_| Vec::new()).collect();
    for item in v.drain(..) {
        let b = splitters.partition_point(|&s| s < item);
        parts[b].push(item);
    }
    // The caller sorts bucket 0 itself while helpers run (same CPU-time
    // accounting rationale as `parallel::par_sort_unstable_by`).
    let (first, rest) = parts.split_at_mut(1);
    crossbeam::thread::scope(|s| {
        for part in rest.iter_mut() {
            s.spawn(move |_| sort_packed(part));
        }
        sort_packed(&mut first[0]);
    })
    .expect("sort worker panicked");
    for part in parts {
        v.extend(part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_packed(n: usize, seed: u64, modulo: u128) -> Vec<u128> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                let hi = xorshift(&mut s) as u128;
                let lo = xorshift(&mut s) as u128;
                ((hi << 64) | lo) % modulo
            })
            .collect()
    }

    #[test]
    fn compare_exchange_orders_both_lanes() {
        let mut v = vec![9u128 << 100, 3u128];
        compare_exchange(&mut v, 0, 1);
        assert_eq!(v, vec![3u128, 9u128 << 100]);
        compare_exchange(&mut v, 0, 1); // already ordered: no-op
        assert_eq!(v, vec![3u128, 9u128 << 100]);
        let mut eq = vec![7u128, 7u128];
        compare_exchange(&mut eq, 0, 1);
        assert_eq!(eq, vec![7u128, 7u128]);
    }

    #[test]
    fn network_sorts_every_size() {
        for n in 0..=MAX_NETWORK_SIZE {
            for seed in [1, 42, 977] {
                let mut v = random_packed(n, seed, u128::MAX);
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_small_packed(&mut v);
                assert_eq!(v, expect, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn sequential_sort_matches_std() {
        for n in [0, 1, 33, 100, 5000] {
            // Wide keys and a heavy-duplicate regime (small modulus).
            for modulo in [u128::MAX, 7] {
                let mut v = random_packed(n, 9, modulo);
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_packed(&mut v);
                assert_eq!(v, expect, "n={n}");
            }
        }
    }

    #[test]
    fn parallel_sort_matches_std_across_thread_counts() {
        let orig = random_packed(20_000, 77, u128::MAX >> 20);
        let mut expect = orig.clone();
        expect.sort_unstable();
        for threads in [1, 2, 4, 8] {
            let mut v = orig.clone();
            par_sort_packed(&mut v, threads);
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sort_with_heavy_duplicates() {
        let mut v = random_packed(50_000, 5, 3);
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sort_packed(&mut v, 8);
        assert_eq!(v, expect);
    }
}
