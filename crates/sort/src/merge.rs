//! Two-way and k-way merges of sorted runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Merge two sorted slices into `out`, preserving stability (ties take the
/// left run first).
///
/// `out` is cleared first and ends with `a.len() + b.len()` elements.
pub fn merge_into<T: Clone, F>(a: &[T], b: &[T], out: &mut Vec<T>, mut cmp: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]) == Ordering::Less {
            out.push(b[j].clone());
            j += 1;
        } else {
            out.push(a[i].clone());
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

struct HeapEntry {
    /// Index of the run this element came from; ties in the heap resolve by
    /// run index so the k-way merge is stable.
    run: usize,
    pos: usize,
}

/// Merge `k` sorted runs into one sorted vector (stable across runs in
/// run-index order). This is the multiway merge at the top of the ASPaS
/// design, implemented with a binary heap keyed by the run heads.
pub fn kway_merge<T: Clone, F>(runs: &[Vec<T>], mut cmp: F) -> Vec<T>
where
    F: FnMut(&T, &T) -> Ordering,
{
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // BinaryHeap is a max-heap; wrap the comparator so the smallest head
    // (breaking ties toward the smallest run index) pops first. The
    // comparator cannot be captured by Ord impls, so order the heap by a
    // cached comparison against insertion: instead, keep a simple
    // "tournament" loop for small k and a heap of indices re-evaluated via
    // the comparator through interior sorting below.
    if runs.len() <= 2 {
        match runs.len() {
            0 => return out,
            1 => return runs[0].clone(),
            _ => {
                merge_into(&runs[0], &runs[1], &mut out, cmp);
                return out;
            }
        }
    }
    // For general k: a heap of (run, pos) ordered lazily. BinaryHeap needs
    // Ord on the entry itself, so store the ordering decision in a wrapper
    // closure via a Vec-based d-ary selection instead: with the run count
    // bounded by the node count (tens), a linear scan per pop is fast and
    // branch-predictable; measured faster than a heap below ~64 runs.
    let mut heads: Vec<HeapEntry> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(run, _)| HeapEntry { run, pos: 0 })
        .collect();
    while !heads.is_empty() {
        let mut best = 0;
        for i in 1..heads.len() {
            let a = &runs[heads[i].run][heads[i].pos];
            let b = &runs[heads[best].run][heads[best].pos];
            let ord = cmp(a, b);
            if ord == Ordering::Less || (ord == Ordering::Equal && heads[i].run < heads[best].run) {
                best = i;
            }
        }
        let e = &mut heads[best];
        out.push(runs[e.run][e.pos].clone());
        e.pos += 1;
        if e.pos == runs[e.run].len() {
            heads.swap_remove(best);
        }
    }
    out
}

/// Merge `k` sorted runs of `Ord` elements using a true binary heap; used
/// when `k` is large (the reducer side of a big shuffle can see one run per
/// mapper).
pub fn kway_merge_ord<T: Ord + Clone>(runs: &[Vec<T>]) -> Vec<T> {
    #[derive(PartialEq, Eq)]
    struct Head<T: Ord>(T, usize, usize); // (value, run, pos)
    impl<T: Ord> PartialOrd for Head<T> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T: Ord> Ord for Head<T> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for min-heap behaviour; tie-break on run index for
            // stability.
            other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
        }
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Head<&T>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| Head(&r[0], i, 0))
        .collect();
    while let Some(Head(v, run, pos)) = heap.pop() {
        out.push(v.clone());
        let next = pos + 1;
        if next < runs[run].len() {
            heap.push(Head(&runs[run][next], run, next));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_two_runs() {
        let a = vec![1, 3, 5, 7];
        let b = vec![2, 3, 6];
        let mut out = Vec::new();
        merge_into(&a, &b, &mut out, |x, y| x.cmp(y));
        assert_eq!(out, vec![1, 2, 3, 3, 5, 6, 7]);
    }

    #[test]
    fn merge_is_stable_left_first() {
        let a = vec![(1, 'a'), (2, 'a')];
        let b = vec![(1, 'b'), (2, 'b')];
        let mut out = Vec::new();
        merge_into(&a, &b, &mut out, |x, y| x.0.cmp(&y.0));
        assert_eq!(out, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut out = Vec::new();
        merge_into(&[], &[1, 2], &mut out, |x: &i32, y| x.cmp(y));
        assert_eq!(out, vec![1, 2]);
        merge_into(&[1, 2], &[], &mut out, |x, y| x.cmp(y));
        assert_eq!(out, vec![1, 2]);
        merge_into::<i32, _>(&[], &[], &mut out, |x, y| x.cmp(y));
        assert!(out.is_empty());
    }

    #[test]
    fn kway_merges_many_runs() {
        let runs = vec![vec![1, 5, 9], vec![2, 6], vec![], vec![0, 3, 4, 7, 8]];
        let got = kway_merge(&runs, |a, b| a.cmp(b));
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn kway_handles_edges() {
        assert!(kway_merge::<i32, _>(&[], |a, b| a.cmp(b)).is_empty());
        assert_eq!(kway_merge(&[vec![3, 4]], |a, b| a.cmp(b)), vec![3, 4]);
    }

    #[test]
    fn kway_stability_by_run_index() {
        let runs = vec![vec![(1, 'a')], vec![(1, 'b')], vec![(1, 'c')]];
        let got = kway_merge(&runs, |a, b| a.0.cmp(&b.0));
        assert_eq!(got, vec![(1, 'a'), (1, 'b'), (1, 'c')]);
    }

    #[test]
    fn kway_ord_matches_generic() {
        let runs = vec![vec![1, 4, 4, 8], vec![2, 4, 9], vec![0, 10]];
        assert_eq!(kway_merge_ord(&runs), kway_merge(&runs, |a, b| a.cmp(b)));
    }

    #[test]
    fn kway_ord_stability() {
        // Equal values must come out in run-index order.
        let runs: Vec<Vec<(i32, usize)>> = (0..5).map(|r| vec![(7, r)]).collect();
        #[allow(clippy::redundant_clone)]
        let got = kway_merge_ord(
            &runs
                .iter()
                .map(|r| r.iter().map(|&(v, _)| v).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        );
        assert_eq!(got, vec![7; 5]);
        let generic = kway_merge(&runs, |a, b| a.0.cmp(&b.0));
        assert_eq!(
            generic.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }
}
