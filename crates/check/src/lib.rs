//! # papar-check — static analysis for PaPar workflows
//!
//! PaPar workflows are *declared* (InputData + Workflow XML) and then
//! formalized into key-value operators and stride-permutation matrices,
//! which makes most user mistakes statically decidable before a single
//! record is read. This crate decides them:
//!
//! * **Dataflow** over `$variable` references: unbound arguments, unknown
//!   jobs, use-before-definition (the cycle check — jobs launch in document
//!   order), duplicate ids and dataset names, dead outputs.
//! * **Schema/type inference** threaded through every operator: sort/group/
//!   split keys must exist with usable types, split thresholds must match
//!   the key field, add-on result types must compose, format operators must
//!   be applicable.
//! * **Distribution legality**: stride-permutation `L_m^{km}` divisibility,
//!   partition counts vs. cluster size, replication vs. node count.
//! * **Determinism lint**: index-routed distributes over sort outputs are
//!   only byte-reproducible while the sort breaks ties stably.
//!
//! Everything is reported as a [`Diagnostic`]: a stable `P0xx`/`W0xx` code,
//! a severity, a message, and a 1-based line/column span into the XML
//! source. [`json::to_json`] serializes the list for tooling; the `papar
//! check` CLI subcommand is the human entry point, and `papar run` refuses
//! to start the cluster when any error-severity diagnostic exists.

pub mod analyze;
pub mod bounds;
pub mod diag;
pub mod json;
pub mod verify;

pub use analyze::{analyze, check_sources, Analysis, CheckContext, InferredJob};
pub use bounds::{analyze_bounds, BoundsConfig, BoundsReport};
pub use diag::{has_errors, render_text, Code, Diagnostic, Severity};
pub use verify::{verify_physical_plan, verify_plan};
