//! The static analysis passes.
//!
//! [`analyze`] mirrors the planner's `Binder` (crates/core/src/plan.rs) but
//! never stops at the first problem: every check that fails becomes a
//! [`Diagnostic`] and the analysis recovers with best-effort information, so
//! one run reports everything it can see. Three things make this different
//! from just running the planner:
//!
//! 1. **Symbolic arguments.** `papar check` can run before launch-time
//!    argument values exist. A declared argument without a value resolves to
//!    the literal `$name`; because every occurrence resolves to the same
//!    literal, dataset names still connect jobs, and schema inference still
//!    threads through the whole pipeline. Checks that need a concrete value
//!    (numeric thresholds, partition counts) are skipped for symbolic ones.
//! 2. **Spans.** Every diagnostic points at the XML element or attribute
//!    that caused it.
//! 3. **Lints.** Warnings (`W0xx`) for plans that run but are probably not
//!    what the author meant: dead outputs, idle cluster nodes, non-strict
//!    stride permutations, tie-dependent layouts, unused arguments.

use papar_config::input::{FieldType, InputConfig};
use papar_config::varref::{self, VarRef};
use papar_config::workflow::{OperatorDef, WorkflowConfig};
use papar_config::xml::Span;
use papar_config::ConfigError;
use papar_core::operator::{AddOnKind, FormatOp};
use papar_core::plan::{DatasetMeta, Format};
use papar_core::policy::{DistrPolicy, SplitPolicy};
use papar_record::{Schema, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::diag::{Code, Diagnostic, Severity};

/// Launch-time facts the analyzer may use when available.
///
/// Everything is optional: with no context at all the analysis is fully
/// symbolic and only reports problems that hold for *every* launch.
#[derive(Debug, Clone, Default)]
pub struct CheckContext {
    /// Launch-time argument values (may be a subset of the declared ones).
    pub args: HashMap<String, String>,
    /// Number of cluster nodes, for partition-count and replication checks.
    pub nodes: Option<usize>,
    /// Replication factor the cluster will be asked for.
    pub replication: Option<usize>,
    /// Input record count, for strict `L_m^{km}` divisibility (`m | km`).
    pub records: Option<usize>,
    /// Names of registered user-defined operators beyond the built-ins.
    pub extra_operators: HashSet<String>,
}

/// Inferred metadata for one job's outputs.
#[derive(Debug, Clone)]
pub struct InferredJob {
    /// Operator id.
    pub id: String,
    /// `(dataset name, inferred meta)` per output; the name may still be
    /// symbolic (`$output_path`), the meta is `None` where inference failed.
    pub outputs: Vec<(String, Option<DatasetMeta>)>,
}

/// The result of an analysis run.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Everything found, in discovery order (document order per pass).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-job inferred output metadata, in launch order.
    pub jobs: Vec<InferredJob>,
}

impl Analysis {
    /// True when any diagnostic is error-severity.
    pub fn has_errors(&self) -> bool {
        crate::diag::has_errors(&self.diagnostics)
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }
}

/// Parse both documents and analyze. Parse failures become `P000`
/// diagnostics: the workflow is labelled `workflow`, each input by the label
/// supplied next to its XML text (its file name, typically).
pub fn check_sources(workflow_xml: &str, inputs: &[(&str, &str)], ctx: &CheckContext) -> Analysis {
    let mut diags = Vec::new();
    let mut parsed = Vec::new();
    for (label, xml) in inputs {
        match InputConfig::parse_str_unchecked(xml) {
            Ok(cfg) => parsed.push(cfg),
            Err(e) => diags.push(parse_diag(label, &e)),
        }
    }
    match WorkflowConfig::parse_str_unchecked(workflow_xml) {
        Ok(wf) => {
            let mut analysis = analyze(&wf, &parsed, ctx);
            let mut all = diags;
            all.append(&mut analysis.diagnostics);
            analysis.diagnostics = all;
            analysis
        }
        Err(e) => {
            diags.push(parse_diag("workflow", &e));
            Analysis {
                diagnostics: diags,
                jobs: Vec::new(),
            }
        }
    }
}

fn parse_diag(doc: &str, e: &ConfigError) -> Diagnostic {
    Diagnostic::error(
        Code::P000,
        doc,
        e.span().unwrap_or(Span::UNKNOWN),
        e.to_string(),
    )
}

/// Analyze parsed configurations.
pub fn analyze(wf: &WorkflowConfig, inputs: &[InputConfig], ctx: &CheckContext) -> Analysis {
    let mut a = Analyzer::new(wf, inputs, ctx);
    a.check_inputs(inputs);
    a.check_declarations();
    a.check_cluster();
    a.bind_arguments();
    for (i, op) in wf.operators.iter().enumerate() {
        let is_last = i + 1 == wf.operators.len();
        a.check_operator(i, op, is_last);
        a.defined_jobs.insert(op.id.clone());
    }
    a.check_dead_outputs();
    a.check_fusible_intermediates();
    a.check_unused_arguments();
    Analysis {
        diagnostics: a.diags,
        jobs: a.jobs,
    }
}

/// A resolved parameter value, tracking whether symbolic placeholders are
/// still inside it.
#[derive(Debug, Clone)]
struct Resolved {
    text: String,
    concrete: bool,
}

/// A dataset known to the analyzer.
struct KnownDataset {
    name: String,
    meta: Option<DatasetMeta>,
    /// Index of the producing job in `wf.operators`; `None` for external
    /// inputs.
    producer: Option<usize>,
    /// Where the producer declared it (for dead-output warnings).
    span: Span,
    consumed: bool,
    /// Indices of the jobs that consume it, in document order (the
    /// single-consumption analysis the fusion pass and `W006` share).
    consumers: Vec<usize>,
    /// Produced by a Sort job (for the determinism lint).
    sorted: bool,
}

struct Analyzer<'a> {
    wf: &'a WorkflowConfig,
    input_configs: HashMap<&'a str, &'a InputConfig>,
    ctx: &'a CheckContext,
    diags: Vec<Diagnostic>,
    seen_diags: HashSet<(Code, String, usize, usize, String)>,
    /// Declared-argument resolutions (symbolic when no value is known).
    args: HashMap<String, Resolved>,
    used_args: HashSet<String>,
    /// `path text -> InputData id` from hdfs-typed arguments.
    path_formats: HashMap<String, String>,
    /// `(job id, param name) -> resolution`, recorded in document order.
    resolved_params: HashMap<(String, String), Resolved>,
    /// `job id -> add-on attribute names`.
    job_attrs: HashMap<String, Vec<String>>,
    /// Jobs already processed (for use-before-definition).
    defined_jobs: HashSet<String>,
    all_job_ids: HashSet<String>,
    datasets: Vec<KnownDataset>,
    /// Index of the operator currently being analyzed.
    current_op: usize,
    jobs: Vec<InferredJob>,
}

impl<'a> Analyzer<'a> {
    fn new(wf: &'a WorkflowConfig, inputs: &'a [InputConfig], ctx: &'a CheckContext) -> Self {
        Analyzer {
            wf,
            input_configs: inputs.iter().map(|c| (c.id.as_str(), c)).collect(),
            ctx,
            diags: Vec::new(),
            seen_diags: HashSet::new(),
            args: HashMap::new(),
            used_args: HashSet::new(),
            path_formats: HashMap::new(),
            resolved_params: HashMap::new(),
            job_attrs: HashMap::new(),
            defined_jobs: HashSet::new(),
            all_job_ids: wf.operators.iter().map(|o| o.id.clone()).collect(),
            datasets: Vec::new(),
            current_op: 0,
            jobs: Vec::new(),
        }
    }

    fn push(&mut self, d: Diagnostic) {
        let key = (
            d.code,
            d.doc.clone(),
            d.span.line,
            d.span.col,
            d.message.clone(),
        );
        if self.seen_diags.insert(key) {
            self.diags.push(d);
        }
    }

    fn error(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(code, "workflow", span, message));
    }

    fn warning(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(code, "workflow", span, message));
    }

    // ---- pass 0: input configurations --------------------------------

    fn check_inputs(&mut self, inputs: &[InputConfig]) {
        let mut ids = HashSet::new();
        for cfg in inputs {
            if !ids.insert(cfg.id.as_str()) {
                self.push(Diagnostic::error(
                    Code::P015,
                    cfg.id.clone(),
                    cfg.span,
                    format!("duplicate InputData configuration id '{}'", cfg.id),
                ));
            }
            if let Err(e) = cfg.validate() {
                self.push(Diagnostic::error(
                    Code::P019,
                    cfg.id.clone(),
                    e.span().unwrap_or(cfg.span),
                    e.to_string(),
                ));
            }
        }
    }

    // ---- pass 1: declarations ----------------------------------------

    fn check_declarations(&mut self) {
        let wf = self.wf;
        if wf.operators.is_empty() {
            self.error(Code::P000, wf.span, "workflow declares no operators");
        }
        let mut seen = HashSet::new();
        for a in &wf.arguments {
            if !seen.insert(a.name.as_str()) {
                self.error(
                    Code::P015,
                    a.span,
                    format!("duplicate argument '{}'", a.name),
                );
            }
        }
        let mut ids = HashSet::new();
        for o in &wf.operators {
            if !ids.insert(o.id.as_str()) {
                self.error(
                    Code::P004,
                    o.id_span,
                    format!("duplicate operator id '{}'", o.id),
                );
            }
        }
    }

    fn check_cluster(&mut self) {
        if let (Some(replication), Some(nodes)) = (self.ctx.replication, self.ctx.nodes) {
            if replication > nodes {
                let span = self.wf.span;
                self.error(
                    Code::P018,
                    span,
                    format!(
                        "replication factor {replication} cannot be satisfied by a \
                         {nodes}-node cluster"
                    ),
                );
            }
        }
    }

    fn bind_arguments(&mut self) {
        let wf = self.wf;
        for a in &wf.arguments {
            let v = self
                .ctx
                .args
                .get(&a.name)
                .cloned()
                .or_else(|| a.value.clone());
            let r = match v {
                Some(text) => Resolved {
                    text,
                    concrete: true,
                },
                None => Resolved {
                    text: format!("${}", a.name),
                    concrete: false,
                },
            };
            self.args.insert(a.name.clone(), r);
        }
        let undeclared: Vec<String> = self
            .ctx
            .args
            .keys()
            .filter(|k| !self.args.contains_key(*k))
            .cloned()
            .collect();
        for k in undeclared {
            self.error(
                Code::P001,
                wf.span,
                format!(
                    "launch argument '{k}' is not declared by workflow '{}'",
                    wf.id
                ),
            );
        }
        // Path -> InputData id. Symbolic paths key by their `$name` literal,
        // which is exactly what symbolic resolution produces, so schema
        // inference works without launch-time values.
        for a in &wf.arguments {
            if let Some(fmt) = &a.format {
                if !self.input_configs.contains_key(fmt.as_str()) {
                    self.error(
                        Code::P017,
                        a.span,
                        format!(
                            "argument '{}' declares format '{fmt}' but no InputData \
                             configuration with that id was supplied",
                            a.name
                        ),
                    );
                    continue;
                }
                if let Some(r) = self.args.get(&a.name) {
                    self.path_formats.insert(r.text.clone(), fmt.clone());
                }
            }
        }
    }

    // ---- $-reference resolution --------------------------------------

    /// Substitute every `$` reference in `raw`, emitting diagnostics at
    /// `span` for anything unresolvable and recovering with the literal
    /// reference text.
    fn resolve_value(&mut self, raw: &str, span: Span) -> Resolved {
        let current = self.wf.operators.get(self.current_op).map(|o| o.id.clone());
        let mut concrete = true;
        let mut pending: Vec<(Code, String)> = Vec::new();
        let mut used: Vec<String> = Vec::new();
        let out = {
            let args = &self.args;
            let resolved_params = &self.resolved_params;
            let job_attrs = &self.job_attrs;
            let defined = &self.defined_jobs;
            let all_ids = &self.all_job_ids;
            varref::substitute(raw, |r| {
                Ok(match r {
                    VarRef::Literal(s) => s.clone(),
                    VarRef::Arg(name) => {
                        used.push(name.clone());
                        match args.get(name) {
                            Some(r) => {
                                concrete &= r.concrete;
                                r.text.clone()
                            }
                            None => {
                                pending.push((Code::P001, format!("unbound argument '${name}'")));
                                concrete = false;
                                format!("${name}")
                            }
                        }
                    }
                    VarRef::JobParam { job, param } => {
                        let lookup =
                            |p: &str| resolved_params.get(&(job.clone(), p.to_string())).cloned();
                        let found = lookup(param).or_else(|| match param.as_str() {
                            "outputPath" => lookup("ouputPath"),
                            "ouputPath" => lookup("outputPath"),
                            _ => None,
                        });
                        match found {
                            Some(r) if defined.contains(job) => {
                                concrete &= r.concrete;
                                r.text.clone()
                            }
                            _ => {
                                pending.push(job_ref_problem(
                                    job,
                                    defined,
                                    all_ids,
                                    &current,
                                    format!(
                                        "'${job}.{param}' does not match any earlier job parameter"
                                    ),
                                ));
                                concrete = false;
                                format!("${job}.{param}")
                            }
                        }
                    }
                    VarRef::JobAttr { job, attr } => {
                        if !defined.contains(job) {
                            pending.push(job_ref_problem(
                                job,
                                defined,
                                all_ids,
                                &current,
                                format!("'${job}.${attr}': no earlier job '{job}'"),
                            ));
                            concrete = false;
                            format!("${job}.${attr}")
                        } else if job_attrs
                            .get(job)
                            .is_some_and(|attrs| attrs.iter().any(|a| a == attr))
                        {
                            attr.clone()
                        } else {
                            pending.push((
                                Code::P002,
                                format!("job '{job}' does not add an attribute '{attr}'"),
                            ));
                            concrete = false;
                            format!("${job}.${attr}")
                        }
                    }
                })
            })
        };
        for (code, msg) in pending {
            self.error(code, span, msg);
        }
        for name in used {
            self.used_args.insert(name);
        }
        match out {
            Ok(text) => Resolved { text, concrete },
            Err(e) => {
                self.error(Code::P016, span, e.to_string());
                Resolved {
                    text: raw.to_string(),
                    concrete: false,
                }
            }
        }
    }

    /// Resolve every parameter value of `op` once, in document order, and
    /// record it for later `$job.param` references.
    fn resolve_op_params(&mut self, op: &OperatorDef) {
        for p in &op.params {
            if let Some(raw) = &p.value {
                let r = self.resolve_value(raw, p.value_span);
                self.resolved_params
                    .insert((op.id.clone(), p.name.clone()), r);
            }
        }
    }

    /// The recorded resolution of a parameter (tolerating the paper's
    /// `ouputPath` typo), or `None` when absent or valueless.
    fn param_resolved(&self, op: &OperatorDef, name: &str) -> Option<Resolved> {
        let p = op.param_fuzzy(name)?;
        p.value.as_ref()?;
        self.resolved_params
            .get(&(op.id.clone(), p.name.clone()))
            .cloned()
    }

    /// Like [`Analyzer::param_resolved`] but emits `P007` when missing.
    fn require_param(&mut self, op: &OperatorDef, name: &str) -> Option<Resolved> {
        let r = self.param_resolved(op, name);
        if r.is_none() {
            let (id, span) = (op.id.clone(), op.span);
            self.error(
                Code::P007,
                span,
                format!("operator '{id}' is missing required param '{name}'"),
            );
        }
        r
    }

    /// The span of a parameter's value attribute, element span as fallback.
    fn param_span(&self, op: &OperatorDef, name: &str) -> Span {
        op.param_fuzzy(name)
            .map(|p| p.value_span)
            .unwrap_or(op.span)
    }

    // ---- dataset resolution ------------------------------------------

    fn dataset_index(&self, name: &str) -> Option<usize> {
        self.datasets.iter().position(|d| d.name == name)
    }

    /// Metadata of `name`, materializing an external input from the
    /// argument-declared formats on first use.
    fn dataset_meta(&mut self, name: &str) -> Option<DatasetMeta> {
        if let Some(i) = self.dataset_index(name) {
            return self.datasets[i].meta.clone();
        }
        let fmt_id = self.path_formats.get(name)?.clone();
        // A missing config was already reported as P017 in bind_arguments.
        let cfg = self.input_configs.get(fmt_id.as_str())?;
        let meta = DatasetMeta {
            schema: Arc::new(Schema::from_input_config(cfg)),
            format: Format::Flat,
            packed_key: None,
        };
        self.datasets.push(KnownDataset {
            name: name.to_string(),
            meta: Some(meta.clone()),
            producer: None,
            span: Span::UNKNOWN,
            consumed: false,
            consumers: Vec::new(),
            sorted: false,
        });
        Some(meta)
    }

    /// Resolve an input path to dataset names (exact match, else directory
    /// prefix match), marking everything matched as consumed. Emits `P017`
    /// for concrete paths that match nothing; stays silent for symbolic
    /// paths, whose launch-time value may prefix-match a job output.
    fn resolve_inputs(&mut self, path: &Resolved, span: Span) -> Option<Vec<String>> {
        if self.dataset_index(&path.text).is_some() || self.path_formats.contains_key(&path.text) {
            self.dataset_meta(&path.text);
            if let Some(i) = self.dataset_index(&path.text) {
                self.mark_consumed(i);
            }
            return Some(vec![path.text.clone()]);
        }
        let matches: Vec<usize> = (0..self.datasets.len())
            .filter(|&i| self.datasets[i].name.starts_with(&path.text))
            .collect();
        if matches.is_empty() {
            if path.concrete {
                let text = path.text.clone();
                self.error(
                    Code::P017,
                    span,
                    format!(
                        "input path '{text}' is not produced by an earlier job and no \
                         argument declares its format"
                    ),
                );
            }
            return None;
        }
        let mut names = Vec::new();
        for i in matches {
            self.mark_consumed(i);
            names.push(self.datasets[i].name.clone());
        }
        Some(names)
    }

    /// Record that the operator currently being analyzed reads dataset `i`.
    fn mark_consumed(&mut self, i: usize) {
        self.datasets[i].consumed = true;
        let op = self.current_op;
        if self.datasets[i].consumers.last() != Some(&op) {
            self.datasets[i].consumers.push(op);
        }
    }

    /// Register one job output, checking for duplicate dataset names.
    fn push_output(&mut self, op: &OperatorDef, name: &str, meta: Option<DatasetMeta>, span: Span) {
        if self.dataset_index(name).is_some() {
            let id = op.id.clone();
            self.error(
                Code::P005,
                span,
                format!("job '{id}' writes dataset '{name}', which already exists"),
            );
            return;
        }
        let sorted = matches!(op.operator.as_str(), "Sort" | "sort");
        self.datasets.push(KnownDataset {
            name: name.to_string(),
            meta,
            producer: Some(self.current_op),
            span,
            consumed: false,
            consumers: Vec::new(),
            sorted,
        });
    }

    // ---- per-operator checks -----------------------------------------

    fn check_operator(&mut self, idx: usize, op: &OperatorDef, is_last: bool) {
        self.current_op = idx;
        self.resolve_op_params(op);
        self.check_num_reducers(op);
        let outputs = match op.operator.as_str() {
            "Sort" | "sort" => self.check_sort_or_group(op, true),
            "Group" | "group" => self.check_sort_or_group(op, false),
            "Split" | "split" => self.check_split(op),
            "Distribute" | "distribute" => self.check_distribute(op, is_last),
            custom => self.check_custom(op, custom),
        };
        for (name, meta, span) in &outputs {
            self.push_output(op, name, meta.clone(), *span);
        }
        self.jobs.push(InferredJob {
            id: op.id.clone(),
            outputs: outputs
                .into_iter()
                .map(|(name, meta, _)| (name, meta))
                .collect(),
        });
    }

    fn check_num_reducers(&mut self, op: &OperatorDef) {
        if let Some(raw) = op.num_reducers.clone() {
            let r = self.resolve_value(&raw, op.span);
            if r.concrete && r.text.parse::<usize>().map(|n| n == 0).unwrap_or(true) {
                let (id, text, span) = (op.id.clone(), r.text, op.span);
                self.error(
                    Code::P012,
                    span,
                    format!("operator '{id}': num_reducers '{text}' is not a positive integer"),
                );
            }
        }
    }

    /// The first input's metadata, after resolving `inputPath`.
    fn input_meta(&mut self, op: &OperatorDef) -> Option<DatasetMeta> {
        let path = self.require_param(op, "inputPath")?;
        let span = self.param_span(op, "inputPath");
        let inputs = self.resolve_inputs(&path, span)?;
        self.dataset_meta(&inputs[0])
    }

    /// Key lookup in an inferred schema, with `P006` on absence.
    fn key_index(
        &mut self,
        op: &OperatorDef,
        key: &Resolved,
        span: Span,
        schema: &Schema,
    ) -> Option<usize> {
        if !key.concrete {
            return None;
        }
        let idx = schema.index_of(&key.text);
        if idx.is_none() {
            let (id, key) = (op.id.clone(), key.text.clone());
            let fields = schema
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join(", ");
            self.error(
                Code::P006,
                span,
                format!("operator '{id}': no field '{key}' in schema [{fields}]"),
            );
        }
        idx
    }

    /// Apply `op`'s add-ons to `schema`, mirroring `Binder::bind_addons`
    /// with per-add-on recovery. Returns the evolved schema and the list of
    /// appended attribute names.
    fn check_addons(
        &mut self,
        op: &OperatorDef,
        schema: Option<Arc<Schema>>,
    ) -> Option<Arc<Schema>> {
        let mut out = schema;
        let mut attrs = Vec::new();
        for a in op.addons.clone() {
            attrs.push(a.attr.clone());
            let kind = match AddOnKind::parse(&a.operator) {
                Ok(k) => k,
                Err(e) => {
                    self.error(Code::P010, a.span, e.to_string());
                    continue;
                }
            };
            let Some(schema) = out.clone() else { continue };
            let Some(field_idx) = schema.index_of(&a.key) else {
                let (id, key) = (op.id.clone(), a.key.clone());
                self.error(
                    Code::P006,
                    a.span,
                    format!("operator '{id}': add-on key '{key}' is not a schema field"),
                );
                continue;
            };
            let field_ty = schema.fields()[field_idx].ty;
            let attr_ty = match kind.result_type(field_ty) {
                Ok(t) => t,
                Err(_) => {
                    let (aop, key) = (a.operator.clone(), a.key.clone());
                    self.error(
                        Code::P010,
                        a.span,
                        format!("add-on '{aop}' cannot be applied to field '{key}' ({field_ty:?})"),
                    );
                    continue;
                }
            };
            match schema.with_attr(&a.attr, attr_ty) {
                Ok(s) => out = Some(s),
                Err(_) => {
                    let attr = a.attr.clone();
                    self.error(
                        Code::P010,
                        a.span,
                        format!("add-on attribute '{attr}' already exists in the schema"),
                    );
                }
            }
        }
        self.job_attrs.insert(op.id.clone(), attrs);
        out
    }

    /// The output format operator declared on a parameter's `format=` attr.
    fn output_format(&mut self, op: &OperatorDef, param: &str) -> FormatOp {
        let Some(p) = op.param_fuzzy(param) else {
            return FormatOp::Orig;
        };
        let (fmt, span) = (p.format.clone(), p.span);
        match fmt.as_deref() {
            None => FormatOp::Orig,
            Some(f) => match FormatOp::parse(f) {
                Ok(op) => op,
                Err(e) => {
                    self.error(Code::P011, span, e.to_string());
                    FormatOp::Orig
                }
            },
        }
    }

    fn check_sort_or_group(
        &mut self,
        op: &OperatorDef,
        is_sort: bool,
    ) -> Vec<(String, Option<DatasetMeta>, Span)> {
        let output = self.require_param(op, "outputPath");
        let key = self.require_param(op, "key");
        let input_meta = self.input_meta(op);

        if !is_sort
            && input_meta
                .as_ref()
                .is_some_and(|m| m.format == Format::Packed)
        {
            self.error(
                Code::P011,
                op.span,
                format!(
                    "operator '{}': group expects flat input (apply 'unpack' first)",
                    op.id
                ),
            );
        }
        if is_sort {
            // Table I: -1 ascending, 1 descending.
            if let Some(flag) = self.param_resolved(op, "flag") {
                if flag.concrete
                    && !matches!(
                        flag.text.as_str(),
                        "-1" | "asc" | "ascending" | "1" | "desc" | "descending"
                    )
                {
                    let (id, text) = (op.id.clone(), flag.text.clone());
                    let span = self.param_span(op, "flag");
                    self.error(
                        Code::P012,
                        span,
                        format!("operator '{id}': unknown sort flag '{text}'"),
                    );
                }
            }
        }

        let key_idx = match (&key, &input_meta) {
            (Some(k), Some(meta)) => {
                let span = self.param_span(op, "key");
                self.key_index(op, k, span, &meta.schema)
            }
            _ => None,
        };
        let out_schema = self.check_addons(op, input_meta.as_ref().map(|m| m.schema.clone()));
        let fmt_op = self.output_format(op, "outputPath");
        let meta = input_meta.as_ref().map(|m| {
            let format = apply_format(m.format, fmt_op);
            DatasetMeta {
                schema: out_schema.unwrap_or_else(|| m.schema.clone()),
                format,
                packed_key: match format {
                    Format::Packed => key_idx,
                    Format::Flat => None,
                },
            }
        });
        match output {
            Some(o) => vec![(o.text, meta, self.param_span(op, "outputPath"))],
            None => Vec::new(),
        }
    }

    fn check_split(&mut self, op: &OperatorDef) -> Vec<(String, Option<DatasetMeta>, Span)> {
        let key = self.require_param(op, "key");
        let policy = self.require_param(op, "policy");
        let list = self.require_param(op, "outputPathList");
        let input_meta = self.input_meta(op);

        // Output names (only splittable once concrete) and per-output
        // format operators.
        let names: Option<Vec<String>> = list.as_ref().filter(|l| l.concrete).map(|l| {
            l.text
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        });
        let list_param = op.param_fuzzy("outputPathList");
        let formats: Vec<FormatOp> = match list_param.and_then(|p| p.format.clone()) {
            Some(f) => f
                .split(',')
                .map(|s| {
                    FormatOp::parse(s.trim()).unwrap_or_else(|e| {
                        let span = list_param.map(|p| p.span).unwrap_or(op.span);
                        self.error(Code::P011, span, e.to_string());
                        FormatOp::Orig
                    })
                })
                .collect(),
            None => Vec::new(),
        };
        if let Some(names) = &names {
            if !formats.is_empty() && formats.len() != names.len() {
                let (id, n, f) = (op.id.clone(), names.len(), formats.len());
                let span = list_param.map(|p| p.span).unwrap_or(op.span);
                self.error(
                    Code::P011,
                    span,
                    format!("operator '{id}': {n} outputs but {f} formats"),
                );
            }
        }

        let policy_span = self.param_span(op, "policy");
        let parsed_policy: Option<SplitPolicy> = match &policy {
            Some(p) if p.concrete => match SplitPolicy::parse(&p.text) {
                Ok(sp) => Some(sp),
                Err(e) => {
                    self.error(Code::P008, policy_span, e.to_string());
                    None
                }
            },
            _ => None,
        };
        if let (Some(sp), Some(names)) = (&parsed_policy, &names) {
            if sp.arity() != names.len() {
                let (id, c, n) = (op.id.clone(), sp.arity(), names.len());
                self.error(
                    Code::P008,
                    policy_span,
                    format!("operator '{id}': {c} split conditions for {n} outputs"),
                );
            }
        }

        // Threshold/key type compatibility (the key may live in member
        // records of a packed input, same as at run time).
        if let (Some(k), Some(meta)) = (&key, &input_meta) {
            let key_span = self.param_span(op, "key");
            if let Some(idx) = self.key_index(op, k, key_span, &meta.schema) {
                if let Some(sp) = &parsed_policy {
                    let field_ty = meta.schema.fields()[idx].ty;
                    for cond in &sp.conditions {
                        if !threshold_compatible(field_ty, &cond.threshold) {
                            let (id, key) = (op.id.clone(), k.text.clone());
                            let t = &cond.threshold;
                            self.error(
                                Code::P009,
                                policy_span,
                                format!(
                                    "operator '{id}': split threshold {t:?} is not comparable \
                                     with key field '{key}' of type {field_ty:?}"
                                ),
                            );
                        }
                    }
                }
            }
        }

        match names {
            Some(names) => {
                let span = list_param.map(|p| p.value_span).unwrap_or(op.span);
                names
                    .into_iter()
                    .enumerate()
                    .map(|(i, name)| {
                        let f = formats.get(i).copied().unwrap_or(FormatOp::Orig);
                        let meta = input_meta.as_ref().map(|m| {
                            let fmt = apply_format(m.format, f);
                            DatasetMeta {
                                schema: m.schema.clone(),
                                format: fmt,
                                packed_key: match fmt {
                                    Format::Packed => m.packed_key,
                                    Format::Flat => None,
                                },
                            }
                        });
                        (name, meta, span)
                    })
                    .collect()
            }
            None => Vec::new(),
        }
    }

    fn check_distribute(
        &mut self,
        op: &OperatorDef,
        is_last: bool,
    ) -> Vec<(String, Option<DatasetMeta>, Span)> {
        let output = self.require_param(op, "outputPath");
        let policy = self
            .param_resolved(op, "distrPolicy")
            .or_else(|| self.param_resolved(op, "policy"));
        if policy.is_none() {
            let (id, span) = (op.id.clone(), op.span);
            self.error(
                Code::P007,
                span,
                format!("operator '{id}' needs a 'policy' or 'distrPolicy' param"),
            );
        }
        let parsed_policy: Option<DistrPolicy> = policy.as_ref().and_then(|p| {
            if !p.concrete {
                return None;
            }
            match DistrPolicy::parse(&p.text) {
                Ok(dp) => Some(dp),
                Err(e) => {
                    let span = if op.param_fuzzy("distrPolicy").is_some() {
                        self.param_span(op, "distrPolicy")
                    } else {
                        self.param_span(op, "policy")
                    };
                    self.error(Code::P012, span, e.to_string());
                    None
                }
            }
        });

        let parts = self.require_param(op, "numPartitions");
        let parts_span = self.param_span(op, "numPartitions");
        let num_partitions: Option<usize> = parts.as_ref().and_then(|p| {
            if !p.concrete {
                return None;
            }
            match p.text.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    let (id, text) = (op.id.clone(), p.text.clone());
                    self.error(
                        Code::P012,
                        parts_span,
                        format!(
                            "operator '{id}': numPartitions '{text}' is not a positive integer"
                        ),
                    );
                    None
                }
            }
        });

        // Cluster-shape legality.
        if let (Some(parts), Some(nodes)) = (num_partitions, self.ctx.nodes) {
            if parts < nodes {
                self.warning(
                    Code::W002,
                    parts_span,
                    format!(
                        "{parts} partitions on a {nodes}-node cluster leaves \
                         {} nodes without data",
                        nodes - parts
                    ),
                );
            }
        }
        if let (Some(parts), Some(records)) = (num_partitions, self.ctx.records) {
            if matches!(parsed_policy, Some(DistrPolicy::Cyclic)) && records % parts != 0 {
                self.warning(
                    Code::W003,
                    parts_span,
                    format!(
                        "{records} records are not divisible by {parts} partitions: the \
                         strict stride permutation L_{parts}^{records} requires \
                         {parts} | {records}; the generalized form will be used"
                    ),
                );
            }
        }

        let input_path = self.require_param(op, "inputPath");
        let input_span = self.param_span(op, "inputPath");
        let inputs = input_path.and_then(|p| self.resolve_inputs(&p, input_span));
        let input_meta = inputs.as_ref().and_then(|v| self.dataset_meta(&v[0]));

        // Determinism lint: an index-routed distribute over a sort output
        // makes the final layout depend on how the sort broke ties.
        if matches!(
            parsed_policy,
            Some(DistrPolicy::Cyclic) | Some(DistrPolicy::Block)
        ) {
            let fed_by_sort = inputs.iter().flatten().any(|n| {
                self.dataset_index(n)
                    .map(|i| self.datasets[i].sorted)
                    .unwrap_or(false)
            });
            if fed_by_sort {
                let (id, span) = (op.id.clone(), op.span);
                self.warning(
                    Code::W004,
                    span,
                    format!(
                        "operator '{id}' routes a sort output by index: records with \
                         equal sort keys make the partition layout depend on \
                         tie-breaking, so the output is only byte-reproducible \
                         while the sort stays stable"
                    ),
                );
            }
        }

        // Final jobs project onto the declared output format.
        let final_schema: Option<Arc<Schema>> = if is_last {
            output
                .as_ref()
                .and_then(|o| self.path_formats.get(&o.text))
                .and_then(|fmt_id| self.input_configs.get(fmt_id.as_str()))
                .map(|cfg| Arc::new(Schema::from_input_config(cfg)))
        } else {
            None
        };

        let meta = input_meta.as_ref().map(|m| {
            let out_format = if is_last { Format::Flat } else { m.format };
            DatasetMeta {
                schema: final_schema.clone().unwrap_or_else(|| m.schema.clone()),
                format: out_format,
                packed_key: match out_format {
                    Format::Packed => m.packed_key,
                    Format::Flat => None,
                },
            }
        });
        match output {
            Some(o) => vec![(o.text, meta, self.param_span(op, "outputPath"))],
            None => Vec::new(),
        }
    }

    fn check_custom(
        &mut self,
        op: &OperatorDef,
        name: &str,
    ) -> Vec<(String, Option<DatasetMeta>, Span)> {
        if !self.ctx.extra_operators.contains(name) {
            let (id, span) = (op.id.clone(), op.span);
            self.error(
                Code::P013,
                span,
                format!("operator '{id}' uses unregistered operator '{name}'"),
            );
        }
        let output = self.require_param(op, "outputPath");
        let input_path = self.require_param(op, "inputPath");
        let input_span = self.param_span(op, "inputPath");
        if let Some(p) = input_path {
            self.resolve_inputs(&p, input_span);
        }
        // A custom operator's output schema is its own business: register
        // the dataset with unknown metadata so later jobs still connect.
        match output {
            Some(o) => vec![(o.text, None, self.param_span(op, "outputPath"))],
            None => Vec::new(),
        }
    }

    // ---- whole-workflow lints ----------------------------------------

    fn check_dead_outputs(&mut self) {
        let last = self.wf.operators.len().wrapping_sub(1);
        let dead: Vec<(String, String, Span)> = self
            .datasets
            .iter()
            .filter(|d| {
                d.producer
                    .map(|p| p != last && !d.consumed)
                    .unwrap_or(false)
            })
            .map(|d| {
                let producer = &self.wf.operators[d.producer.unwrap_or(0)];
                (d.name.clone(), producer.id.clone(), d.span)
            })
            .collect();
        for (name, producer, span) in dead {
            self.warning(
                Code::W001,
                span,
                format!("output '{name}' of job '{producer}' is never consumed"),
            );
        }
    }

    /// `W006`: an intermediate with exactly one consumer — the job right
    /// after its producer — where the pair matches a fusion rewrite
    /// (Sort→Distribute routed by index, or Group→Split). The physical
    /// planner streams such datasets instead of writing them; this is the
    /// same single-consumption analysis `lower()` gates on, run on the
    /// symbolic side.
    fn check_fusible_intermediates(&mut self) {
        let mut found: Vec<(String, String, Span)> = Vec::new();
        for d in &self.datasets {
            let Some(p) = d.producer else { continue };
            if d.consumers != vec![p + 1] {
                continue;
            }
            let Some(consumer) = self.wf.operators.get(p + 1) else {
                continue;
            };
            let producer = &self.wf.operators[p];
            let fusible = match (producer.operator.as_str(), consumer.operator.as_str()) {
                ("Sort" | "sort", "Distribute" | "distribute") => {
                    // The executable rewrite needs a flat sort output and an
                    // index-routed policy; stay silent when either is
                    // unknowable symbolically.
                    let flat = d.meta.as_ref().is_some_and(|m| m.format == Format::Flat);
                    let policy = self
                        .resolved_params
                        .get(&(consumer.id.clone(), "distrPolicy".to_string()))
                        .or_else(|| {
                            self.resolved_params
                                .get(&(consumer.id.clone(), "policy".to_string()))
                        });
                    flat && policy.is_some_and(|r| {
                        r.concrete
                            && matches!(
                                DistrPolicy::parse(&r.text),
                                Ok(DistrPolicy::Cyclic) | Ok(DistrPolicy::Block)
                            )
                    })
                }
                ("Group" | "group", "Split" | "split") => true,
                _ => false,
            };
            if fusible {
                found.push((d.name.clone(), consumer.id.clone(), d.span));
            }
        }
        for (name, consumer, span) in found {
            self.warning(
                Code::W006,
                span,
                format!(
                    "intermediate '{name}' is consumed only by the next job \
                     '{consumer}': job fusion streams it instead of writing it \
                     (--no-fuse keeps it materialized)"
                ),
            );
        }
    }

    fn check_unused_arguments(&mut self) {
        let unused: Vec<(String, Span)> = self
            .wf
            .arguments
            .iter()
            .filter(|a| !self.used_args.contains(&a.name))
            .map(|a| (a.name.clone(), a.span))
            .collect();
        for (name, span) in unused {
            self.warning(
                Code::W005,
                span,
                format!("argument '{name}' is never referenced"),
            );
        }
    }
}

/// Classify a failed `$job.*` reference: P003 for self/forward references
/// (the cycle check), P002 for everything else.
fn job_ref_problem(
    job: &str,
    defined: &HashSet<String>,
    all_ids: &HashSet<String>,
    current: &Option<String>,
    detail: String,
) -> (Code, String) {
    if current.as_deref() == Some(job) {
        (
            Code::P003,
            format!("reference {detail} (a job cannot reference itself)"),
        )
    } else if all_ids.contains(job) && !defined.contains(job) {
        (
            Code::P003,
            format!(
                "reference {detail} (job '{job}' is defined later: jobs launch in document order)"
            ),
        )
    } else {
        (Code::P002, format!("reference {detail}"))
    }
}

fn apply_format(input: Format, op: FormatOp) -> Format {
    match op {
        FormatOp::Orig => input,
        FormatOp::Pack => Format::Packed,
        FormatOp::Unpack => Format::Flat,
    }
}

/// Can `threshold` be meaningfully compared with a key field of type
/// `field`? Numeric types compare with each other; strings only with
/// strings.
fn threshold_compatible(field: FieldType, threshold: &Value) -> bool {
    let field_is_str = matches!(field, FieldType::Str);
    let threshold_is_str = matches!(threshold, Value::Str(_));
    field_is_str == threshold_is_str
}
