//! Structured diagnostics: stable codes, severity, message, source span.
//!
//! Every problem `papar check` can report has a stable code so tooling (and
//! the golden tests) can match on it: `P0xx` codes are errors that make the
//! workflow unrunnable, `W0xx` codes are warnings about plans that run but
//! probably not the way the author intended. The full table lives in
//! DESIGN.md §8.

use papar_config::xml::Span;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan is still executable; the result may not be what was meant.
    Warning,
    /// The workflow cannot run (or would crash mid-execution).
    Error,
}

impl Severity {
    /// Lowercase name, as rendered and serialized.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Inverse of [`Severity::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One problem found by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`P001`, `W002`, ...).
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Which document the span refers to: `"workflow"` or an InputData id.
    pub doc: String,
    /// 1-based line/column in that document ([`Span::UNKNOWN`] when the
    /// problem has no single source position).
    pub span: Span,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: Code,
        doc: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            doc: doc.into(),
            span,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: Code,
        doc: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            doc: doc.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    /// `error[P001]: workflow:3:12: unbound argument '$input_fil'`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity.as_str(),
            self.code,
            self.doc,
            self.span,
            self.message
        )
    }
}

macro_rules! codes {
    ($($(#[doc = $doc:expr])* $name:ident = $text:expr,)*) => {
        /// The stable diagnostic codes (see DESIGN.md §8 for the table).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Code {
            $($(#[doc = $doc])* $name,)*
        }

        impl Code {
            /// The code string, e.g. `"P001"`.
            pub fn as_str(&self) -> &'static str {
                match self { $(Code::$name => $text,)* }
            }

            /// Inverse of [`Code::as_str`].
            pub fn parse(s: &str) -> Option<Self> {
                match s { $($text => Some(Code::$name),)* _ => None }
            }

            /// Every code, in numeric order (used by the docs test).
            pub fn all() -> &'static [Code] {
                &[$(Code::$name,)*]
            }
        }
    };
}

codes! {
    /// The document does not parse as XML / has no valid structure.
    P000 = "P000",
    /// A `$name` reference names no declared workflow argument.
    P001 = "P001",
    /// A `$job.param` / `$job.$attr` reference names no such job, parameter,
    /// or add-on attribute.
    P002 = "P002",
    /// A job reference points at the referencing job itself or a later job
    /// (use before definition; the job list is a linear order, so this is
    /// the cycle check).
    P003 = "P003",
    /// Two operators share an id.
    P004 = "P004",
    /// A job writes a dataset name that already exists.
    P005 = "P005",
    /// A sort/group/split key or add-on key names no field of the inferred
    /// input schema.
    P006 = "P006",
    /// An operator is missing a required parameter.
    P007 = "P007",
    /// A split policy expression does not parse or its condition count does
    /// not match the output list.
    P008 = "P008",
    /// A split threshold's type is incomparable with the key field's type.
    P009 = "P009",
    /// An add-on cannot be applied: unknown add-on operator, result type
    /// undefined (sum over String), or the appended attribute already exists.
    P010 = "P010",
    /// A format operator is illegal here: unknown spelling, format-list
    /// arity mismatch, or group over packed input.
    P011 = "P011",
    /// An illegal distribution/parallelism parameter: unknown policy,
    /// non-positive or non-integer numPartitions / num_reducers, or an
    /// unknown sort flag.
    P012 = "P012",
    /// An operator names an implementation that is not registered.
    P013 = "P013",
    /// Duplicate declaration: argument declared twice or input field name
    /// reused.
    P015 = "P015",
    /// A `$` reference is syntactically malformed.
    P016 = "P016",
    /// An input path resolves to no dataset: not produced by an earlier job
    /// and no argument declares its format, or the declared format has no
    /// InputData configuration.
    P017 = "P017",
    /// The requested replication factor cannot be satisfied by the cluster.
    P018 = "P018",
    /// An InputData configuration is semantically invalid (String field in
    /// a binary input, missing delimiter, no fields).
    P019 = "P019",
    /// A `--resume` checkpoint was taken by a different run: its plan
    /// fingerprint (physical plan, input contents, fault seed, or
    /// configuration digest) does not match the current invocation, so
    /// resuming would not be byte-identical and is refused.
    P020 = "P020",
    /// The reducer count of a keyed stage provably exceeds the distinct-key
    /// upper bound under a strict (value-routed) partitioner, so at least one
    /// reducer can never receive a key group.
    P021 = "P021",
    /// Plan-invariant violation: the planner's compiled metadata diverges
    /// from the analyzer's inference (a framework bug, not a user error).
    P099 = "P099",
    /// A job output is never consumed and is not the workflow output.
    W001 = "W001",
    /// Fewer partitions than cluster nodes: part of the cluster stays idle.
    W002 = "W002",
    /// The record count is not divisible by the partition count, so the
    /// strict stride permutation `L_m^{km}` (`m | km`) does not apply and
    /// the generalized form is used.
    W003 = "W003",
    /// The plan's output is not byte-reproducible: an index-routed
    /// distribute consumes a sort output, so equal sort keys make the layout
    /// depend on tie-breaking.
    W004 = "W004",
    /// A declared argument is never referenced.
    W005 = "W005",
    /// An intermediate dataset has exactly one consumer — the job right
    /// after its producer — and the pair matches a fusion rewrite, so the
    /// physical planner streams the dataset instead of writing it to the
    /// cluster store (`--no-fuse` keeps it materialized).
    W006 = "W006",
    /// A distribute stage has provably empty partitions: the record-count
    /// upper bound is below the partition count, so the trailing partitions
    /// can never receive a record under any launch.
    W007 = "W007",
    /// The static per-reducer load bound exceeds the configured skew ratio:
    /// in the worst case admitted by the bounds, one reducer processes more
    /// than `ratio` times its fair share.
    W008 = "W008",
    /// A structurally adjacent operator pair that looks fusible was not
    /// fused; the message names the gate (and bound) that blocked the
    /// rewrite, so the extra shuffle is deliberate, not an oversight.
    W009 = "W009",
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// True when any diagnostic is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render a diagnostic list the way the CLI prints it, one per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_is_stable() {
        let d = Diagnostic::error(
            Code::P001,
            "workflow",
            Span::new(3, 12),
            "unbound argument '$input_fil'",
        );
        assert_eq!(
            d.to_string(),
            "error[P001]: workflow:3:12: unbound argument '$input_fil'"
        );
        let w = Diagnostic::warning(Code::W002, "workflow", Span::UNKNOWN, "2 partitions");
        assert_eq!(w.to_string(), "warning[W002]: workflow:?:?: 2 partitions");
    }

    #[test]
    fn code_round_trip() {
        for c in Code::all() {
            assert_eq!(Code::parse(c.as_str()), Some(*c));
        }
        assert_eq!(Code::parse("P042"), None);
    }

    #[test]
    fn codes_are_unique_round_trip_and_documented() {
        use std::collections::HashSet;
        // Unique strings.
        let mut seen = HashSet::new();
        for c in Code::all() {
            assert!(seen.insert(c.as_str()), "duplicate code string {}", c);
        }
        // Exact parse round-trip (as_str -> parse -> same variant).
        for c in Code::all() {
            assert_eq!(Code::parse(c.as_str()), Some(*c), "round-trip for {c}");
        }
        // Every code has a row in the DESIGN.md §8 table: a line starting
        // with `| \`P0xx\` |`.
        let design = include_str!("../../../DESIGN.md");
        for c in Code::all() {
            let row = format!("| `{}` |", c.as_str());
            assert!(
                design.lines().any(|l| l.trim_start().starts_with(&row)),
                "code {} has no row in the DESIGN.md §8 table",
                c
            );
        }
    }

    #[test]
    fn severity_orders_errors_above_warnings() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Severity::parse("error"), Some(Severity::Error));
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
    }
}
