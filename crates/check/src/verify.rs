//! Plan-invariant verification: the analyzer's schema inference and the
//! planner's compiled metadata must agree.
//!
//! The analyzer (crates/check) and the planner's `Binder` (crates/core)
//! implement the same inference twice — once recovering, once failing fast.
//! [`verify_plan`] cross-checks them job by job and reports any divergence
//! as `P099`, which is a framework bug, not a user error. The debug-mode
//! runtime verifier in `crates/core/src/exec.rs` closes the remaining gap
//! by asserting the compiled metadata against actual records.

use papar_config::xml::Span;
use papar_core::physplan::{self, PhysicalPlan, StageKind};
use papar_core::plan::WorkflowPlan;

use crate::analyze::Analysis;
use crate::diag::{Code, Diagnostic};

/// Compare the analyzer's inferred per-job output metadata against a
/// compiled plan. Returns one `P099` diagnostic per divergence.
///
/// Output *names* are not compared (the analysis may have run symbolically,
/// in which case its names are still `$argument` literals); schemas,
/// formats, and packed-key indices are.
pub fn verify_plan(analysis: &Analysis, plan: &WorkflowPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut mismatch = |msg: String| {
        out.push(Diagnostic::error(
            Code::P099,
            "workflow",
            Span::UNKNOWN,
            msg,
        ));
    };
    for job in &plan.jobs {
        let Some(inferred) = analysis.jobs.iter().find(|j| j.id == job.id) else {
            mismatch(format!(
                "plan has job '{}' but the analysis inferred no such job",
                job.id
            ));
            continue;
        };
        if inferred.outputs.is_empty() {
            // The analysis could not infer this job's outputs (symbolic
            // output list, missing params it diagnosed, ...). Nothing to
            // cross-check.
            continue;
        }
        if inferred.outputs.len() != job.outputs.len() {
            mismatch(format!(
                "job '{}': plan has {} outputs, analysis inferred {}",
                job.id,
                job.outputs.len(),
                inferred.outputs.len()
            ));
            continue;
        }
        for (i, ((_, inferred_meta), (name, plan_meta))) in
            inferred.outputs.iter().zip(&job.outputs).enumerate()
        {
            let Some(inferred_meta) = inferred_meta else {
                continue;
            };
            if inferred_meta.schema != plan_meta.schema {
                mismatch(format!(
                    "job '{}' output #{i} ('{name}'): plan schema {:?} but analysis \
                     inferred {:?}",
                    job.id,
                    plan_meta.schema.fields(),
                    inferred_meta.schema.fields()
                ));
            }
            if inferred_meta.format != plan_meta.format {
                mismatch(format!(
                    "job '{}' output #{i} ('{name}'): plan format {:?} but analysis \
                     inferred {:?}",
                    job.id, plan_meta.format, inferred_meta.format
                ));
            }
            if inferred_meta.packed_key != plan_meta.packed_key {
                mismatch(format!(
                    "job '{}' output #{i} ('{name}'): plan packed_key {:?} but analysis \
                     inferred {:?}",
                    job.id, plan_meta.packed_key, inferred_meta.packed_key
                ));
            }
        }
    }
    out
}

/// Verify a lowered [`PhysicalPlan`] against the logical plan it claims to
/// implement. Returns one `P099` diagnostic per violated invariant — like
/// [`verify_plan`], any hit is a framework bug, not a user error.
///
/// `num_nodes` and `default_reducers` must describe the cluster the plan
/// was lowered for (the group→split gate depends on them).
pub fn verify_physical_plan(
    plan: &WorkflowPlan,
    phys: &PhysicalPlan,
    num_nodes: usize,
    default_reducers: Option<usize>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut violation = |msg: String| {
        out.push(Diagnostic::error(
            Code::P099,
            "workflow",
            Span::UNKNOWN,
            msg,
        ));
    };

    // 1. The stages' logical lists partition 0..jobs.len(), in order.
    let covered: Vec<usize> = phys
        .stages
        .iter()
        .flat_map(|s| s.logical.iter().copied())
        .collect();
    if covered != (0..plan.jobs.len()).collect::<Vec<_>>() {
        violation(format!(
            "physical stages cover logical jobs {covered:?}, expected every job \
             0..{} exactly once in order",
            plan.jobs.len()
        ));
    }

    for stage in &phys.stages {
        // 2. The stage kind agrees with the logical list, and fused kinds
        //    satisfy their byte-identity gates.
        match stage.kind {
            StageKind::Single(j) => {
                if stage.logical != vec![j] {
                    violation(format!(
                        "stage '{}' is Single({j}) but covers {:?}",
                        stage.id, stage.logical
                    ));
                }
                if !stage.elided.is_empty() {
                    violation(format!(
                        "stage '{}' is unfused but claims to stream {:?}",
                        stage.id, stage.elided
                    ));
                }
            }
            StageKind::FusedSortDistribute { sort, distribute } => {
                if stage.logical != vec![sort, distribute] || distribute != sort + 1 {
                    violation(format!(
                        "stage '{}' fuses jobs {sort} and {distribute} but covers {:?}",
                        stage.id, stage.logical
                    ));
                } else if !physplan::sort_distribute_fusible(plan, sort) {
                    violation(format!(
                        "stage '{}' fuses sort job {sort} with distribute job \
                         {distribute}, but the pair fails the sort→distribute gate",
                        stage.id
                    ));
                }
            }
            StageKind::FusedGroupSplit { group, split } => {
                if stage.logical != vec![group, split] || split != group + 1 {
                    violation(format!(
                        "stage '{}' fuses jobs {group} and {split} but covers {:?}",
                        stage.id, stage.logical
                    ));
                } else if !physplan::group_split_fusible(plan, group, num_nodes, default_reducers) {
                    violation(format!(
                        "stage '{}' fuses group job {group} with split job {split}, \
                         but the pair fails the group→split gate",
                        stage.id
                    ));
                }
            }
        }
        if !phys.fused && stage.logical.len() > 1 {
            violation(format!(
                "plan was lowered with --no-fuse but stage '{}' fuses {:?}",
                stage.id, stage.logical
            ));
        }
        // 3. Streaming a dataset is only safe when exactly one consumer
        //    exists and it is not the workflow's declared output.
        for name in &stage.elided {
            let consumers = physplan::consumer_count(plan, name);
            if consumers != 1 {
                violation(format!(
                    "stage '{}' streams '{name}', which has {consumers} consumer(s) \
                     (streaming requires exactly one)",
                    stage.id
                ));
            }
            if plan.output_path == *name {
                violation(format!(
                    "stage '{}' streams '{name}', the workflow output",
                    stage.id
                ));
            }
        }
    }

    // 4. Lowering is deterministic: re-lowering under the same cluster
    //    shape must reproduce the plan being verified.
    let relowered = physplan::lower(plan, num_nodes, default_reducers, phys.fused);
    if relowered != *phys {
        violation(format!(
            "physical plan diverges from lowering: got {} stage(s), re-lowering \
             produces {}",
            phys.stages.len(),
            relowered.stages.len()
        ));
    }
    out
}
