//! Plan-invariant verification: the analyzer's schema inference and the
//! planner's compiled metadata must agree.
//!
//! The analyzer (crates/check) and the planner's `Binder` (crates/core)
//! implement the same inference twice — once recovering, once failing fast.
//! [`verify_plan`] cross-checks them job by job and reports any divergence
//! as `P099`, which is a framework bug, not a user error. The debug-mode
//! runtime verifier in `crates/core/src/exec.rs` closes the remaining gap
//! by asserting the compiled metadata against actual records.

use papar_config::xml::Span;
use papar_core::plan::WorkflowPlan;

use crate::analyze::Analysis;
use crate::diag::{Code, Diagnostic};

/// Compare the analyzer's inferred per-job output metadata against a
/// compiled plan. Returns one `P099` diagnostic per divergence.
///
/// Output *names* are not compared (the analysis may have run symbolically,
/// in which case its names are still `$argument` literals); schemas,
/// formats, and packed-key indices are.
pub fn verify_plan(analysis: &Analysis, plan: &WorkflowPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut mismatch = |msg: String| {
        out.push(Diagnostic::error(
            Code::P099,
            "workflow",
            Span::UNKNOWN,
            msg,
        ));
    };
    for job in &plan.jobs {
        let Some(inferred) = analysis.jobs.iter().find(|j| j.id == job.id) else {
            mismatch(format!(
                "plan has job '{}' but the analysis inferred no such job",
                job.id
            ));
            continue;
        };
        if inferred.outputs.is_empty() {
            // The analysis could not infer this job's outputs (symbolic
            // output list, missing params it diagnosed, ...). Nothing to
            // cross-check.
            continue;
        }
        if inferred.outputs.len() != job.outputs.len() {
            mismatch(format!(
                "job '{}': plan has {} outputs, analysis inferred {}",
                job.id,
                job.outputs.len(),
                inferred.outputs.len()
            ));
            continue;
        }
        for (i, ((_, inferred_meta), (name, plan_meta))) in
            inferred.outputs.iter().zip(&job.outputs).enumerate()
        {
            let Some(inferred_meta) = inferred_meta else {
                continue;
            };
            if inferred_meta.schema != plan_meta.schema {
                mismatch(format!(
                    "job '{}' output #{i} ('{name}'): plan schema {:?} but analysis \
                     inferred {:?}",
                    job.id,
                    plan_meta.schema.fields(),
                    inferred_meta.schema.fields()
                ));
            }
            if inferred_meta.format != plan_meta.format {
                mismatch(format!(
                    "job '{}' output #{i} ('{name}'): plan format {:?} but analysis \
                     inferred {:?}",
                    job.id, plan_meta.format, inferred_meta.format
                ));
            }
            if inferred_meta.packed_key != plan_meta.packed_key {
                mismatch(format!(
                    "job '{}' output #{i} ('{name}'): plan packed_key {:?} but analysis \
                     inferred {:?}",
                    job.id, plan_meta.packed_key, inferred_meta.packed_key
                ));
            }
        }
    }
    out
}
