//! JSON serialization for diagnostics (`papar check --format json`).
//!
//! The build environment has no registry access, so there is no serde here:
//! the writer and the reader are hand-rolled for the one shape we emit — an
//! array of flat objects with string and integer values — and a test in
//! `tests/golden.rs` asserts the round trip.

use crate::diag::{Code, Diagnostic, Severity};
use papar_config::xml::Span;

/// Serialize diagnostics as a JSON array, one object per diagnostic:
///
/// ```json
/// [{"code":"P001","severity":"error","doc":"workflow","line":3,"col":12,
///   "message":"unbound argument '$input_fil'"}]
/// ```
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"doc\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            quote(d.code.as_str()),
            quote(d.severity.as_str()),
            quote(&d.doc),
            d.span.line,
            d.span.col,
            quote(&d.message)
        ));
    }
    out.push(']');
    out
}

/// Parse the output of [`to_json`] back into diagnostics.
pub fn from_json(s: &str) -> Result<Vec<Diagnostic>, String> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let diags = p.parse_array()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(diags)
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn parse_array(&mut self) -> Result<Vec<Diagnostic>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.parse_object()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Diagnostic, String> {
        self.expect(b'{')?;
        let mut code = None;
        let mut severity = None;
        let mut doc = None;
        let mut line = None;
        let mut col = None;
        let mut message = None;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "code" => {
                    let s = self.parse_string()?;
                    code = Some(Code::parse(&s).ok_or(format!("unknown code '{s}'"))?);
                }
                "severity" => {
                    let s = self.parse_string()?;
                    severity = Some(Severity::parse(&s).ok_or(format!("unknown severity '{s}'"))?);
                }
                "doc" => doc = Some(self.parse_string()?),
                "message" => message = Some(self.parse_string()?),
                "line" => line = Some(self.parse_number()?),
                "col" => col = Some(self.parse_number()?),
                other => return Err(format!("unknown key '{other}'")),
            }
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
        Ok(Diagnostic {
            code: code.ok_or("missing 'code'")?,
            severity: severity.ok_or("missing 'severity'")?,
            message: message.ok_or("missing 'message'")?,
            doc: doc.ok_or("missing 'doc'")?,
            span: Span {
                line: line.ok_or("missing 'line'")?,
                col: col.ok_or("missing 'col'")?,
            },
        })
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(char::from_u32(v).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Re-sync to char boundary: strings are valid UTF-8, so
                    // collect the full multi-byte sequence.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        if start + width > self.bytes.len() {
                            return Err("truncated UTF-8 sequence".into());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + width])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.peek().map(|b| b.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let d = Diagnostic::error(
            Code::P008,
            "workflow",
            Span::new(1, 1),
            "bad policy '{>=,\t\"x\"}'\\n",
        );
        let parsed = from_json(&to_json(std::slice::from_ref(&d))).unwrap();
        assert_eq!(parsed, vec![d]);
    }

    #[test]
    fn empty_list() {
        assert_eq!(to_json(&[]), "[]");
        assert_eq!(from_json("[]").unwrap(), vec![]);
        assert_eq!(from_json(" [ ] ").unwrap(), vec![]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_json("").is_err());
        assert!(from_json("[{}]").is_err());
        assert!(from_json("[] trailing").is_err());
        assert!(from_json("[{\"code\":\"XYZ\"}]").is_err());
    }

    #[test]
    fn non_ascii_round_trips() {
        let d = Diagnostic::warning(Code::W001, "workflow", Span::new(2, 3), "naïve café ✓");
        assert_eq!(
            from_json(&to_json(std::slice::from_ref(&d))).unwrap(),
            vec![d]
        );
    }
}
