//! Quantitative static analysis: interval bounds over the physical plan,
//! surfaced as diagnostics and a per-stage table.
//!
//! The interpretation itself lives in [`papar_core::bounds`] (it needs the
//! plan types, and the executor's debug-mode verifier consumes it without
//! this crate). This module is the diagnostic surface: it runs the
//! interpreter, anchors each finding at the declaring `<operator>`
//! element, and renders the table `papar check --bounds` and `papar plan
//! --explain` print. Codes emitted here (DESIGN.md §8 and §13):
//!
//! * `P021` — a keyed stage runs more reducers than the distinct-key
//!   upper bound admits under its value-routed partitioner;
//! * `W007` — a distribute stage has provably empty partitions;
//! * `W008` — a distribute stage's worst-case partition load exceeds the
//!   configured skew ratio;
//! * `W009` — an adjacent pair that looks fusible stayed unfused, with
//!   the blocking gate named;
//! * `P099` — a fused stage fails its bounds-level legality re-proof
//!   (a framework bug: the rewriter fused something the facts reject).

use papar_config::xml::Span;
use papar_config::WorkflowConfig;
use papar_core::bounds::{
    compute, render_table, BoundsOptions, Interval, SourceBounds, WorkflowBounds,
};
use papar_core::physplan::{PhysicalPlan, StageKind};
use papar_core::plan::{JobKind, WorkflowPlan};

use crate::diag::{Code, Diagnostic};

/// Knobs of the bounds analysis.
#[derive(Debug, Clone)]
pub struct BoundsConfig {
    /// Cluster size the physical plan was lowered for.
    pub num_nodes: usize,
    /// `ExecOptions::default_reducers`.
    pub default_reducers: Option<usize>,
    /// Exact record count of every external input (`--records`), when
    /// known; sources start at `[0, ?]` otherwise.
    pub records: Option<u64>,
    /// Upper bound on distinct values of any single input field
    /// (`--distinct-keys`), when declared.
    pub distinct_keys: Option<u64>,
    /// `W008` threshold: worst-case busiest-partition load over the fair
    /// share (`--skew-ratio`).
    pub skew_ratio: f64,
    /// Reducer counts an adaptive [`papar_core::adaptive::PlanDecision`]
    /// chose, by job id: when set, W008/P021 judge the plan that will
    /// actually run rather than the configured literal.
    pub reducer_overrides: std::collections::BTreeMap<String, usize>,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            num_nodes: 4,
            default_reducers: None,
            records: None,
            distinct_keys: None,
            skew_ratio: 4.0,
            reducer_overrides: Default::default(),
        }
    }
}

/// What the bounds analysis produced.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// The raw interpretation (per-stage intervals, proofs, rejects).
    pub bounds: WorkflowBounds,
    /// P021/W007/W008/W009/P099 findings, anchored at operator spans.
    pub diagnostics: Vec<Diagnostic>,
    /// The per-stage bound table, ready to print.
    pub table: String,
}

/// Position of the `<operator>` element declaring job `id` (unknown when
/// the workflow was built programmatically).
fn span_of(workflow: &WorkflowConfig, id: &str) -> Span {
    workflow
        .operators
        .iter()
        .find(|o| o.id == id)
        .map(|o| o.span)
        .unwrap_or(Span::UNKNOWN)
}

/// Run the interval interpretation over `phys` and turn its facts into
/// diagnostics. `plan` must be the logical plan `phys` was lowered from,
/// and `workflow` the document it was bound from (for spans).
pub fn analyze_bounds(
    workflow: &WorkflowConfig,
    plan: &WorkflowPlan,
    phys: &PhysicalPlan,
    cfg: &BoundsConfig,
) -> BoundsReport {
    let mut opts = BoundsOptions {
        num_nodes: cfg.num_nodes,
        default_reducers: cfg.default_reducers,
        sources: Default::default(),
        reducer_overrides: cfg.reducer_overrides.clone(),
    };
    for (name, _) in &plan.external_inputs {
        let records = cfg
            .records
            .map(Interval::exact)
            .unwrap_or_else(Interval::top);
        let distinct = cfg
            .distinct_keys
            .map(|k| Interval { lo: 0, hi: k })
            .unwrap_or_else(Interval::top);
        opts.sources
            .insert(name.clone(), SourceBounds { records, distinct });
    }
    let bounds = compute(plan, phys, &opts);
    let mut diagnostics = Vec::new();

    for (sidx, stage) in phys.stages.iter().enumerate() {
        let sb = &bounds.stages[sidx];
        // The keyed job of the stage, when its partitioner routes by
        // value (hash for group, sampled ranges for sort): with fewer
        // distinct keys than reducers, some reducer provably receives no
        // key group.
        let keyed = match &stage.kind {
            StageKind::Single(j) => matches!(
                plan.jobs[*j].kind,
                JobKind::Sort { .. } | JobKind::Group { .. }
            )
            .then_some(*j),
            StageKind::FusedSortDistribute { sort, .. } => Some(*sort),
            StageKind::FusedGroupSplit { group, .. } => Some(*group),
        };
        if let Some(j) = keyed {
            let job = &plan.jobs[j];
            let distinct = job
                .inputs
                .iter()
                .filter_map(|n| bounds.datasets.get(n))
                .fold(Interval::zero(), |acc, b| acc.add(b.distinct));
            if distinct.is_bounded() && sb.reducers as u64 > distinct.hi {
                diagnostics.push(Diagnostic::error(
                    Code::P021,
                    "workflow",
                    span_of(workflow, &job.id),
                    format!(
                        "job '{}' runs {} reducers but its input has at most {} distinct \
                         key(s); a value-routed partitioner can never feed {} of them",
                        job.id,
                        sb.reducers,
                        distinct.hi,
                        sb.reducers as u64 - distinct.hi
                    ),
                ));
            }
        }

        // Partition-layout findings anchor at the distribute operator.
        if let Some(p) = &sb.partitions {
            let dist_job = match &stage.kind {
                StageKind::Single(j) => *j,
                StageKind::FusedSortDistribute { distribute, .. } => *distribute,
                StageKind::FusedGroupSplit { .. } => unreachable!("split has no partitions"),
            };
            let id = &plan.jobs[dist_job].id;
            let span = span_of(workflow, id);
            if p.provably_empty > 0 {
                diagnostics.push(Diagnostic::warning(
                    Code::W007,
                    "workflow",
                    span,
                    format!(
                        "job '{}' distributes at most {} entr{} over {} partitions: {} \
                         partition(s) are provably empty under every admissible input",
                        id,
                        sb.pairs.hi,
                        if sb.pairs.hi == 1 { "y" } else { "ies" },
                        p.per_partition.len(),
                        p.provably_empty
                    ),
                ));
            }
            if let Some(ratio) = p.imbalance_hi {
                if ratio > cfg.skew_ratio {
                    diagnostics.push(Diagnostic::warning(
                        Code::W008,
                        "workflow",
                        span,
                        format!(
                            "job '{}': the static worst case puts {} of {} record(s) on one \
                             of {} partition(s) ({:.1}x the fair share, --skew-ratio {:.1}); \
                             a value-routed policy admits a single hot key",
                            id,
                            sb.max_load.hi,
                            sb.records_in.hi,
                            p.per_partition.len(),
                            ratio,
                            cfg.skew_ratio
                        ),
                    ));
                }
            }
        }
    }

    // Adjacent pairs that look fusible but stayed unfused: name the gate,
    // so the extra materialized dataset and shuffle are visibly deliberate.
    for r in &bounds.rejects {
        let first = &plan.jobs[r.first];
        let second = &plan.jobs[r.second];
        diagnostics.push(Diagnostic::warning(
            Code::W009,
            "workflow",
            span_of(workflow, &first.id),
            format!(
                "jobs '{}' and '{}' look fusible but were not fused: {}",
                first.id, second.id, r.reason
            ),
        ));
    }

    // A fused stage whose legality re-proof fails is a rewriter bug.
    for proof in &bounds.proofs {
        if !proof.ok {
            diagnostics.push(Diagnostic::error(
                Code::P099,
                "workflow",
                Span::UNKNOWN,
                format!(
                    "fused stage '{}' fails its bounds-level legality re-proof: {}",
                    proof.id,
                    proof.violation.as_deref().unwrap_or("unknown obligation")
                ),
            ));
        }
    }

    let table = render_table(&bounds);
    BoundsReport {
        bounds,
        diagnostics,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papar_config::InputConfig;
    use papar_core::plan::Planner;
    use std::collections::HashMap;

    const INPUT: &str = r#"
<input id="edges" name="edge list">
  <input_format>binary</input_format>
  <start_position>0</start_position>
  <element>
    <value name="src" type="integer"/>
    <value name="dst" type="integer"/>
  </element>
</input>"#;

    fn bind(workflow_xml: &str, args: &[(&str, &str)]) -> (WorkflowConfig, WorkflowPlan) {
        let wf = WorkflowConfig::parse_str(workflow_xml).unwrap();
        let cfg = InputConfig::parse_str(INPUT).unwrap();
        let args: HashMap<String, String> = args
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let plan = Planner::new(wf.clone(), vec![cfg]).bind(&args).unwrap();
        (wf, plan)
    }

    const SORT_DISTR: &str = r#"
<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="edges"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/sorted"/>
      <param name="key" type="KeyId" value="src"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="/user/parts"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="4"/>
    </operator>
  </operators>
</workflow>"#;

    #[test]
    fn exact_sources_give_exact_stage_rows_and_no_findings() {
        let (wf, plan) = bind(SORT_DISTR, &[("input_path", "/data/edges")]);
        let phys = papar_core::physplan::lower(&plan, 4, None, true);
        let report = analyze_bounds(
            &wf,
            &plan,
            &phys,
            &BoundsConfig {
                records: Some(1000),
                ..Default::default()
            },
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let stage = &report.bounds.stages[0];
        assert_eq!(stage.records_in, Interval::exact(1000));
        assert_eq!(stage.records_out, Interval::exact(1000));
        assert_eq!(stage.max_load, Interval::new(250, 1000));
        let parts = stage.partitions.as_ref().unwrap();
        assert_eq!(parts.per_partition.len(), 4);
        assert!(parts
            .per_partition
            .iter()
            .all(|i| *i == Interval::exact(250)));
        assert!(report.table.contains("1000"), "{}", report.table);
        // The fused stage carries a passing legality proof.
        assert_eq!(report.bounds.proofs.len(), 1);
        assert!(report.bounds.proofs[0].ok);
    }

    #[test]
    fn unknown_sources_stay_top_without_spurious_findings() {
        let (wf, plan) = bind(SORT_DISTR, &[("input_path", "/data/edges")]);
        let phys = papar_core::physplan::lower(&plan, 4, None, true);
        let report = analyze_bounds(&wf, &plan, &phys, &BoundsConfig::default());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(!report.bounds.stages[0].records_in.is_bounded());
        assert!(report.table.contains('?'), "{}", report.table);
    }

    #[test]
    fn provably_empty_partitions_fire_w007() {
        let (wf, plan) = bind(SORT_DISTR, &[("input_path", "/data/edges")]);
        let phys = papar_core::physplan::lower(&plan, 4, None, true);
        let report = analyze_bounds(
            &wf,
            &plan,
            &phys,
            &BoundsConfig {
                records: Some(2),
                ..Default::default()
            },
        );
        let w007: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::W007)
            .collect();
        assert_eq!(w007.len(), 1, "{:?}", report.diagnostics);
        assert!(
            w007[0].message.contains("2 partition(s)"),
            "{}",
            w007[0].message
        );
        // Anchored at the distribute operator, not the sort.
        assert_eq!(w007[0].span, span_of(&wf, "distr"));
    }

    #[test]
    fn reducer_overcommit_fires_p021() {
        let (wf, plan) = bind(SORT_DISTR, &[("input_path", "/data/edges")]);
        let phys = papar_core::physplan::lower(&plan, 8, None, true);
        let report = analyze_bounds(
            &wf,
            &plan,
            &phys,
            &BoundsConfig {
                num_nodes: 8,
                records: Some(1000),
                distinct_keys: Some(3),
                ..Default::default()
            },
        );
        let p021: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::P021)
            .collect();
        assert_eq!(p021.len(), 1, "{:?}", report.diagnostics);
        assert!(
            p021[0].message.contains("8 reducers"),
            "{}",
            p021[0].message
        );
        assert!(
            p021[0].message.contains("3 distinct"),
            "{}",
            p021[0].message
        );
    }
}
