//! Golden diagnostics: one test per diagnostic class, asserting the exact
//! code AND the exact source span. Spans are computed from the document
//! text with [`span_of`] instead of hand-counted columns, so the tests
//! survive reformatting of the fixtures as long as the needles stay unique.

use papar_check::{
    analyze, check_sources, json, verify_physical_plan, verify_plan, Analysis, CheckContext, Code,
};
use papar_config::xml::Span;
use papar_config::{InputConfig, WorkflowConfig};
use papar_core::physplan::{lower, StageKind};
use papar_core::plan::{Format, Planner};
use std::collections::HashMap;

// ---- fixtures --------------------------------------------------------

const BLAST_DB: &str = r#"<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;

const GRAPH_EDGE: &str = r#"<input id="graph_edge" name="edge lists">
  <input_format>text</input_format>
  <element>
    <value name="vertex_a" type="String"/>
    <delimiter value="\t"/>
    <value name="vertex_b" type="String"/>
    <delimiter value="\n"/>
  </element>
</input>"#;

/// Paper Figure 8, verbatim (including the `ouputPath` typo on the sort
/// operator and the `$sort.ouputPath` back-reference).
const FIG8: &str = r#"<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
    <param name="num_reducers" type="integer" value="3"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort" num_reducers="$num_reducers">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="ouputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.ouputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

/// Paper Figure 10, verbatim.
const FIG10: &str = r#"<workflow id="hybrid_cut" name="Hybrid-cut">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
    <param name="output_path" type="hdfs" format="graph_edge"/>
    <param name="num_partitions" type="integer"/>
    <param name="threshold" type="integer"/>
  </arguments>
  <operators>
    <operator id="group" operator="group">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPath" type="String" value="/tmp/group" format="pack"/>
      <param name="key" type="KeyId" value="vertex_b"/>
      <addon operator="count" key="vertex_b" attr="indegree"/>
    </operator>
    <operator id="split" operator="Split">
      <param name="inputPath" type="String" value="$group.outputPath"/>
      <param name="outputPathList" type="StringList"
             value="/tmp/split/high_degree,/tmp/split/low_degree"
             format="unpack,orig"/>
      <param name="key" type="KeyId" value="$group.$indegree"/>
      <param name="policy" type="SplitPolicy" value="{&gt;=, $threshold},{&lt;,$threshold}"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="/tmp/split/"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="policy" type="distrPolicy" value="graphVertexCut"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

// ---- helpers ---------------------------------------------------------

/// The 1-based line/column of the `nth` (0-based) occurrence of `needle`.
fn span_of(doc: &str, needle: &str, nth: usize) -> Span {
    let mut from = 0;
    let mut remaining = nth;
    let off = loop {
        let i = doc[from..]
            .find(needle)
            .unwrap_or_else(|| panic!("needle {needle:?} (#{nth}) not in document"))
            + from;
        if remaining == 0 {
            break i;
        }
        remaining -= 1;
        from = i + 1;
    };
    let line = doc[..off].matches('\n').count() + 1;
    let col = off - doc[..off].rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
    Span::new(line, col)
}

fn check(wf: &str) -> Analysis {
    check_sources(wf, &[("blast_db.xml", BLAST_DB)], &CheckContext::default())
}

#[track_caller]
fn assert_diag(a: &Analysis, code: Code, span: Span) {
    assert!(
        a.diagnostics
            .iter()
            .any(|d| d.code == code && d.span == span),
        "expected {} at {span}, got:\n{}",
        code.as_str(),
        papar_check::render_text(&a.diagnostics)
    );
}

/// Exactly one diagnostic: the `W006` fusion note at `needle`'s position.
#[track_caller]
fn assert_w006_only(a: &Analysis, doc: &str, needle: &str) {
    assert_eq!(
        a.diagnostics.len(),
        1,
        "{}",
        papar_check::render_text(&a.diagnostics)
    );
    assert_diag(a, Code::W006, span_of(doc, needle, 0));
}

/// A minimal one-sort workflow with holes for perturbation.
fn sort_wf(params: &str) -> String {
    format!(
        r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
{params}
    </operator>
  </operators>
</workflow>"#
    )
}

// ---- P0xx: errors ----------------------------------------------------

#[test]
fn p000_duplicate_attribute() {
    let wf = r#"<workflow id="w" id="w2" name="n">
  <operators/>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P000, span_of(wf, r#"id="w2""#, 0));
    assert!(a.has_errors());
}

#[test]
fn p000_no_operators() {
    let wf = "<workflow id=\"w\" name=\"n\">\n  <operators/>\n</workflow>";
    let a = check(wf);
    assert_diag(&a, Code::P000, Span::new(1, 1));
}

#[test]
fn p001_unbound_argument_reference() {
    // `$input_fil` — a typo for the declared `input_path`.
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_fil"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>"#,
    );
    let a = check(&wf);
    assert_diag(&a, Code::P001, span_of(&wf, r#"value="$input_fil""#, 0));
    let d = &a.errors()[0];
    assert!(d.message.contains("input_fil"), "{}", d.message);
}

#[test]
fn p001_undeclared_launch_argument() {
    let ctx = CheckContext {
        args: HashMap::from([("bogus".to_string(), "1".to_string())]),
        ..Default::default()
    };
    let a = check_sources(FIG8, &[("blast_db.xml", BLAST_DB)], &ctx);
    assert_diag(&a, Code::P001, span_of(FIG8, "<workflow", 0));
}

#[test]
fn p002_unknown_job_reference() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$nope.outputPath"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>"#,
    );
    let a = check(&wf);
    assert_diag(
        &a,
        Code::P002,
        span_of(&wf, r#"value="$nope.outputPath""#, 0),
    );
}

#[test]
fn p002_unknown_addon_attribute() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/a"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="sort2" operator="Sort">
      <param name="inputPath" type="String" value="/a"/>
      <param name="outputPath" type="String" value="/b"/>
      <param name="key" type="KeyId" value="$sort.$weight"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P002, span_of(wf, r#"value="$sort.$weight""#, 0));
}

#[test]
fn p003_self_reference() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>"#,
    );
    let a = check(&wf);
    assert_diag(
        &a,
        Code::P003,
        span_of(&wf, r#"value="$sort.outputPath""#, 0),
    );
}

#[test]
fn p003_forward_reference() {
    // Jobs launch in document order: reading a later job's output is the
    // dataflow cycle the analyzer must reject.
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="first" operator="Sort">
      <param name="inputPath" type="String" value="$second.outputPath"/>
      <param name="outputPath" type="String" value="/a"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="second" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/b"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    let span = span_of(wf, r#"value="$second.outputPath""#, 0);
    assert_diag(&a, Code::P003, span);
    let d = a.diagnostics.iter().find(|d| d.code == Code::P003).unwrap();
    assert!(d.message.contains("document order"), "{}", d.message);
}

#[test]
fn p004_duplicate_operator_id() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/a"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="/a"/>
      <param name="outputPath" type="String" value="/b"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P004, span_of(wf, r#"id="sort""#, 1));
}

#[test]
fn p005_duplicate_dataset_name() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/out"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/out"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P005, span_of(wf, r#"value="/user/out""#, 1));
}

#[test]
fn p006_unknown_sort_key() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_siz"/>"#,
    );
    let a = check(&wf);
    assert_diag(&a, Code::P006, span_of(&wf, r#"value="seq_siz""#, 0));
    // The message lists the fields that do exist.
    let d = a.errors()[0];
    assert!(d.message.contains("seq_size"), "{}", d.message);
}

#[test]
fn p007_missing_required_param() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>"#,
    );
    let a = check(&wf);
    assert_diag(&a, Code::P007, span_of(&wf, r#"<operator id="sort""#, 0));
}

#[test]
fn p008_malformed_split_policy() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="split" operator="Split">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPathList" type="StringList" value="/a,/b"/>
      <param name="key" type="KeyId" value="seq_size"/>
      <param name="policy" type="SplitPolicy" value="gibberish"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P008, span_of(wf, r#"value="gibberish""#, 0));
}

#[test]
fn p008_split_arity_mismatch() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="split" operator="Split">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPathList" type="StringList" value="/a,/b,/c"/>
      <param name="key" type="KeyId" value="seq_size"/>
      <param name="policy" type="SplitPolicy" value="{&gt;=, 4},{&lt;,4}"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(
        &a,
        Code::P008,
        span_of(wf, r#"value="{&gt;=, 4},{&lt;,4}""#, 0),
    );
}

#[test]
fn p009_threshold_incomparable_with_key() {
    // String key field, numeric thresholds.
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
  </arguments>
  <operators>
    <operator id="split" operator="Split">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPathList" type="StringList" value="/a,/b"/>
      <param name="key" type="KeyId" value="vertex_a"/>
      <param name="policy" type="SplitPolicy" value="{&gt;=, 4},{&lt;,4}"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check_sources(
        wf,
        &[("graph_edge.xml", GRAPH_EDGE)],
        &CheckContext::default(),
    );
    assert_diag(
        &a,
        Code::P009,
        span_of(wf, r#"value="{&gt;=, 4},{&lt;,4}""#, 0),
    );
}

#[test]
fn p010_unknown_addon_operator() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>
      <addon operator="median" key="seq_size" attr="m"/>"#,
    );
    let a = check(&wf);
    assert_diag(&a, Code::P010, span_of(&wf, "<addon", 0));
}

#[test]
fn p010_sum_over_string_field() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
  </arguments>
  <operators>
    <operator id="group" operator="Group">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="vertex_b"/>
      <addon operator="sum" key="vertex_a" attr="total"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check_sources(
        wf,
        &[("graph_edge.xml", GRAPH_EDGE)],
        &CheckContext::default(),
    );
    assert_diag(&a, Code::P010, span_of(wf, "<addon", 0));
}

#[test]
fn p011_unknown_format_operator() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out" format="zip"/>
      <param name="key" type="KeyId" value="seq_size"/>"#,
    );
    let a = check(&wf);
    assert_diag(
        &a,
        Code::P011,
        span_of(&wf, r#"<param name="outputPath""#, 0),
    );
}

#[test]
fn p011_group_over_packed_input() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
  </arguments>
  <operators>
    <operator id="g1" operator="Group">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPath" type="String" value="/packed" format="pack"/>
      <param name="key" type="KeyId" value="vertex_b"/>
    </operator>
    <operator id="g2" operator="Group">
      <param name="inputPath" type="String" value="/packed"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="vertex_a"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check_sources(
        wf,
        &[("graph_edge.xml", GRAPH_EDGE)],
        &CheckContext::default(),
    );
    assert_diag(&a, Code::P011, span_of(wf, r#"<operator id="g2""#, 0));
}

#[test]
fn p012_unknown_distribution_policy() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="distrPolicy" type="DistrPolicy" value="hashed"/>
      <param name="numPartitions" type="integer" value="4"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P012, span_of(wf, r#"value="hashed""#, 0));
}

#[test]
fn p012_zero_partitions() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="0"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(&a, Code::P012, span_of(wf, r#"value="0""#, 0));
}

#[test]
fn p013_unregistered_operator() {
    let wf = sort_wf("").replace("operator=\"Sort\"", "operator=\"Shuffle\"");
    let a = check(&wf);
    assert_diag(&a, Code::P013, span_of(&wf, r#"<operator id="sort""#, 0));
    // Registering the name silences it.
    let ctx = CheckContext {
        extra_operators: ["Shuffle".to_string()].into_iter().collect(),
        ..Default::default()
    };
    let a = check_sources(&wf, &[("blast_db.xml", BLAST_DB)], &ctx);
    assert!(a.diagnostics.iter().all(|d| d.code != Code::P013));
}

#[test]
fn p015_duplicate_argument() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert_diag(
        &a,
        Code::P015,
        span_of(wf, r#"<param name="input_path""#, 1),
    );
}

#[test]
fn p015_duplicate_input_config_id() {
    let a = check_sources(
        FIG8,
        &[("a.xml", BLAST_DB), ("b.xml", BLAST_DB)],
        &CheckContext::default(),
    );
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::P015)
        .expect("P015");
    assert_eq!(d.doc, "blast_db");
}

#[test]
fn p016_malformed_reference() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="cost: $5"/>
      <param name="key" type="KeyId" value="seq_size"/>"#,
    );
    let a = check(&wf);
    assert_diag(&a, Code::P016, span_of(&wf, r#"value="cost: $5""#, 0));
}

#[test]
fn p017_unresolvable_input_path() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="/nowhere"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>"#,
    );
    let a = check(&wf);
    assert_diag(&a, Code::P017, span_of(&wf, r#"value="/nowhere""#, 0));
}

#[test]
fn p017_missing_format_configuration() {
    // FIG8 declares format="blast_db" but no InputData document is given.
    let a = check_sources(FIG8, &[], &CheckContext::default());
    assert_diag(
        &a,
        Code::P017,
        span_of(FIG8, r#"<param name="input_path""#, 0),
    );
}

#[test]
fn p018_replication_exceeds_cluster() {
    let ctx = CheckContext {
        nodes: Some(3),
        replication: Some(5),
        ..Default::default()
    };
    let a = check_sources(FIG8, &[("blast_db.xml", BLAST_DB)], &ctx);
    assert_diag(&a, Code::P018, span_of(FIG8, "<workflow", 0));
}

#[test]
fn p019_invalid_input_schema() {
    // A String field inside a binary input has no fixed width.
    let bad = r#"<input id="bad_bin" name="broken">
  <input_format>binary</input_format>
  <element>
    <value name="offset" type="integer"/>
    <value name="label" type="String"/>
  </element>
</input>"#;
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="offset"/>"#,
    )
    .replace("format=\"blast_db\"", "format=\"bad_bin\"");
    let a = check_sources(&wf, &[("bad.xml", bad)], &CheckContext::default());
    let span = span_of(bad, r#"<value name="label""#, 0);
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::P019)
        .expect("P019");
    assert_eq!(d.doc, "bad_bin");
    assert_eq!(d.span, span);
}

// ---- W0xx: warnings --------------------------------------------------

#[test]
fn w001_dead_output() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="a" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/dead"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="b" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/live"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="/live"/>
      <param name="outputPath" type="String" value="/final"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="4"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert!(!a.has_errors());
    assert_diag(&a, Code::W001, span_of(wf, r#"value="/dead""#, 0));
}

#[test]
fn w002_fewer_partitions_than_nodes() {
    let ctx = CheckContext {
        nodes: Some(8),
        args: HashMap::from([
            ("input_path".to_string(), "/data/in".to_string()),
            ("output_path".to_string(), "/data/out".to_string()),
            ("num_partitions".to_string(), "4".to_string()),
        ]),
        ..Default::default()
    };
    let a = check_sources(FIG8, &[("blast_db.xml", BLAST_DB)], &ctx);
    assert!(!a.has_errors());
    assert_diag(
        &a,
        Code::W002,
        span_of(FIG8, r#"value="$num_partitions""#, 0),
    );
}

#[test]
fn w003_records_not_divisible_by_partitions() {
    // The strict stride permutation L_m^{km} requires m | km.
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
  </arguments>
  <operators>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="4"/>
    </operator>
  </operators>
</workflow>"#;
    let ctx = CheckContext {
        records: Some(10),
        ..Default::default()
    };
    let a = check_sources(wf, &[("blast_db.xml", BLAST_DB)], &ctx);
    assert!(!a.has_errors());
    let span = span_of(wf, r#"value="4""#, 0);
    assert_diag(&a, Code::W003, span);
    // Divisible counts stay silent.
    let ctx = CheckContext {
        records: Some(12),
        ..Default::default()
    };
    let a = check_sources(wf, &[("blast_db.xml", BLAST_DB)], &ctx);
    assert!(a.diagnostics.iter().all(|d| d.code != Code::W003));
}

#[test]
fn w004_index_routed_distribute_over_sort_output() {
    // Figure 8 itself: roundRobin over the sort output. The determinism
    // lint fires, along with the fusion note (W006) for the streamed
    // intermediate — the only diagnostics on the paper's own example.
    let a = check(FIG8);
    assert_eq!(
        a.diagnostics.len(),
        2,
        "{}",
        papar_check::render_text(&a.diagnostics)
    );
    assert_diag(&a, Code::W004, span_of(FIG8, r#"<operator id="distr""#, 0));
    assert_diag(
        &a,
        Code::W006,
        span_of(FIG8, r#"value="/user/sort_output""#, 0),
    );
}

#[test]
fn w006_fusible_single_consumer_intermediate() {
    // Figure 8's sort output feeds only the index-routed distribute: the
    // physical planner streams it, and the lint says so at the producer's
    // output declaration.
    let a = check(FIG8);
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::W006)
        .expect("W006");
    assert!(d.message.contains("/user/sort_output"), "{}", d.message);
    assert!(d.message.contains("--no-fuse"), "{}", d.message);
    // A second consumer of the intermediate defeats streaming: no W006.
    let two_readers = FIG8.replace(
        "  </operators>",
        r#"    <operator id="audit" operator="Distribute">
      <param name="inputPath" type="String" value="/user/sort_output"/>
      <param name="outputPath" type="String" value="/audit"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="4"/>
    </operator>
  </operators>"#,
    );
    let a = check(&two_readers);
    assert!(
        a.diagnostics.iter().all(|d| d.code != Code::W006),
        "{}",
        papar_check::render_text(&a.diagnostics)
    );
    // A value-routed policy (graphVertexCut) cannot fuse with a sort:
    // the pair keeps both jobs and the lint stays silent.
    let vertex_cut = FIG8.replace("roundRobin", "graphVertexCut");
    let a = check(&vertex_cut);
    assert!(
        a.diagnostics.iter().all(|d| d.code != Code::W006),
        "{}",
        papar_check::render_text(&a.diagnostics)
    );
}

#[test]
fn w005_unused_argument() {
    let wf = r#"<workflow id="w" name="n">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="spare" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
  </operators>
</workflow>"#;
    let a = check(wf);
    assert!(!a.has_errors());
    assert_diag(&a, Code::W005, span_of(wf, r#"<param name="spare""#, 0));
}

// ---- clean runs ------------------------------------------------------

#[test]
fn fig10_analyzes_clean_symbolically() {
    let a = check_sources(
        FIG10,
        &[("graph_edge.xml", GRAPH_EDGE)],
        &CheckContext::default(),
    );
    // Error-free; the only note is the fusion lint on the group→split
    // intermediate.
    assert_w006_only(&a, FIG10, r#"value="/tmp/group""#);
    // All three jobs inferred, with metadata on every built-in output.
    assert_eq!(a.jobs.len(), 3);
    let group = &a.jobs[0];
    let meta = group.outputs[0].1.as_ref().expect("group meta");
    assert_eq!(meta.format, Format::Packed);
    assert!(meta.schema.index_of("indegree").is_some());
}

#[test]
fn fig10_analyzes_clean_with_arguments() {
    let ctx = CheckContext {
        nodes: Some(4),
        args: HashMap::from([
            ("input_file".to_string(), "/data/edges".to_string()),
            ("output_path".to_string(), "/data/parts".to_string()),
            ("num_partitions".to_string(), "4".to_string()),
            ("threshold".to_string(), "4".to_string()),
        ]),
        ..Default::default()
    };
    let a = check_sources(FIG10, &[("graph_edge.xml", GRAPH_EDGE)], &ctx);
    assert_w006_only(&a, FIG10, r#"value="/tmp/group""#);
}

// ---- plan-invariant verification ------------------------------------

fn fig8_args() -> HashMap<String, String> {
    HashMap::from([
        ("input_path".to_string(), "/data/env_nr".to_string()),
        ("output_path".to_string(), "/data/parts".to_string()),
        ("num_partitions".to_string(), "4".to_string()),
    ])
}

#[test]
fn analysis_agrees_with_the_planner_on_fig8() {
    let args = fig8_args();
    let ctx = CheckContext {
        args: args.clone(),
        ..Default::default()
    };
    let wf = WorkflowConfig::parse_str(FIG8).unwrap();
    let input = InputConfig::parse_str(BLAST_DB).unwrap();
    let analysis = analyze(&wf, std::slice::from_ref(&input), &ctx);
    assert!(!analysis.has_errors());
    let plan = Planner::new(wf, vec![input]).bind(&args).unwrap();
    assert_eq!(verify_plan(&analysis, &plan), vec![]);
}

#[test]
fn analysis_agrees_with_the_planner_on_fig10() {
    let args = HashMap::from([
        ("input_file".to_string(), "/data/edges".to_string()),
        ("output_path".to_string(), "/data/parts".to_string()),
        ("num_partitions".to_string(), "4".to_string()),
        ("threshold".to_string(), "4".to_string()),
    ]);
    let ctx = CheckContext {
        args: args.clone(),
        ..Default::default()
    };
    let wf = WorkflowConfig::parse_str(FIG10).unwrap();
    let input = InputConfig::parse_str(GRAPH_EDGE).unwrap();
    let analysis = analyze(&wf, std::slice::from_ref(&input), &ctx);
    assert!(!analysis.has_errors());
    let plan = Planner::new(wf, vec![input]).bind(&args).unwrap();
    assert_eq!(verify_plan(&analysis, &plan), vec![]);
}

#[test]
fn p099_on_divergent_inference() {
    let args = fig8_args();
    let ctx = CheckContext {
        args: args.clone(),
        ..Default::default()
    };
    let wf = WorkflowConfig::parse_str(FIG8).unwrap();
    let input = InputConfig::parse_str(BLAST_DB).unwrap();
    let mut analysis = analyze(&wf, std::slice::from_ref(&input), &ctx);
    let plan = Planner::new(wf, vec![input]).bind(&args).unwrap();
    // Sabotage the inference: flip the sort output's format.
    let meta = analysis.jobs[0].outputs[0].1.as_mut().unwrap();
    meta.format = Format::Packed;
    let divergences = verify_plan(&analysis, &plan);
    assert!(!divergences.is_empty());
    assert!(divergences.iter().all(|d| d.code == Code::P099));
}

#[test]
fn physical_plans_verify_clean_for_the_example_configs() {
    // Every physical plan the planner can emit for Fig 8 and Fig 10 —
    // fused and --no-fuse, across cluster shapes — must pass P099.
    let fig8 = Planner::new(
        WorkflowConfig::parse_str(FIG8).unwrap(),
        vec![InputConfig::parse_str(BLAST_DB).unwrap()],
    )
    .bind(&fig8_args())
    .unwrap();
    let fig10 = Planner::new(
        WorkflowConfig::parse_str(FIG10).unwrap(),
        vec![InputConfig::parse_str(GRAPH_EDGE).unwrap()],
    )
    .bind(&HashMap::from([
        ("input_file".to_string(), "/data/edges".to_string()),
        ("output_path".to_string(), "/data/parts".to_string()),
        ("num_partitions".to_string(), "4".to_string()),
        ("threshold".to_string(), "4".to_string()),
    ]))
    .unwrap();
    for plan in [&fig8, &fig10] {
        for nodes in [1, 3, 4, 8] {
            for default_reducers in [None, Some(4)] {
                for fuse in [true, false] {
                    let phys = lower(plan, nodes, default_reducers, fuse);
                    assert_eq!(
                        verify_physical_plan(plan, &phys, nodes, default_reducers),
                        vec![],
                        "workflow '{}', {nodes} nodes, reducers {default_reducers:?}, \
                         fuse={fuse}",
                        plan.id
                    );
                }
            }
        }
    }
}

#[test]
fn p099_on_corrupted_physical_plan() {
    let plan = Planner::new(
        WorkflowConfig::parse_str(FIG8).unwrap(),
        vec![InputConfig::parse_str(BLAST_DB).unwrap()],
    )
    .bind(&fig8_args())
    .unwrap();
    // Drop a stage: the coverage invariant breaks.
    let mut phys = lower(&plan, 3, None, false);
    phys.stages.pop();
    let diags = verify_physical_plan(&plan, &phys, 3, None);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == Code::P099));
    // Claim the workflow output is streamed: the elision invariant breaks.
    let mut phys = lower(&plan, 3, None, true);
    assert!(matches!(
        phys.stages[0].kind,
        StageKind::FusedSortDistribute { .. }
    ));
    phys.stages[0].elided.push(plan.output_path.clone());
    let diags = verify_physical_plan(&plan, &phys, 3, None);
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::P099 && d.message.contains("workflow output")),
        "{}",
        papar_check::render_text(&diags)
    );
}

// ---- serialization golden --------------------------------------------

#[test]
fn diagnostics_round_trip_through_json() {
    // A workflow tripping several distinct codes at once.
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_fil"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_siz"/>
      <addon operator="median" key="seq_size" attr="m"/>"#,
    );
    let a = check(&wf);
    assert!(a.diagnostics.len() >= 2);
    let text = json::to_json(&a.diagnostics);
    let parsed = json::from_json(&text).expect("round trip");
    assert_eq!(parsed, a.diagnostics);
}

#[test]
fn rendered_text_is_stable() {
    let wf = sort_wf(
        r#"      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="seq_siz"/>"#,
    );
    let a = check(&wf);
    let span = span_of(&wf, r#"value="seq_siz""#, 0);
    let line = a.diagnostics[0].to_string();
    assert_eq!(
        line,
        format!(
            "error[P006]: workflow:{}:{}: operator 'sort': no field 'seq_siz' in schema \
             [seq_start, seq_size, desc_start, desc_size]",
            span.line, span.col
        )
    );
}
