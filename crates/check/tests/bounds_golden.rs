//! Golden bounds diagnostics: each `examples/configs/bounds_*.xml`
//! fixture trips exactly one quantitative code, at the span of the
//! operator that causes it. The paper's own configs (Fig 8, Fig 10)
//! stay finding-free and produce fully bounded stage tables.

use papar_check::{analyze_bounds, BoundsConfig, Code};
use papar_config::xml::Span;
use papar_config::{InputConfig, WorkflowConfig};
use papar_core::physplan::lower;
use papar_core::plan::{Planner, WorkflowPlan};
use std::collections::HashMap;

const BLAST_DB: &str = include_str!("../../../examples/configs/blast_db.xml");
const GRAPH_EDGE: &str = include_str!("../../../examples/configs/graph_edge.xml");
const FIG8: &str = include_str!("../../../examples/configs/blast_partition.xml");
const FIG10: &str = include_str!("../../../examples/configs/hybrid_cut.xml");
const P021: &str = include_str!("../../../examples/configs/bounds_p021.xml");
const W007: &str = include_str!("../../../examples/configs/bounds_w007.xml");
const W008: &str = include_str!("../../../examples/configs/bounds_w008.xml");
const W009: &str = include_str!("../../../examples/configs/bounds_w009.xml");

/// The 1-based line/column of the first occurrence of `needle`.
fn span_of(doc: &str, needle: &str) -> Span {
    let off = doc.find(needle).expect("needle in document");
    let line = doc[..off].matches('\n').count() + 1;
    let col = off - doc[..off].rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
    Span::new(line, col)
}

fn bind(
    workflow_xml: &str,
    input_xml: &str,
    extra_args: &[(&str, &str)],
) -> (WorkflowConfig, WorkflowPlan) {
    let wf = WorkflowConfig::parse_str(workflow_xml).unwrap();
    let input = InputConfig::parse_str(input_xml).unwrap();
    let mut args: HashMap<String, String> = HashMap::from([
        ("input_path".to_string(), "/plan/input".to_string()),
        ("input_file".to_string(), "/plan/input".to_string()),
        ("output_path".to_string(), "/plan/output".to_string()),
    ]);
    args.retain(|k, _| wf.arguments.iter().any(|a| a.name == *k));
    for (k, v) in extra_args {
        args.insert(k.to_string(), v.to_string());
    }
    let plan = Planner::new(wf.clone(), vec![input]).bind(&args).unwrap();
    (wf, plan)
}

#[test]
fn bounds_p021_fires_on_reducer_overcommit() {
    let (wf, plan) = bind(P021, BLAST_DB, &[]);
    let phys = lower(&plan, 4, None, true);
    let report = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            distinct_keys: Some(3),
            ..Default::default()
        },
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.code, Code::P021);
    assert_eq!(d.span, span_of(P021, r#"<operator id="sort""#));
    assert!(d.message.contains("8 reducers"), "{}", d.message);
    assert!(d.message.contains("3 distinct"), "{}", d.message);
    // Declaring enough keys silences it.
    let quiet = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            distinct_keys: Some(8),
            ..Default::default()
        },
    );
    assert!(quiet.diagnostics.is_empty(), "{:?}", quiet.diagnostics);
}

#[test]
fn bounds_w007_fires_on_provably_empty_partitions() {
    let (wf, plan) = bind(W007, BLAST_DB, &[]);
    let phys = lower(&plan, 4, None, true);
    let report = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            records: Some(10),
            ..Default::default()
        },
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.code, Code::W007);
    assert_eq!(d.span, span_of(W007, r#"<operator id="distr""#));
    assert!(d.message.contains("54 partition(s)"), "{}", d.message);
    // With enough records every partition can be reached.
    let quiet = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            records: Some(640),
            ..Default::default()
        },
    );
    assert!(quiet.diagnostics.is_empty(), "{:?}", quiet.diagnostics);
}

#[test]
fn bounds_w008_fires_on_value_routed_skew() {
    let (wf, plan) = bind(W008, GRAPH_EDGE, &[]);
    let phys = lower(&plan, 4, None, true);
    let report = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            records: Some(64),
            ..Default::default()
        },
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.code, Code::W008);
    assert_eq!(d.span, span_of(W008, r#"<operator id="distr""#));
    assert!(d.message.contains("16.0x the fair share"), "{}", d.message);
    // A ratio that admits the worst case silences it.
    let quiet = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            records: Some(64),
            skew_ratio: 16.0,
            ..Default::default()
        },
    );
    assert!(quiet.diagnostics.is_empty(), "{:?}", quiet.diagnostics);
}

#[test]
fn bounds_w009_names_the_fusion_blocking_gate() {
    let (wf, plan) = bind(W009, BLAST_DB, &[]);
    let phys = lower(&plan, 4, None, true);
    // The value-routed policy defeats fusion: two stages survive.
    assert_eq!(phys.stages.len(), 2);
    let report = analyze_bounds(&wf, &plan, &phys, &BoundsConfig::default());
    let w009: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::W009)
        .collect();
    assert_eq!(w009.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(w009[0].span, span_of(W009, r#"<operator id="sort""#));
    assert!(
        w009[0].message.contains("graphVertexCut"),
        "{}",
        w009[0].message
    );
    // The same pair with an index-routed policy fuses, so no W009 (and
    // the fused stage carries a passing legality proof).
    let fusible = W009.replace("graphVertexCut", "roundRobin");
    let wf = WorkflowConfig::parse_str(&fusible).unwrap();
    let input = InputConfig::parse_str(BLAST_DB).unwrap();
    let args = HashMap::from([
        ("input_path".to_string(), "/plan/input".to_string()),
        ("output_path".to_string(), "/plan/output".to_string()),
    ]);
    let plan = Planner::new(wf.clone(), vec![input]).bind(&args).unwrap();
    let phys = lower(&plan, 4, None, true);
    assert_eq!(phys.stages.len(), 1);
    let report = analyze_bounds(&wf, &plan, &phys, &BoundsConfig::default());
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.bounds.proofs.len(), 1);
    assert!(report.bounds.proofs[0].ok);
}

#[test]
fn fig8_stays_finding_free_with_a_fully_bounded_table() {
    let (wf, plan) = bind(FIG8, BLAST_DB, &[("num_partitions", "4")]);
    let phys = lower(&plan, 4, None, true);
    let report = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            records: Some(640),
            ..Default::default()
        },
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    for col in [
        "stage",
        "reducers",
        "records-in",
        "records-out",
        "pairs",
        "max-load",
    ] {
        assert!(
            report.table.contains(col),
            "missing {col}:\n{}",
            report.table
        );
    }
    assert!(report.table.contains("640"), "{}", report.table);
    // Exact input: no interval in the table stays unbounded.
    assert!(!report.table.contains('?'), "{}", report.table);
}

#[test]
fn fig10_stays_finding_free_and_all_proofs_pass() {
    let (wf, plan) = bind(
        FIG10,
        GRAPH_EDGE,
        &[("num_partitions", "4"), ("threshold", "4")],
    );
    let phys = lower(&plan, 4, None, true);
    let report = analyze_bounds(
        &wf,
        &plan,
        &phys,
        &BoundsConfig {
            records: Some(600),
            ..Default::default()
        },
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(!report.bounds.proofs.is_empty());
    assert!(report.bounds.proofs.iter().all(|p| p.ok));
    assert!(report.table.contains("600"), "{}", report.table);
}
