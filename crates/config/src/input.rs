//! The **InputData** configuration: a programming-free description of an
//! input file's record layout (paper Section III-A, Figures 4 and 5).
//!
//! Two kinds of files are supported, matching the paper's two driving
//! applications:
//!
//! * **binary** — fixed-width records starting at `start_position` bytes
//!   into the file (the muBLASTP sequence index: four 4-byte integers per
//!   record), and
//! * **text** — delimiter-separated fields, one record per terminating
//!   delimiter (the PowerLyra edge list: `vertex_a \t vertex_b \n`).
//!
//! Derived (nested) data types are expressed by nesting `<element>` inside
//! `<element>`; the flattened field list is what codecs consume.

use crate::error::{ConfigError, Result};
use crate::xml::{self, Element, Span};

/// How the bytes of the input file are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// Fixed-width binary records.
    Binary,
    /// Delimited text records.
    Text,
}

impl InputFormat {
    fn parse(s: &str) -> Result<Self> {
        match s {
            "binary" => Ok(InputFormat::Binary),
            "text" => Ok(InputFormat::Text),
            other => Err(ConfigError::schema(format!(
                "unknown input_format '{other}' (expected 'binary' or 'text')"
            ))),
        }
    }
}

/// The primitive type of one record field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// 32-bit signed integer (the paper's `integer`). 4 bytes in binary files.
    Integer,
    /// 64-bit signed integer (`long`). 8 bytes in binary files.
    Long,
    /// 64-bit float (`double`). 8 bytes in binary files.
    Double,
    /// UTF-8 string (`String`). Only valid in text inputs, where field
    /// boundaries come from delimiters.
    Str,
}

impl FieldType {
    /// Parse the paper's type spellings (case-insensitive on the first
    /// letter, as the figures mix `integer` and `String`).
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "integer" | "int" => Ok(FieldType::Integer),
            "long" => Ok(FieldType::Long),
            "double" | "float" => Ok(FieldType::Double),
            "string" => Ok(FieldType::Str),
            other => Err(ConfigError::schema(format!("unknown field type '{other}'"))),
        }
    }

    /// Size of this field inside a fixed-width binary record, if it has one.
    pub fn binary_width(&self) -> Option<usize> {
        match self {
            FieldType::Integer => Some(4),
            FieldType::Long => Some(8),
            FieldType::Double => Some(8),
            FieldType::Str => None,
        }
    }
}

/// One named, typed field of a record.
#[derive(Debug, Clone, Eq)]
pub struct FieldDef {
    /// Field name, the handle used as a key in workflow configurations.
    pub name: String,
    /// Primitive type.
    pub ty: FieldType,
    /// Position of the declaring `<value>` element ([`Span::UNKNOWN`] for
    /// programmatically-built fields).
    pub span: Span,
}

impl FieldDef {
    /// A field without a source position.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            span: Span::UNKNOWN,
        }
    }
}

impl PartialEq for FieldDef {
    /// Content equality; spans are ignored so schemas built from code and
    /// schemas parsed from documents compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.ty == other.ty
    }
}

/// One item of an `<element>` description, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementItem {
    /// A `<value name=.. type=../>` field.
    Field(FieldDef),
    /// A `<delimiter value=../>` separator (text inputs only). The stored
    /// string has escape sequences (`\t`, `\n`, ...) already decoded.
    Delimiter(String),
    /// A nested `<element>` describing a derived data type.
    Nested(Vec<ElementItem>),
}

/// A parsed InputData configuration (one `<input>` document).
///
/// Equality ignores the root [`Span`] (content equality), matching the
/// convention of the other spanned types.
#[derive(Debug, Clone, Eq)]
pub struct InputConfig {
    /// Document id (`<input id=..>`), referenced by workflow `format=` attrs.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Binary or text.
    pub format: InputFormat,
    /// Bytes to skip before the first record (binary only; 0 otherwise).
    pub start_position: u64,
    /// The record layout, in document order.
    pub element: Vec<ElementItem>,
    /// Position of the `<input>` root element.
    pub span: Span,
}

impl PartialEq for InputConfig {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.name == other.name
            && self.format == other.format
            && self.start_position == other.start_position
            && self.element == other.element
    }
}

impl InputConfig {
    /// Parse an InputData document from XML text.
    pub fn parse_str(doc: &str) -> Result<Self> {
        Self::from_element(&xml::parse(doc)?)
    }

    /// Parse from XML text without semantic validation (see
    /// [`InputConfig::from_element_unchecked`]).
    pub fn parse_str_unchecked(doc: &str) -> Result<Self> {
        Self::from_element_unchecked(&xml::parse(doc)?)
    }

    /// Build from an already-parsed XML element.
    pub fn from_element(el: &Element) -> Result<Self> {
        let cfg = Self::from_element_unchecked(el)?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Build from an already-parsed XML element *without* running semantic
    /// validation. `papar check` uses this to report validation problems as
    /// structured diagnostics instead of stopping at the first one.
    pub fn from_element_unchecked(el: &Element) -> Result<Self> {
        if el.name != "input" {
            return Err(ConfigError::schema_at(
                format!("expected <input> root, found <{}>", el.name),
                el.span,
            ));
        }
        let id = el.req_attr("id")?.to_string();
        let name = el.attr("name").unwrap_or("").to_string();
        let format = InputFormat::parse(el.req_child("input_format")?.trimmed_text())?;
        let start_position = match el.child("start_position") {
            Some(sp) => sp.trimmed_text().parse::<u64>().map_err(|_| {
                ConfigError::schema_at(
                    format!(
                        "start_position '{}' is not a non-negative integer",
                        sp.trimmed_text()
                    ),
                    sp.span,
                )
            })?,
            None => 0,
        };
        let element = parse_element_items(el.req_child("element")?)?;
        Ok(InputConfig {
            id,
            name,
            format,
            start_position,
            element,
            span: el.span,
        })
    }

    /// Semantic validation: duplicate fields, format/type compatibility.
    pub fn validate(&self) -> Result<()> {
        let fields = self.fields();
        if fields.is_empty() {
            return Err(ConfigError::schema_at(
                "element defines no fields",
                self.span,
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(ConfigError::schema_at(
                    format!("duplicate field name '{}'", f.name),
                    f.span,
                ));
            }
        }
        match self.format {
            InputFormat::Binary => {
                for f in &fields {
                    if f.ty.binary_width().is_none() {
                        return Err(ConfigError::schema_at(
                            format!(
                                "field '{}' has type String, which is not valid in a binary input",
                                f.name
                            ),
                            f.span,
                        ));
                    }
                }
            }
            InputFormat::Text => {
                let has_delim = any_delimiter(&self.element);
                if !has_delim && fields.len() > 1 {
                    return Err(ConfigError::schema_at(
                        "text input with multiple fields needs <delimiter> separators",
                        self.span,
                    ));
                }
            }
        }
        Ok(())
    }

    /// The flattened field list, nested elements expanded in order.
    pub fn fields(&self) -> Vec<FieldDef> {
        let mut out = Vec::new();
        collect_fields(&self.element, &mut out);
        out
    }

    /// Index of a field by name, for key binding.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields().iter().position(|f| f.name == name)
    }

    /// Total bytes of one record for binary inputs.
    pub fn binary_record_width(&self) -> Option<usize> {
        if self.format != InputFormat::Binary {
            return None;
        }
        self.fields()
            .iter()
            .map(|f| f.ty.binary_width())
            .sum::<Option<usize>>()
    }

    /// The delimiters in document order (text inputs). The last one
    /// terminates a record.
    pub fn delimiters(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_delims(&self.element, &mut out);
        out
    }
}

fn collect_fields(items: &[ElementItem], out: &mut Vec<FieldDef>) {
    for it in items {
        match it {
            ElementItem::Field(f) => out.push(f.clone()),
            ElementItem::Nested(inner) => collect_fields(inner, out),
            ElementItem::Delimiter(_) => {}
        }
    }
}

fn collect_delims(items: &[ElementItem], out: &mut Vec<String>) {
    for it in items {
        match it {
            ElementItem::Delimiter(d) => out.push(d.clone()),
            ElementItem::Nested(inner) => collect_delims(inner, out),
            ElementItem::Field(_) => {}
        }
    }
}

fn any_delimiter(items: &[ElementItem]) -> bool {
    items.iter().any(|it| match it {
        ElementItem::Delimiter(_) => true,
        ElementItem::Nested(inner) => any_delimiter(inner),
        ElementItem::Field(_) => false,
    })
}

fn parse_element_items(el: &Element) -> Result<Vec<ElementItem>> {
    let mut items = Vec::new();
    for child in &el.children {
        match child.name.as_str() {
            "value" => {
                let name = child.req_attr("name")?.to_string();
                let ty = FieldType::parse(child.req_attr("type")?).map_err(|e| match e {
                    ConfigError::Schema(m) => ConfigError::schema_at(m, child.attr_span("type")),
                    other => other,
                })?;
                items.push(ElementItem::Field(FieldDef {
                    name,
                    ty,
                    span: child.span,
                }));
            }
            "delimiter" => {
                let raw = child.req_attr("value")?;
                items.push(ElementItem::Delimiter(decode_escapes(raw)?));
            }
            "element" => {
                items.push(ElementItem::Nested(parse_element_items(child)?));
            }
            other => {
                return Err(ConfigError::schema(format!(
                    "unexpected <{other}> inside <element>"
                )))
            }
        }
    }
    Ok(items)
}

/// Decode the backslash escapes the paper's figures use in delimiter values
/// (`\t`, `\n`, plus `\r`, `\\`, `\0` for completeness).
pub fn decode_escapes(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('0') => out.push('\0'),
            Some(other) => {
                return Err(ConfigError::schema(format!(
                    "unknown escape sequence '\\{other}' in delimiter"
                )))
            }
            None => return Err(ConfigError::schema("dangling '\\' in delimiter")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4: &str = r#"
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;

    const FIG5: &str = r#"
<input id="graph_edge" name="edge lists">
  <input_format>text</input_format>
  <element>
    <value name="vertex_a" type="String"/>
    <delimiter value="\t"/>
    <value name="vertex_b" type="String"/>
    <delimiter value="\n"/>
  </element>
</input>"#;

    #[test]
    fn paper_figure4_blast_index() {
        let cfg = InputConfig::parse_str(FIG4).unwrap();
        assert_eq!(cfg.id, "blast_db");
        assert_eq!(cfg.format, InputFormat::Binary);
        assert_eq!(cfg.start_position, 32);
        let fields = cfg.fields();
        assert_eq!(
            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            ["seq_start", "seq_size", "desc_start", "desc_size"]
        );
        // "every 16 bytes (4 bytes/integer * 4 integers) as an entry"
        assert_eq!(cfg.binary_record_width(), Some(16));
    }

    #[test]
    fn paper_figure5_edge_list() {
        let cfg = InputConfig::parse_str(FIG5).unwrap();
        assert_eq!(cfg.format, InputFormat::Text);
        assert_eq!(cfg.start_position, 0);
        assert_eq!(cfg.delimiters(), vec!["\t".to_string(), "\n".to_string()]);
        assert_eq!(cfg.field_index("vertex_b"), Some(1));
        assert_eq!(cfg.binary_record_width(), None);
    }

    #[test]
    fn nested_elements_flatten_in_order() {
        let doc = r#"
<input id="derived" name="n">
  <input_format>binary</input_format>
  <element>
    <value name="a" type="integer"/>
    <element>
      <value name="b" type="long"/>
      <value name="c" type="double"/>
    </element>
    <value name="d" type="integer"/>
  </element>
</input>"#;
        let cfg = InputConfig::parse_str(doc).unwrap();
        let names: Vec<_> = cfg.fields().iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert_eq!(cfg.binary_record_width(), Some(4 + 8 + 8 + 4));
    }

    #[test]
    fn rejects_string_in_binary() {
        let doc = r#"
<input id="x" name="n">
  <input_format>binary</input_format>
  <element><value name="s" type="String"/></element>
</input>"#;
        let e = InputConfig::parse_str(doc).unwrap_err();
        assert!(e.to_string().contains("not valid in a binary input"), "{e}");
    }

    #[test]
    fn rejects_duplicate_field_names() {
        let doc = r#"
<input id="x" name="n">
  <input_format>binary</input_format>
  <element>
    <value name="a" type="integer"/>
    <value name="a" type="integer"/>
  </element>
</input>"#;
        assert!(InputConfig::parse_str(doc).is_err());
    }

    #[test]
    fn rejects_text_without_delimiters() {
        let doc = r#"
<input id="x" name="n">
  <input_format>text</input_format>
  <element>
    <value name="a" type="String"/>
    <value name="b" type="String"/>
  </element>
</input>"#;
        assert!(InputConfig::parse_str(doc).is_err());
    }

    #[test]
    fn rejects_unknown_format_and_type() {
        let doc = r#"
<input id="x" name="n">
  <input_format>csv</input_format>
  <element><value name="a" type="integer"/></element>
</input>"#;
        assert!(InputConfig::parse_str(doc).is_err());
        let doc2 = r#"
<input id="x" name="n">
  <input_format>binary</input_format>
  <element><value name="a" type="quaternion"/></element>
</input>"#;
        assert!(InputConfig::parse_str(doc2).is_err());
    }

    #[test]
    fn start_position_defaults_to_zero_and_validates() {
        let doc = r#"
<input id="x" name="n">
  <input_format>binary</input_format>
  <start_position>nope</start_position>
  <element><value name="a" type="integer"/></element>
</input>"#;
        assert!(InputConfig::parse_str(doc).is_err());
    }

    #[test]
    fn escape_decoding() {
        assert_eq!(decode_escapes(r"\t").unwrap(), "\t");
        assert_eq!(decode_escapes(r"\n").unwrap(), "\n");
        assert_eq!(decode_escapes(r"a\\b").unwrap(), "a\\b");
        assert_eq!(decode_escapes(",").unwrap(), ",");
        assert!(decode_escapes(r"\q").is_err());
        assert!(decode_escapes("\\").is_err());
    }
}
