//! A minimal, dependency-free, non-validating XML subset parser.
//!
//! The PaPar configuration documents (paper Figures 4, 5, 7, 8 and 10) only
//! need a small slice of XML, which this module implements:
//!
//! * elements with attributes (`<tag a="x" b='y'>` ... `</tag>`),
//! * self-closing elements (`<tag/>`),
//! * text content,
//! * comments (`<!-- ... -->`),
//! * the XML declaration (`<?xml ... ?>`), which is skipped,
//! * the five predefined entities (`&lt; &gt; &amp; &quot; &apos;`) and
//!   decimal/hex character references (`&#10;`, `&#x0A;`).
//!
//! The parser is strict about well-formedness (matching end tags, quoted
//! attributes, a single root element) and reports 1-based line/column
//! positions on error. It does **not** implement DTDs, namespaces, CDATA or
//! processing instructions other than the declaration — the configuration
//! schema has no use for them.

use crate::error::{ConfigError, Result};
use std::fmt;

/// A 1-based line/column source position inside a configuration document.
///
/// Spans point at the *start* of the thing they describe: an element's span
/// is the position of its `<`, an attribute's span is the position of its
/// name. Programmatically-built trees carry [`Span::UNKNOWN`] (line 0),
/// which formats as `?:?`.
///
/// Spans are deliberately excluded from `PartialEq` on the types that carry
/// them — two documents with the same content are equal regardless of
/// where that content sits, which keeps serialization round-trip tests
/// honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line (0 = unknown).
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl Span {
    /// The span of programmatically-built nodes.
    pub const UNKNOWN: Span = Span { line: 0, col: 0 };

    /// A known position.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }

    /// True when this span points at a real document position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "?:?")
        }
    }
}

/// One attribute of an element, with the source position of its name.
#[derive(Debug, Clone, Eq)]
pub struct Attr {
    /// Attribute name.
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
    /// Position of the attribute name in the document.
    pub span: Span,
}

impl PartialEq for Attr {
    /// Content equality; spans are ignored (see [`Span`]).
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.value == other.value
    }
}

/// A parsed XML element.
///
/// Text content is accumulated in [`Element::text`] with surrounding
/// whitespace preserved; use [`Element::trimmed_text`] for the common case.
#[derive(Debug, Clone, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order. Duplicate names are rejected at parse
    /// time, so linear lookup is unambiguous.
    pub attrs: Vec<Attr>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated character data directly inside this element.
    pub text: String,
    /// Position of this element's `<` in the document.
    pub span: Span,
}

impl PartialEq for Element {
    /// Content equality; spans are ignored (see [`Span`]).
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.attrs == other.attrs
            && self.children == other.children
            && self.text == other.text
    }
}

impl Element {
    /// Create an element with a name and no content.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
            span: Span::UNKNOWN,
        }
    }

    /// Append an attribute (for programmatically-built trees).
    pub fn push_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attrs.push(Attr {
            name: name.into(),
            value: value.into(),
            span: Span::UNKNOWN,
        });
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Position of the named attribute, falling back to the element's own
    /// span when the attribute is absent.
    pub fn attr_span(&self, name: &str) -> Span {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.span)
            .unwrap_or(self.span)
    }

    /// Look up an attribute, raising a schema error naming the element when
    /// the attribute is missing.
    pub fn req_attr(&self, name: &str) -> Result<&str> {
        self.attr(name).ok_or_else(|| {
            ConfigError::schema(format!(
                "element <{}> is missing required attribute '{name}'",
                self.name
            ))
        })
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// First child element with the given tag name, or a schema error.
    pub fn req_child(&self, name: &str) -> Result<&Element> {
        self.child(name).ok_or_else(|| {
            ConfigError::schema(format!(
                "element <{}> is missing required child <{name}>",
                self.name
            ))
        })
    }

    /// All child elements with the given tag name, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text content with leading/trailing ASCII whitespace removed.
    pub fn trimmed_text(&self) -> &str {
        self.text.trim()
    }

    /// Serialize this element (and its subtree) back to XML.
    ///
    /// Used by round-trip tests; the output re-parses to an equal tree
    /// (modulo insignificant whitespace, which serialization does not add).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    fn write_xml(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for a in &self.attrs {
            out.push(' ');
            out.push_str(&a.name);
            out.push_str("=\"");
            escape_into(&a.value, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for c in &self.children {
            c.write_xml(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

/// Escape the five XML special characters into `out`.
fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// Parse a complete document and return its single root element.
pub fn parse(input: &str) -> Result<Element> {
    let mut p = Parser::new(input);
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("content after the document's root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            src: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ConfigError {
        self.err_at(self.here(), msg)
    }

    fn err_at(&self, span: Span, msg: impl Into<String>) -> ConfigError {
        ConfigError::Xml {
            message: msg.into(),
            line: span.line,
            col: span.col,
        }
    }

    /// The current position as a span.
    fn here(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected '{}', found '{}'", b as char, got as char)))
            }
            None => Err(self.err(format!("expected '{}', found end of input", b as char))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn advance_str(&mut self, s: &str) {
        for _ in 0..s.len() {
            self.bump();
        }
    }

    /// Skip whitespace, comments and the XML declaration between elements.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_declaration()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<()> {
        self.advance_str("<!--");
        loop {
            if self.at_end() {
                return Err(self.err("unterminated comment"));
            }
            if self.starts_with("-->") {
                self.advance_str("-->");
                return Ok(());
            }
            self.bump();
        }
    }

    fn skip_declaration(&mut self) -> Result<()> {
        self.advance_str("<?");
        loop {
            if self.at_end() {
                return Err(self.err("unterminated <? ... ?> declaration"));
            }
            if self.starts_with("?>") {
                self.advance_str("?>");
                return Ok(());
            }
            self.bump();
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':'
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            _ => return Err(self.err("expected a name")),
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_entity(&mut self) -> Result<char> {
        // Caller consumed nothing yet; we are at '&'.
        self.eat(b'&')?;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.bump();
        }
        if self.at_end() {
            return Err(self.err("unterminated entity reference"));
        }
        let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.eat(b';')?;
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point in &{name};")))
            }
            _ if name.starts_with('#') => {
                let code = name[1..]
                    .parse::<u32>()
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point in &{name};")))
            }
            _ => Err(self.err(format!("unknown entity &{name};"))),
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return Err(self.err("raw '<' inside attribute value")),
                Some(_) => {
                    // Attribute values may span multiple bytes of UTF-8; copy
                    // the whole code point.
                    let ch = self.bump_char()?;
                    out.push(ch);
                }
            }
        }
    }

    /// Consume one UTF-8 code point.
    fn bump_char(&mut self) -> Result<char> {
        let rest = &self.src[self.pos..];
        let s = std::str::from_utf8(rest)
            .map_err(|_| self.err("invalid UTF-8"))?
            .chars()
            .next()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        for _ in 0..s.len_utf8() {
            self.bump();
        }
        Ok(s)
    }

    fn parse_element(&mut self) -> Result<Element> {
        let start = self.here();
        self.eat(b'<')?;
        let name = self.parse_name()?;
        let mut el = Element::new(name);
        el.span = start;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.eat(b'>')?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b) if Self::is_name_start(b) => {
                    let aspan = self.here();
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.eat(b'=')?;
                    self.skip_ws();
                    let aval = self.parse_attr_value()?;
                    if el.attr(&aname).is_some() {
                        // Report at the *second* occurrence's name, not at
                        // the parser's current position after the value.
                        return Err(self.err_at(
                            aspan,
                            format!("duplicate attribute '{aname}' on <{}>", el.name),
                        ));
                    }
                    el.attrs.push(Attr {
                        name: aname,
                        value: aval,
                        span: aspan,
                    });
                }
                Some(b) => return Err(self.err(format!("unexpected '{}' in start tag", b as char))),
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content until matching end tag.
        loop {
            match self.peek() {
                None => return Err(self.err(format!("missing </{}>", el.name))),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("</") {
                        self.advance_str("</");
                        let end = self.parse_name()?;
                        if end != el.name {
                            return Err(self.err(format!(
                                "mismatched end tag: expected </{}>, found </{end}>",
                                el.name
                            )));
                        }
                        self.skip_ws();
                        self.eat(b'>')?;
                        return Ok(el);
                    } else {
                        el.children.push(self.parse_element()?);
                    }
                }
                Some(b'&') => {
                    let ch = self.parse_entity()?;
                    el.text.push(ch);
                }
                Some(_) => {
                    let ch = self.bump_char()?;
                    el.text.push(ch);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_element() {
        let el = parse("<a/>").unwrap();
        assert_eq!(el.name, "a");
        assert!(el.attrs.is_empty());
        assert!(el.children.is_empty());
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let el = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(el.attr("x"), Some("1"));
        assert_eq!(el.attr("y"), Some("two"));
        assert_eq!(el.attr("z"), None);
    }

    #[test]
    fn parses_nested_children_and_text() {
        let el = parse("<a><b>hi</b><c/></a>").unwrap();
        assert_eq!(el.children.len(), 2);
        assert_eq!(el.child("b").unwrap().trimmed_text(), "hi");
        assert!(el.child("c").is_some());
    }

    #[test]
    fn entity_decoding_in_text_and_attrs() {
        let el = parse(r#"<a v="&lt;&amp;&gt;">&quot;&apos;&#65;&#x42;</a>"#).unwrap();
        assert_eq!(el.attr("v"), Some("<&>"));
        assert_eq!(el.text, "\"'AB");
    }

    #[test]
    fn skips_declaration_and_comments() {
        let el = parse("<?xml version=\"1.0\"?>\n<!-- c --><a><!-- in --><b/></a>").unwrap();
        assert_eq!(el.children.len(), 1);
    }

    #[test]
    fn rejects_mismatched_end_tag() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.to_string().contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn rejects_unterminated_document() {
        assert!(parse("<a><b/>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<a foo=>").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(e.to_string().contains("after the document's root"), "{e}");
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let e = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(e.to_string().contains("duplicate attribute"), "{e}");
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn error_position_is_tracked() {
        let e = parse("<a>\n  <b x=></b>\n</a>").unwrap_err();
        match e {
            ConfigError::Xml { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Xml error, got {other:?}"),
        }
    }

    #[test]
    fn paper_figure4_parses() {
        let doc = r#"
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;
        let el = parse(doc).unwrap();
        assert_eq!(el.name, "input");
        assert_eq!(el.req_child("element").unwrap().children.len(), 4);
        assert_eq!(el.req_child("start_position").unwrap().trimmed_text(), "32");
    }

    #[test]
    fn roundtrip_serialization() {
        let doc = r#"<w id="x"><p name="a" value="$in"/><q>text &amp; more</q></w>"#;
        let el = parse(doc).unwrap();
        let re = parse(&el.to_xml()).unwrap();
        assert_eq!(el, re);
    }

    #[test]
    fn utf8_content_is_preserved() {
        let el = parse("<a note=\"héllo\">wörld</a>").unwrap();
        assert_eq!(el.attr("note"), Some("héllo"));
        assert_eq!(el.text, "wörld");
    }

    #[test]
    fn req_helpers_report_missing_parts() {
        let el = parse("<a/>").unwrap();
        assert!(el.req_attr("id").is_err());
        assert!(el.req_child("element").is_err());
    }

    #[test]
    fn element_and_attribute_spans_are_tracked() {
        let el = parse("<a>\n  <b x=\"1\" yy=\"2\"/>\n</a>").unwrap();
        assert_eq!(el.span, Span::new(1, 1));
        let b = el.child("b").unwrap();
        assert_eq!(b.span, Span::new(2, 3));
        assert_eq!(b.attr_span("x"), Span::new(2, 6));
        assert_eq!(b.attr_span("yy"), Span::new(2, 12));
        // Missing attribute falls back to the element's span.
        assert_eq!(b.attr_span("zz"), b.span);
    }

    #[test]
    fn duplicate_attribute_error_points_at_second_occurrence() {
        let e = parse("<a>\n  <b x=\"1\" x=\"2\"/>\n</a>").unwrap_err();
        match e {
            ConfigError::Xml { line, col, .. } => {
                assert_eq!((line, col), (2, 12));
            }
            other => panic!("expected Xml error, got {other:?}"),
        }
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let a = parse("<a x=\"1\"/>").unwrap();
        let b = parse("\n\n   <a   x=\"1\"/>").unwrap();
        assert_eq!(a, b);
        assert_ne!(a.span, b.span);
    }
}
