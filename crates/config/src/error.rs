//! Error type shared by all configuration parsers.

use std::fmt;

/// Result alias used throughout `papar-config`.
pub type Result<T> = std::result::Result<T, ConfigError>;

/// An error raised while parsing or interpreting a configuration document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Lexical or structural XML error, with 1-based line and column.
    Xml {
        /// Human-readable description of what went wrong.
        message: String,
        /// 1-based line of the offending input position.
        line: usize,
        /// 1-based column of the offending input position.
        col: usize,
    },
    /// The document parsed as XML but is not a valid configuration of the
    /// expected kind (missing element, bad attribute value, ...).
    Schema(String),
    /// A `$variable` reference is syntactically malformed.
    BadVarRef(String),
}

impl ConfigError {
    /// Convenience constructor for schema-level errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        ConfigError::Schema(msg.into())
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Xml { message, line, col } => {
                write!(f, "XML error at {line}:{col}: {message}")
            }
            ConfigError::Schema(m) => write!(f, "configuration error: {m}"),
            ConfigError::BadVarRef(m) => write!(f, "bad variable reference: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ConfigError::Xml {
            message: "unexpected end of input".into(),
            line: 3,
            col: 7,
        };
        assert_eq!(e.to_string(), "XML error at 3:7: unexpected end of input");
    }

    #[test]
    fn display_schema_and_varref() {
        assert_eq!(
            ConfigError::schema("missing <element>").to_string(),
            "configuration error: missing <element>"
        );
        assert_eq!(
            ConfigError::BadVarRef("$".into()).to_string(),
            "bad variable reference: $"
        );
    }
}
