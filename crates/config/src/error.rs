//! Error type shared by all configuration parsers.

use std::fmt;

/// Result alias used throughout `papar-config`.
pub type Result<T> = std::result::Result<T, ConfigError>;

/// An error raised while parsing or interpreting a configuration document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Lexical or structural XML error, with 1-based line and column.
    Xml {
        /// Human-readable description of what went wrong.
        message: String,
        /// 1-based line of the offending input position.
        line: usize,
        /// 1-based column of the offending input position.
        col: usize,
    },
    /// The document parsed as XML but is not a valid configuration of the
    /// expected kind (missing element, bad attribute value, ...).
    Schema(String),
    /// A schema-level error carrying the source position of the offending
    /// element or attribute (1-based line/column; 0 = unknown).
    SchemaAt {
        /// Human-readable description of what went wrong.
        message: String,
        /// 1-based line of the offending element or attribute.
        line: usize,
        /// 1-based column of the offending element or attribute.
        col: usize,
    },
    /// A `$variable` reference is syntactically malformed.
    BadVarRef(String),
}

impl ConfigError {
    /// Convenience constructor for schema-level errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        ConfigError::Schema(msg.into())
    }

    /// Schema-level error pinned to a source span.
    pub fn schema_at(msg: impl Into<String>, span: crate::xml::Span) -> Self {
        if span.is_known() {
            ConfigError::SchemaAt {
                message: msg.into(),
                line: span.line,
                col: span.col,
            }
        } else {
            ConfigError::Schema(msg.into())
        }
    }

    /// The source span this error points at, if it carries one.
    pub fn span(&self) -> Option<crate::xml::Span> {
        match self {
            ConfigError::Xml { line, col, .. } | ConfigError::SchemaAt { line, col, .. } => {
                Some(crate::xml::Span::new(*line, *col))
            }
            ConfigError::Schema(_) | ConfigError::BadVarRef(_) => None,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Xml { message, line, col } => {
                write!(f, "XML error at {line}:{col}: {message}")
            }
            ConfigError::Schema(m) => write!(f, "configuration error: {m}"),
            ConfigError::SchemaAt { message, line, col } => {
                write!(f, "configuration error at {line}:{col}: {message}")
            }
            ConfigError::BadVarRef(m) => write!(f, "bad variable reference: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ConfigError::Xml {
            message: "unexpected end of input".into(),
            line: 3,
            col: 7,
        };
        assert_eq!(e.to_string(), "XML error at 3:7: unexpected end of input");
    }

    #[test]
    fn spanned_schema_errors() {
        use crate::xml::Span;
        let e = ConfigError::schema_at("duplicate field 'a'", Span::new(4, 9));
        assert_eq!(
            e.to_string(),
            "configuration error at 4:9: duplicate field 'a'"
        );
        assert_eq!(e.span(), Some(Span::new(4, 9)));
        // Unknown spans degrade to the plain variant.
        let e = ConfigError::schema_at("x", Span::UNKNOWN);
        assert_eq!(e, ConfigError::schema("x"));
        assert_eq!(e.span(), None);
    }

    #[test]
    fn display_schema_and_varref() {
        assert_eq!(
            ConfigError::schema("missing <element>").to_string(),
            "configuration error: missing <element>"
        );
        assert_eq!(
            ConfigError::BadVarRef("$".into()).to_string(),
            "bad variable reference: $"
        );
    }
}
