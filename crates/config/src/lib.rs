//! Configuration-file frontend for the PaPar framework.
//!
//! PaPar's user interface is two XML configuration files (paper, Section III):
//!
//! 1. an **InputData** configuration describing the record layout of an input
//!    file (paper Figures 4 and 5), parsed by [`input::InputConfig`], and
//! 2. a **Workflow** configuration describing the pipeline of partitioning
//!    operators (paper Figures 8 and 10), parsed by
//!    [`workflow::WorkflowConfig`].
//!
//! A third document type registers user-defined operators (paper Figure 7),
//! parsed by [`opdef::OperatorRegistration`].
//!
//! All three sit on a small, dependency-free, non-validating XML subset
//! parser in [`xml`]. The subset covers everything the paper's figures use:
//! elements, attributes, text content, self-closing tags, comments, XML
//! declarations, and the five predefined entities.
//!
//! # Example
//!
//! ```
//! use papar_config::input::{InputConfig, InputFormat};
//!
//! let doc = r#"
//! <input id="graph_edge" name="edge lists">
//!   <input_format>text</input_format>
//!   <element>
//!     <value name="vertex_a" type="String"/>
//!     <delimiter value="\t"/>
//!     <value name="vertex_b" type="String"/>
//!     <delimiter value="\n"/>
//!   </element>
//! </input>"#;
//! let cfg = InputConfig::parse_str(doc).unwrap();
//! assert_eq!(cfg.id, "graph_edge");
//! assert_eq!(cfg.format, InputFormat::Text);
//! ```

pub mod error;
pub mod input;
pub mod opdef;
pub mod varref;
pub mod workflow;
pub mod xml;

pub use error::{ConfigError, Result};
pub use input::{FieldType, InputConfig, InputFormat};
pub use opdef::OperatorRegistration;
pub use varref::VarRef;
pub use workflow::WorkflowConfig;
