//! `$variable` references inside workflow configurations.
//!
//! The paper (Section III-C) uses the `$` symbol to denote values that come
//! from the workflow arguments or from intermediate data of earlier jobs:
//!
//! * `$input_path` — a workflow argument,
//! * `$sort.outputPath` — a parameter of the earlier operator with id `sort`
//!   (the figures spell it `ouputPath` in one spot; both spellings resolve),
//! * `$group.$indegree` — an *attribute* added by an add-on operator of the
//!   earlier `group` job (the `$` before the attribute marks it as data, not
//!   as a static parameter),
//! * `$threshold` inside a policy expression such as
//!   `{>=, $threshold},{<,$threshold}`.
//!
//! [`VarRef::parse`] classifies a single token; [`substitute`] rewrites every
//! reference inside an arbitrary string (used for policy expressions and
//! comma-separated lists).

use crate::error::{ConfigError, Result};

/// A classified `$` reference (or a literal if no `$` is present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarRef {
    /// Plain text, no reference.
    Literal(String),
    /// `$name` — a workflow argument.
    Arg(String),
    /// `$job.param` — a parameter of an earlier operator (typically its
    /// `outputPath`).
    JobParam {
        /// Operator id of the earlier job.
        job: String,
        /// Parameter name on that job.
        param: String,
    },
    /// `$job.$attr` — a data attribute added by an earlier job's add-on.
    JobAttr {
        /// Operator id of the earlier job.
        job: String,
        /// Attribute name added by that job.
        attr: String,
    },
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if is_ident_start(c)) && chars.all(is_ident_char)
}

impl VarRef {
    /// Classify a whole token. A token that does not start with `$` is a
    /// [`VarRef::Literal`].
    pub fn parse(token: &str) -> Result<VarRef> {
        if !token.starts_with('$') {
            return Ok(VarRef::Literal(token.to_string()));
        }
        let body = &token[1..];
        if body.is_empty() {
            return Err(ConfigError::BadVarRef(token.to_string()));
        }
        match body.split_once('.') {
            None => {
                if is_ident(body) {
                    Ok(VarRef::Arg(body.to_string()))
                } else {
                    Err(ConfigError::BadVarRef(token.to_string()))
                }
            }
            Some((job, rest)) => {
                if !is_ident(job) {
                    return Err(ConfigError::BadVarRef(token.to_string()));
                }
                if let Some(attr) = rest.strip_prefix('$') {
                    if !is_ident(attr) {
                        return Err(ConfigError::BadVarRef(token.to_string()));
                    }
                    Ok(VarRef::JobAttr {
                        job: job.to_string(),
                        attr: attr.to_string(),
                    })
                } else {
                    if !is_ident(rest) {
                        return Err(ConfigError::BadVarRef(token.to_string()));
                    }
                    Ok(VarRef::JobParam {
                        job: job.to_string(),
                        param: rest.to_string(),
                    })
                }
            }
        }
    }

    /// True when this is a reference (not a literal).
    pub fn is_reference(&self) -> bool {
        !matches!(self, VarRef::Literal(_))
    }
}

/// Replace every `$reference` occurring in `s` using `lookup`.
///
/// `lookup` receives the parsed reference and returns its replacement text;
/// returning an `Err` aborts the substitution. Text outside references is
/// copied verbatim, so policy expressions like `{>=, $threshold}` work. A
/// doubled `$$` escapes to a literal `$` without invoking `lookup`.
pub fn substitute<F>(s: &str, mut lookup: F) -> Result<String>
where
    F: FnMut(&VarRef) -> Result<String>,
{
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'$' {
            out.push(bytes[i] as char);
            i += 1;
            continue;
        }
        // `$$` escapes a literal dollar sign.
        if i + 1 < bytes.len() && bytes[i + 1] == b'$' {
            out.push('$');
            i += 2;
            continue;
        }
        // Greedily take the longest `$job.$attr` / `$job.param` / `$name`.
        let start = i;
        i += 1;
        let seg_start = i;
        if i < bytes.len() && is_ident_start(bytes[i] as char) {
            i += 1;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
        }
        if i == seg_start {
            return Err(ConfigError::BadVarRef(s.to_string()));
        }
        // Optional `.param` or `.$attr` suffix.
        if i < bytes.len() && bytes[i] == b'.' {
            let dot = i;
            let mut j = i + 1;
            let dollar = j < bytes.len() && bytes[j] == b'$';
            if dollar {
                j += 1;
            }
            let p_start = j;
            while j < bytes.len() && is_ident_char(bytes[j] as char) {
                j += 1;
            }
            if j > p_start {
                i = j;
            } else {
                i = dot; // a bare trailing dot is not part of the reference
            }
        }
        let token = &s[start..i];
        let r = VarRef::parse(token)?;
        out.push_str(&lookup(&r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_argument_reference() {
        assert_eq!(
            VarRef::parse("$input_path").unwrap(),
            VarRef::Arg("input_path".into())
        );
    }

    #[test]
    fn parses_job_param_reference() {
        assert_eq!(
            VarRef::parse("$sort.outputPath").unwrap(),
            VarRef::JobParam {
                job: "sort".into(),
                param: "outputPath".into()
            }
        );
    }

    #[test]
    fn parses_job_attr_reference() {
        assert_eq!(
            VarRef::parse("$group.$indegree").unwrap(),
            VarRef::JobAttr {
                job: "group".into(),
                attr: "indegree".into()
            }
        );
    }

    #[test]
    fn literal_passthrough() {
        let v = VarRef::parse("roundRobin").unwrap();
        assert_eq!(v, VarRef::Literal("roundRobin".into()));
        assert!(!v.is_reference());
    }

    #[test]
    fn rejects_malformed() {
        assert!(VarRef::parse("$").is_err());
        assert!(VarRef::parse("$a.").is_err());
        assert!(VarRef::parse("$a.$").is_err());
        assert!(VarRef::parse("$a-b").is_err());
    }

    #[test]
    fn substitute_policy_expression() {
        // Paper Figure 10: value="{>=, $threshold},{<,$threshold}"
        let out = substitute("{>=, $threshold},{<,$threshold}", |r| match r {
            VarRef::Arg(a) if a == "threshold" => Ok("4".to_string()),
            other => panic!("unexpected ref {other:?}"),
        })
        .unwrap();
        assert_eq!(out, "{>=, 4},{<,4}");
    }

    #[test]
    fn substitute_job_refs_and_plain_text() {
        let out = substitute("$sort.outputPath/part", |r| match r {
            VarRef::JobParam { job, param } => Ok(format!("<{job}:{param}>")),
            _ => panic!(),
        })
        .unwrap();
        assert_eq!(out, "<sort:outputPath>/part");
    }

    #[test]
    fn substitute_trailing_dot_is_literal() {
        let out = substitute("$a.", |r| match r {
            VarRef::Arg(a) => Ok(format!("[{a}]")),
            _ => panic!(),
        })
        .unwrap();
        assert_eq!(out, "[a].");
    }

    #[test]
    fn substitute_bare_dollar_errors() {
        assert!(substitute("cost: $5", |_| Ok(String::new())).is_err());
    }

    #[test]
    fn substitute_doubled_dollar_escapes() {
        // `$$` produces a literal `$` and never reaches the lookup.
        let out = substitute("cost: $$5", |r| panic!("unexpected ref {r:?}")).unwrap();
        assert_eq!(out, "cost: $5");
        // An escape directly followed by a real reference.
        let out = substitute("$$$price", |r| match r {
            VarRef::Arg(a) => Ok(format!("[{a}]")),
            _ => panic!(),
        })
        .unwrap();
        assert_eq!(out, "$[price]");
        // Only escapes, no references at all.
        assert_eq!(substitute("$$$$", |_| unreachable!()).unwrap(), "$$");
    }

    #[test]
    fn substitute_unknown_variable_propagates_error() {
        let e = substitute("a/$missing/b", |r| match r {
            VarRef::Arg(a) => Err(ConfigError::schema(format!("unbound argument '${a}'"))),
            _ => panic!(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("unbound argument '$missing'"));
    }

    #[test]
    fn substitute_reference_adjacent_to_text() {
        // Identifier chars extend the reference; punctuation terminates it.
        let out = substitute("pre$a-mid-$b_tail/end", |r| match r {
            VarRef::Arg(a) => Ok(format!("<{a}>")),
            _ => panic!(),
        })
        .unwrap();
        assert_eq!(out, "pre<a>-mid-<b_tail>/end");
    }
}
