//! User-defined operator registration documents (paper Section III-B,
//! Figure 7).
//!
//! PaPar lets users register their own computational operators by inheriting
//! one of the operator base classes and describing the implementation in a
//! small `<prog>` document: where the code lives (`<import>`) and what
//! arguments its constructor takes (`<arguments>`, with optional defaults).
//! The framework uses the registration to know how to invoke the operator
//! from a workflow.
//!
//! In this Rust reproduction the `classpath`/`package`/`class` triple maps
//! onto a name under which a Rust implementation of
//! `papar_core::operator::Operator` has been registered; the parsed
//! signature is used to validate workflow parameters.

use crate::error::{ConfigError, Result};
use crate::xml::{self, Element};

/// One declared constructor argument of a registered operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpArgDef {
    /// Argument name (`inputPath`, `keyId`, ...).
    pub name: String,
    /// Declared type (`String`, `KeyId`, `boolean`, ...).
    pub ty: String,
    /// Default value, if the argument is optional.
    pub default: Option<String>,
}

/// A parsed operator registration (`<prog type="operator">`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorRegistration {
    /// Registration id — the name workflows use in `operator="..."`.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Location of the implementation (the paper's Java classpath; here an
    /// opaque registry path).
    pub classpath: String,
    /// Package of the implementation.
    pub package: String,
    /// Class (implementation entry point) of the operator.
    pub class: String,
    /// Declared constructor arguments in order.
    pub arguments: Vec<OpArgDef>,
}

impl OperatorRegistration {
    /// Parse a registration document from XML text.
    pub fn parse_str(doc: &str) -> Result<Self> {
        Self::from_element(&xml::parse(doc)?)
    }

    /// Build from an already-parsed XML element.
    pub fn from_element(el: &Element) -> Result<Self> {
        if el.name != "prog" {
            return Err(ConfigError::schema(format!(
                "expected <prog> root, found <{}>",
                el.name
            )));
        }
        match el.attr("type") {
            Some("operator") => {}
            Some(other) => {
                return Err(ConfigError::schema(format!(
                    "unsupported prog type '{other}' (expected 'operator')"
                )))
            }
            None => return Err(ConfigError::schema("<prog> is missing 'type' attribute")),
        }
        let import = el.req_child("import")?;
        let mut arguments = Vec::new();
        if let Some(args) = el.child("arguments") {
            for p in args.children_named("param") {
                arguments.push(OpArgDef {
                    name: p.req_attr("name")?.to_string(),
                    ty: p.req_attr("type")?.to_string(),
                    default: p.attr("default").map(str::to_string),
                });
            }
        }
        let reg = OperatorRegistration {
            id: el.req_attr("id")?.to_string(),
            name: el.attr("name").unwrap_or("").to_string(),
            classpath: import.req_attr("classpath")?.to_string(),
            package: import.req_attr("package")?.to_string(),
            class: import.req_attr("class")?.to_string(),
            arguments,
        };
        let mut seen = std::collections::HashSet::new();
        for a in &reg.arguments {
            if !seen.insert(a.name.as_str()) {
                return Err(ConfigError::schema(format!(
                    "duplicate operator argument '{}'",
                    a.name
                )));
            }
        }
        Ok(reg)
    }

    /// Look up a declared argument by name.
    pub fn argument(&self, name: &str) -> Option<&OpArgDef> {
        self.arguments.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 7, verbatim.
    const FIG7: &str = r#"
<prog id="Sort" type="operator" name="MapReduce sort operator">
  <import classpath="/user/mr/sort" package="com.mr.sort" class="Sort"/>
  <arguments>
    <param name="inputPath" type="String"/>
    <param name="outputPath" type="String"/>
    <param name="keyId" type="KeyId"/>
    <param name="ascending" type="boolean" default="true"/>
  </arguments>
</prog>"#;

    #[test]
    fn paper_figure7_parses() {
        let reg = OperatorRegistration::parse_str(FIG7).unwrap();
        assert_eq!(reg.id, "Sort");
        assert_eq!(reg.class, "Sort");
        assert_eq!(reg.package, "com.mr.sort");
        assert_eq!(reg.arguments.len(), 4);
        assert_eq!(
            reg.argument("ascending").unwrap().default.as_deref(),
            Some("true")
        );
        assert_eq!(reg.argument("keyId").unwrap().ty, "KeyId");
        assert_eq!(reg.argument("inputPath").unwrap().default, None);
    }

    #[test]
    fn rejects_wrong_root_or_type() {
        assert!(OperatorRegistration::parse_str("<other/>").is_err());
        assert!(OperatorRegistration::parse_str(
            r#"<prog id="x" type="job"><import classpath="a" package="b" class="c"/></prog>"#
        )
        .is_err());
        assert!(OperatorRegistration::parse_str(
            r#"<prog id="x"><import classpath="a" package="b" class="c"/></prog>"#
        )
        .is_err());
    }

    #[test]
    fn rejects_missing_import() {
        assert!(OperatorRegistration::parse_str(r#"<prog id="x" type="operator"/>"#).is_err());
    }

    #[test]
    fn rejects_duplicate_arguments() {
        let doc = r#"
<prog id="x" type="operator">
  <import classpath="a" package="b" class="c"/>
  <arguments>
    <param name="p" type="String"/>
    <param name="p" type="String"/>
  </arguments>
</prog>"#;
        assert!(OperatorRegistration::parse_str(doc).is_err());
    }

    #[test]
    fn arguments_section_is_optional() {
        let doc = r#"
<prog id="x" type="operator">
  <import classpath="a" package="b" class="c"/>
</prog>"#;
        let reg = OperatorRegistration::parse_str(doc).unwrap();
        assert!(reg.arguments.is_empty());
    }
}
