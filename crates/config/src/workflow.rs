//! The **Workflow** configuration: the user-defined partitioning pipeline
//! (paper Section III-B/C, Figures 8 and 10).
//!
//! A workflow has an `<arguments>` section declaring the runtime parameters
//! (input/output paths, `num_partitions`, ...) and an `<operators>` section
//! listing the jobs to launch, in order. Each operator names a registered
//! operator implementation (`Sort`, `Group`, `Split`, `Distribute`, or a
//! user registration), carries its own `<param>`s — whose values may
//! reference arguments or earlier jobs with `$` — and may attach `<addon>`
//! operators (`count`, `max`, `min`, `mean`, `sum`).

use crate::error::{ConfigError, Result};
use crate::xml::{self, Element, Span};

/// A declared workflow argument (`<param>` inside `<arguments>`).
///
/// Equality ignores the [`Span`] (content equality), as for every other
/// spanned configuration type.
#[derive(Debug, Clone, Eq)]
pub struct ArgDef {
    /// Argument name (referenced as `$name`).
    pub name: String,
    /// Declared type: `hdfs`, `integer`, `String`, ... (free-form; the
    /// planner interprets it).
    pub ty: String,
    /// For path-typed arguments: the id of the InputData configuration
    /// describing the file's record layout.
    pub format: Option<String>,
    /// Optional default value baked into the configuration.
    pub value: Option<String>,
    /// Position of the declaring `<param>` element.
    pub span: Span,
}

impl PartialEq for ArgDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.ty == other.ty
            && self.format == other.format
            && self.value == other.value
    }
}

/// A parameter of one operator (`<param>` inside `<operator>`).
///
/// Equality ignores the spans (content equality).
#[derive(Debug, Clone, Eq)]
pub struct ParamDef {
    /// Parameter name (`inputPath`, `key`, `policy`, ...).
    pub name: String,
    /// Declared type (`String`, `KeyId`, `DistrPolicy`, ...).
    pub ty: String,
    /// Raw value text; may contain `$` references. `None` when the parameter
    /// is bound at launch time (e.g. workflow arguments without defaults).
    pub value: Option<String>,
    /// Output-format annotation (`format="pack"` or, for path lists,
    /// `format="unpack,orig"`).
    pub format: Option<String>,
    /// Position of the declaring `<param>` element.
    pub span: Span,
    /// Position of the `value="..."` attribute (falls back to the element
    /// position when absent). Diagnostics about `$` references point here.
    pub value_span: Span,
}

impl PartialEq for ParamDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.ty == other.ty
            && self.value == other.value
            && self.format == other.format
    }
}

/// An add-on operator attached to a basic operator (`<addon>`).
///
/// Equality ignores the [`Span`] (content equality).
#[derive(Debug, Clone, Eq)]
pub struct AddOnDef {
    /// Add-on operator name: `count`, `max`, `min`, `mean` or `sum`.
    pub operator: String,
    /// The field the add-on computes over.
    pub key: String,
    /// The name of the attribute the add-on appends to each record.
    pub attr: String,
    /// Position of the declaring `<addon>` element.
    pub span: Span,
}

impl PartialEq for AddOnDef {
    fn eq(&self, other: &Self) -> bool {
        self.operator == other.operator && self.key == other.key && self.attr == other.attr
    }
}

/// One job of the workflow (`<operator>`).
///
/// Equality ignores the spans (content equality).
#[derive(Debug, Clone, Eq)]
pub struct OperatorDef {
    /// Job id, referenced by later jobs as `$id.param`.
    pub id: String,
    /// Name of the operator implementation to invoke.
    pub operator: String,
    /// Optional reducer-count override (`num_reducers="..."`), possibly a
    /// `$` reference.
    pub num_reducers: Option<String>,
    /// Parameters in document order.
    pub params: Vec<ParamDef>,
    /// Attached add-on operators.
    pub addons: Vec<AddOnDef>,
    /// Position of the declaring `<operator>` element.
    pub span: Span,
    /// Position of the `id="..."` attribute (duplicate-id diagnostics point
    /// at the second occurrence).
    pub id_span: Span,
}

impl PartialEq for OperatorDef {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.operator == other.operator
            && self.num_reducers == other.num_reducers
            && self.params == other.params
            && self.addons == other.addons
    }
}

impl OperatorDef {
    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Look up a parameter value, tolerating the paper's `ouputPath` typo
    /// when asked for `outputPath` (Figure 8 uses both spellings).
    pub fn param_fuzzy(&self, name: &str) -> Option<&ParamDef> {
        self.param(name).or_else(|| {
            if name == "outputPath" {
                self.param("ouputPath")
            } else if name == "ouputPath" {
                self.param("outputPath")
            } else {
                None
            }
        })
    }

    /// Required-parameter lookup with a schema error on absence.
    pub fn req_param(&self, name: &str) -> Result<&ParamDef> {
        self.param_fuzzy(name).ok_or_else(|| {
            ConfigError::schema(format!(
                "operator '{}' is missing required param '{name}'",
                self.id
            ))
        })
    }
}

/// A parsed workflow document.
///
/// Equality ignores the root [`Span`] (content equality).
#[derive(Debug, Clone, Eq)]
pub struct WorkflowConfig {
    /// Workflow id.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Declared arguments.
    pub arguments: Vec<ArgDef>,
    /// Jobs in launch order.
    pub operators: Vec<OperatorDef>,
    /// Position of the `<workflow>` root element.
    pub span: Span,
}

impl PartialEq for WorkflowConfig {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.name == other.name
            && self.arguments == other.arguments
            && self.operators == other.operators
    }
}

impl WorkflowConfig {
    /// Parse a workflow document from XML text.
    pub fn parse_str(doc: &str) -> Result<Self> {
        Self::from_element(&xml::parse(doc)?)
    }

    /// Parse from XML text without semantic validation (see
    /// [`WorkflowConfig::from_element_unchecked`]).
    pub fn parse_str_unchecked(doc: &str) -> Result<Self> {
        Self::from_element_unchecked(&xml::parse(doc)?)
    }

    /// Build from an already-parsed XML element.
    pub fn from_element(el: &Element) -> Result<Self> {
        let wf = Self::from_element_unchecked(el)?;
        wf.validate()?;
        Ok(wf)
    }

    /// Build from an already-parsed XML element *without* running semantic
    /// validation. `papar check` uses this to report duplicate ids and empty
    /// workflows as structured diagnostics instead of parse failures.
    pub fn from_element_unchecked(el: &Element) -> Result<Self> {
        if el.name != "workflow" {
            return Err(ConfigError::schema_at(
                format!("expected <workflow> root, found <{}>", el.name),
                el.span,
            ));
        }
        let id = el.req_attr("id")?.to_string();
        let name = el.attr("name").unwrap_or("").to_string();

        let mut arguments = Vec::new();
        if let Some(args) = el.child("arguments") {
            for p in args.children_named("param") {
                arguments.push(ArgDef {
                    name: p.req_attr("name")?.to_string(),
                    ty: p.req_attr("type")?.to_string(),
                    format: p.attr("format").map(str::to_string),
                    value: p.attr("value").map(str::to_string),
                    span: p.span,
                });
            }
        }

        let mut operators = Vec::new();
        let ops = el.req_child("operators")?;
        for o in ops.children_named("operator") {
            let mut params = Vec::new();
            let mut addons = Vec::new();
            for c in &o.children {
                match c.name.as_str() {
                    "param" => params.push(ParamDef {
                        name: c.req_attr("name")?.to_string(),
                        ty: c.req_attr("type")?.to_string(),
                        value: c.attr("value").map(str::to_string),
                        format: c.attr("format").map(str::to_string),
                        span: c.span,
                        value_span: c.attr_span("value"),
                    }),
                    "addon" => addons.push(AddOnDef {
                        operator: c.req_attr("operator")?.to_string(),
                        key: c.req_attr("key")?.to_string(),
                        attr: c.req_attr("attr")?.to_string(),
                        span: c.span,
                    }),
                    other => {
                        return Err(ConfigError::schema_at(
                            format!("unexpected <{other}> inside <operator>"),
                            c.span,
                        ))
                    }
                }
            }
            operators.push(OperatorDef {
                id: o.req_attr("id")?.to_string(),
                operator: o.req_attr("operator")?.to_string(),
                num_reducers: o.attr("num_reducers").map(str::to_string),
                params,
                addons,
                span: o.span,
                id_span: o.attr_span("id"),
            });
        }

        Ok(WorkflowConfig {
            id,
            name,
            arguments,
            operators,
            span: el.span,
        })
    }

    /// Semantic validation: non-empty, unique argument names and job ids.
    pub fn validate(&self) -> Result<()> {
        if self.operators.is_empty() {
            return Err(ConfigError::schema_at(
                "workflow declares no operators",
                self.span,
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &self.arguments {
            if !seen.insert(a.name.as_str()) {
                return Err(ConfigError::schema_at(
                    format!("duplicate argument '{}'", a.name),
                    a.span,
                ));
            }
        }
        let mut ids = std::collections::HashSet::new();
        for o in &self.operators {
            if !ids.insert(o.id.as_str()) {
                return Err(ConfigError::schema_at(
                    format!("duplicate operator id '{}'", o.id),
                    o.id_span,
                ));
            }
        }
        Ok(())
    }

    /// Look up an argument declaration by name.
    pub fn argument(&self, name: &str) -> Option<&ArgDef> {
        self.arguments.iter().find(|a| a.name == name)
    }

    /// Look up an operator by id.
    pub fn operator(&self, id: &str) -> Option<&OperatorDef> {
        self.operators.iter().find(|o| o.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 8, verbatim (including the `ouputPath` typo on the sort
    /// operator and the `$sort.ouputPath` back-reference).
    pub const FIG8: &str = r#"
<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
    <param name="num_reducers" type="integer" value="3"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort" num_reducers="$num_reducers">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="ouputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.ouputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

    /// Paper Figure 10, verbatim (including the `$sort.outputPath` slip in
    /// the split operator, which per the text means the group job's output).
    pub const FIG10: &str = r#"
<workflow id="hybrid_cut" name="Hybrid-cut">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
    <param name="output_path" type="hdfs" format="graph_edge"/>
    <param name="num_partitions" type="integer"/>
    <param name="threshold" type="integer"/>
  </arguments>
  <operators>
    <operator id="group" operator="group">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPath" type="String" value="/tmp/group" format="pack"/>
      <param name="key" type="KeyId" value="vertex_b"/>
      <addon operator="count" key="vertex_b" attr="indegree"/>
    </operator>
    <operator id="split" operator="Split">
      <param name="inputPath" type="String" value="$group.outputPath"/>
      <param name="outputPathList" type="StringList"
             value="/tmp/split/high_degree,/tmp/split/low_degree"
             format="unpack,orig"/>
      <param name="key" type="KeyId" value="$group.$indegree"/>
      <param name="policy" type="SplitPolicy" value="{&gt;=, $threshold},{&lt;,$threshold}"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="/tmp/split/"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="policy" type="distrPolicy" value="graphVertexCut"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

    #[test]
    fn paper_figure8_parses() {
        let wf = WorkflowConfig::parse_str(FIG8).unwrap();
        assert_eq!(wf.id, "blast_partition");
        assert_eq!(wf.arguments.len(), 4);
        assert_eq!(wf.operators.len(), 2);
        let sort = wf.operator("sort").unwrap();
        assert_eq!(sort.operator, "Sort");
        assert_eq!(sort.num_reducers.as_deref(), Some("$num_reducers"));
        assert_eq!(
            sort.req_param("key").unwrap().value.as_deref(),
            Some("seq_size")
        );
        // The figure's typo: `ouputPath` resolves when asked for `outputPath`.
        assert_eq!(
            sort.req_param("outputPath").unwrap().value.as_deref(),
            Some("/user/sort_output")
        );
        let distr = wf.operator("distr").unwrap();
        assert_eq!(
            distr.req_param("distrPolicy").unwrap().value.as_deref(),
            Some("roundRobin")
        );
    }

    #[test]
    fn paper_figure10_parses() {
        let wf = WorkflowConfig::parse_str(FIG10).unwrap();
        assert_eq!(wf.operators.len(), 3);
        let group = wf.operator("group").unwrap();
        assert_eq!(group.addons.len(), 1);
        assert_eq!(group.addons[0].operator, "count");
        assert_eq!(group.addons[0].attr, "indegree");
        assert_eq!(
            group.req_param("outputPath").unwrap().format.as_deref(),
            Some("pack")
        );
        let split = wf.operator("split").unwrap();
        assert_eq!(
            split.req_param("key").unwrap().value.as_deref(),
            Some("$group.$indegree")
        );
        assert_eq!(
            split.req_param("policy").unwrap().value.as_deref(),
            Some("{>=, $threshold},{<,$threshold}")
        );
        assert_eq!(
            split.req_param("outputPathList").unwrap().format.as_deref(),
            Some("unpack,orig")
        );
    }

    #[test]
    fn default_argument_values_survive() {
        let wf = WorkflowConfig::parse_str(FIG8).unwrap();
        assert_eq!(
            wf.argument("num_reducers").unwrap().value.as_deref(),
            Some("3")
        );
        assert_eq!(wf.argument("num_partitions").unwrap().value, None);
        assert_eq!(
            wf.argument("input_path").unwrap().format.as_deref(),
            Some("blast_db")
        );
    }

    #[test]
    fn rejects_duplicate_operator_ids() {
        let doc = r#"
<workflow id="w" name="n">
  <operators>
    <operator id="a" operator="Sort"/>
    <operator id="a" operator="Sort"/>
  </operators>
</workflow>"#;
        assert!(WorkflowConfig::parse_str(doc).is_err());
    }

    #[test]
    fn rejects_empty_workflow() {
        let doc = r#"<workflow id="w" name="n"><operators/></workflow>"#;
        assert!(WorkflowConfig::parse_str(doc).is_err());
    }

    #[test]
    fn rejects_stray_children() {
        let doc = r#"
<workflow id="w" name="n">
  <operators>
    <operator id="a" operator="Sort"><bogus/></operator>
  </operators>
</workflow>"#;
        assert!(WorkflowConfig::parse_str(doc).is_err());
    }

    #[test]
    fn missing_required_param_is_reported() {
        let wf = WorkflowConfig::parse_str(FIG8).unwrap();
        let sort = wf.operator("sort").unwrap();
        let e = sort.req_param("nonexistent").unwrap_err();
        assert!(e.to_string().contains("nonexistent"));
    }
}
