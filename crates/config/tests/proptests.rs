//! Property tests for the XML subset parser: serialization round-trips
//! and crash-freedom on arbitrary input.

use papar_config::xml::{self, Element};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_-]{0,10}".prop_map(|s| s)
}

fn attr_value_strategy() -> impl Strategy<Value = String> {
    // Arbitrary text including the XML special characters; escaping must
    // handle all of them.
    prop::collection::vec(
        prop_oneof![
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just(' '),
            prop::char::range('a', 'z'),
            prop::char::range('0', '9'),
        ],
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), attr_value_strategy()), 0..4),
        attr_value_strategy(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = Element::new(name);
            // Deduplicate attribute names (the parser rejects duplicates).
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    el.push_attr(k, v);
                }
            }
            el.text = text;
            el
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut el = Element::new(name);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        el.push_attr(k, v);
                    }
                }
                el.children = children;
                el
            })
    })
}

proptest! {
    /// serialize -> parse is the identity on any tree the serializer can
    /// produce (text inside elements with children is emitted before the
    /// children, which the parser preserves).
    #[test]
    fn serialize_parse_roundtrip(el in element_strategy()) {
        let xml = el.to_xml();
        let back = xml::parse(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert_eq!(back, el);
    }

    /// The parser never panics on arbitrary input — it either parses or
    /// returns a positioned error.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = xml::parse(&input);
    }

    /// Variable-reference substitution is the identity when the lookup
    /// returns the reference's own text.
    #[test]
    fn varref_identity_substitution(name in "[a-z_][a-z0-9_]{0,8}", tail in "[-/a-z0-9]{0,10}") {
        use papar_config::varref::{substitute, VarRef};
        let s = format!("${name}{tail}");
        // Skip inputs where the tail immediately extends the identifier.
        prop_assume!(!tail.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_'));
        let out = substitute(&s, |r| match r {
            VarRef::Arg(a) => Ok(format!("${a}")),
            other => panic!("unexpected {other:?}"),
        }).unwrap();
        prop_assert_eq!(out, s);
    }
}
