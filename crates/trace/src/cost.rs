//! The deterministic cost model behind the trace's modeled clock.
//!
//! Measured task times vary run to run (and with the thread count), so a
//! trace stamped with them could never be byte-identical. The exported
//! trace therefore uses a *modeled* clock: compute time is a fixed
//! linear function of deterministic work counters (records touched,
//! pairs moved, bytes encoded or decoded), and communication time comes
//! from the cluster's α–β network model applied to deterministic byte
//! and message counts. Same workflow, same input, same fault plan ⇒ same
//! counters ⇒ same modeled timeline, at any thread count.

use std::time::Duration;

/// Fixed per-unit compute costs, in modeled nanoseconds.
///
/// The defaults are round numbers in the right order of magnitude for
/// the engine's per-record work on current hardware; they only shape
/// the exported timeline's proportions and need no calibration for the
/// determinism guarantee to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of touching one input/output record.
    pub ns_per_record: u64,
    /// Cost of emitting, shuffling, or decoding one key-value pair.
    pub ns_per_pair: u64,
    /// Cost of encoding or decoding one byte.
    pub ns_per_byte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_record: 120,
            ns_per_pair: 40,
            ns_per_byte: 1,
        }
    }
}

impl CostModel {
    /// Modeled compute nanoseconds for a task that touched `records`
    /// records, moved `pairs` pairs, and processed `bytes` bytes.
    /// Saturates instead of wrapping on adversarial counts.
    pub fn compute_ns(&self, records: u64, pairs: u64, bytes: u64) -> u64 {
        records
            .saturating_mul(self.ns_per_record)
            .saturating_add(pairs.saturating_mul(self.ns_per_pair))
            .saturating_add(bytes.saturating_mul(self.ns_per_byte))
    }
}

/// A [`Duration`] as saturating `u64` nanoseconds (deterministic inputs
/// like backoffs and modeled transfer times fit comfortably; a
/// saturated `Duration::MAX` clamps to `u64::MAX`).
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_linear_and_saturating() {
        let m = CostModel {
            ns_per_record: 10,
            ns_per_pair: 3,
            ns_per_byte: 1,
        };
        assert_eq!(m.compute_ns(0, 0, 0), 0);
        assert_eq!(m.compute_ns(2, 4, 8), 20 + 12 + 8);
        assert_eq!(m.compute_ns(u64::MAX, 1, 1), u64::MAX);
    }

    #[test]
    fn duration_ns_clamps_max() {
        assert_eq!(duration_ns(Duration::from_nanos(1234)), 1234);
        assert_eq!(duration_ns(Duration::MAX), u64::MAX);
    }
}
