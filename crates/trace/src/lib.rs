//! Structured observability for the simulated cluster: spans, counters,
//! and trace export.
//!
//! Every workflow run decomposes into a tree of **spans** — workflow →
//! job → phase (sample/map/shuffle/reduce) → per-node task — each
//! carrying byte/record counters and *two* clocks:
//!
//! * the **virtual clock** (`virt`): the measured per-phase times the
//!   engine already charges to the simulated makespan. These are real
//!   measurements, so they vary run to run and are used for the human
//!   `--profile` breakdown (whose phases sum exactly to the reported
//!   makespan).
//! * the **deterministic clock** (`det_ns`): a modeled time computed
//!   *only* from deterministic quantities — record/pair/byte counters
//!   and the [α–β network model] — via [`CostModel`]. Exported traces
//!   (`--trace out.json`, Chrome trace-event format) are stamped with
//!   this clock, so the emitted JSON is byte-identical across runs and
//!   thread counts, the same discipline that keeps partitions
//!   byte-identical.
//!
//! Collection goes through the [`TraceSink`] trait. The default
//! [`NoopSink`] reports itself disabled and the engine skips all
//! bookkeeping, so tracing is near-zero-cost when off (the bench crate
//! asserts this); [`Collector`] assembles a [`WorkflowTrace`].
//!
//! [α–β network model]: CostModel

mod chrome;
mod cost;
mod profile;
mod sink;

pub use chrome::to_chrome_json;
pub use cost::{duration_ns, CostModel};
pub use profile::{
    render_bounds_check, render_prediction_check, render_profile, summary_json, Prediction,
    StaticBound,
};
pub use sink::{Collector, JobTrace, NoopSink, PhaseTrace, TaskTrace, TraceSink};

use std::time::Duration;

/// The phase a span belongs to, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// The pre-job key-sampling pass of a sort operator.
    Sample,
    /// The map side of an engine job (or the whole of a map-only job).
    Map,
    /// The all-to-all exchange, including recovery traffic.
    Shuffle,
    /// The reduce side of an engine job.
    Reduce,
    /// Durable publication of a completed stage's output fragments to a
    /// checkpoint run directory.
    Checkpoint,
    /// Re-population of the cluster store from a checkpoint on
    /// `--resume` (the stage itself is skipped).
    Restore,
}

impl PhaseKind {
    /// Stable lowercase name used in rendered output and trace JSON.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Sample => "sample",
            PhaseKind::Map => "map",
            PhaseKind::Shuffle => "shuffle",
            PhaseKind::Reduce => "reduce",
            PhaseKind::Checkpoint => "ckpt",
            PhaseKind::Restore => "restore",
        }
    }
}

/// What a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole workflow run (root span).
    Workflow,
    /// One MapReduce (or map-only) job.
    Job,
    /// One BSP phase of a job.
    Phase(PhaseKind),
    /// One node's task within a phase.
    Task {
        /// The simulated node the task ran on.
        node: usize,
    },
}

/// Deterministic event counters carried by every span. All counts are
/// exact (not sampled) and sum up the tree: a phase's counters are the
/// sum of its tasks', a job's the sum of its phases'.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Records entering map tasks.
    pub records_in: u64,
    /// Records leaving reduce tasks.
    pub records_out: u64,
    /// Key-value pairs emitted (map side) or decoded (reduce side).
    pub pairs: u64,
    /// Bytes moved between distinct nodes by the shuffle.
    pub shuffle_bytes: u64,
    /// Remote shuffle transfers.
    pub messages: u64,
    /// Transfer frames the receivers checksum-verified (every remote
    /// frame plus every retransmission).
    pub frames_checksummed: u64,
    /// Task re-executions after injected crashes.
    pub retries: u64,
    /// Injected faults that fired in this span.
    pub crashes: u64,
    /// Bytes re-fetched from replicas to restore crashed stores.
    pub restore_bytes: u64,
    /// Replica-restore transfers.
    pub restore_messages: u64,
    /// Bytes retransmitted after drops, corruption, or reducer crashes.
    pub retransmit_bytes: u64,
    /// Retransmission transfers.
    pub retransmit_messages: u64,
    /// Bytes moved to place fragment replicas (checkpoint traffic).
    pub replication_bytes: u64,
    /// Bytes written durably to a checkpoint run directory.
    pub checkpoint_bytes: u64,
    /// Bytes read back from a checkpoint on `--resume`.
    pub restored_bytes: u64,
    /// Virtual nanoseconds spent in retry backoff.
    pub backoff_ns: u64,
    /// Bytes the reduce sort stage *moves*: owned decoded pairs on the
    /// legacy path, 32-byte index entries (+ tie re-decodes) on the
    /// zero-copy path. Analytic (a function of the data and mode, not the
    /// allocator), so identical at every thread count.
    pub staged_bytes: u64,
    /// Heap allocations needed to stage the reduce sort's elements —
    /// analytic like `staged_bytes`.
    pub staged_allocs: u64,
    /// Wire bytes materialized into owned records on the reduce side;
    /// equal across zero-copy modes (every pair is decoded exactly once).
    pub materialized_bytes: u64,
    /// Pairs that landed in a key-prefix tie run (≥ 2 members sharing a
    /// `(reducer, prefix)`), the runs the zero-copy sort re-checks.
    pub tie_pairs: u64,
}

impl Counters {
    /// Fold another span's counters into this one.
    pub fn add(&mut self, o: &Counters) {
        self.records_in += o.records_in;
        self.records_out += o.records_out;
        self.pairs += o.pairs;
        self.shuffle_bytes += o.shuffle_bytes;
        self.messages += o.messages;
        self.frames_checksummed += o.frames_checksummed;
        self.retries += o.retries;
        self.crashes += o.crashes;
        self.restore_bytes += o.restore_bytes;
        self.restore_messages += o.restore_messages;
        self.retransmit_bytes += o.retransmit_bytes;
        self.retransmit_messages += o.retransmit_messages;
        self.replication_bytes += o.replication_bytes;
        self.checkpoint_bytes += o.checkpoint_bytes;
        self.restored_bytes += o.restored_bytes;
        self.backoff_ns += o.backoff_ns;
        self.staged_bytes += o.staged_bytes;
        self.staged_allocs += o.staged_allocs;
        self.materialized_bytes += o.materialized_bytes;
        self.tie_pairs += o.tie_pairs;
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }
}

/// Per-reducer record/byte distribution of a job's shuffle — the skew
/// picture behind the paper's load-balance claims.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkewHistogram {
    /// Records routed to each reducer.
    pub records: Vec<u64>,
    /// Encoded bytes routed to each reducer.
    pub bytes: Vec<u64>,
}

impl SkewHistogram {
    /// An all-zero histogram over `num_reducers` reducers.
    pub fn new(num_reducers: usize) -> Self {
        SkewHistogram {
            records: vec![0; num_reducers],
            bytes: vec![0; num_reducers],
        }
    }

    /// Zero every bucket, keeping the reducer count (retry attempts
    /// restart their accounting).
    pub fn reset(&mut self) {
        self.records.iter_mut().for_each(|c| *c = 0);
        self.bytes.iter_mut().for_each(|c| *c = 0);
    }

    /// Sum another node's histogram into this one (bucket-wise).
    pub fn merge(&mut self, o: &SkewHistogram) {
        if self.records.len() < o.records.len() {
            self.records.resize(o.records.len(), 0);
            self.bytes.resize(o.bytes.len(), 0);
        }
        for (a, b) in self.records.iter_mut().zip(&o.records) {
            *a += b;
        }
        for (a, b) in self.bytes.iter_mut().zip(&o.bytes) {
            *a += b;
        }
    }

    /// Record-count imbalance: busiest reducer over the mean (1.0 =
    /// perfectly balanced; 0.0 when empty).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.records.iter().sum();
        let max = self.records.iter().copied().max().unwrap_or(0);
        if total == 0 || self.records.is_empty() {
            return 0.0;
        }
        max as f64 * self.records.len() as f64 / total as f64
    }
}

/// One flattened span of a [`WorkflowTrace`] (see
/// [`WorkflowTrace::spans`]): parent links by id, the deterministic
/// clock already laid out as absolute start offsets.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span id, unique within the trace (root is 0).
    pub id: u64,
    /// Parent span id (`None` for the root).
    pub parent: Option<u64>,
    /// Human-readable name.
    pub name: String,
    /// What the span describes.
    pub kind: SpanKind,
    /// Deterministic start offset from workflow start, in modeled ns.
    pub det_start_ns: u64,
    /// Deterministic duration in modeled ns.
    pub det_dur_ns: u64,
    /// Measured virtual-clock duration.
    pub virt: Duration,
    /// Measured on-CPU time (thread CPU clock, unscaled).
    pub cpu: Duration,
    /// Event counters.
    pub counters: Counters,
    /// Per-reducer skew (job spans only).
    pub skew: Option<SkewHistogram>,
    /// Logical workflow jobs this span stands for, when the physical
    /// plan fused them into one stage (job spans only; empty otherwise).
    pub covers: Vec<String>,
}

/// The assembled trace of one workflow run.
#[derive(Debug, Clone, Default)]
pub struct WorkflowTrace {
    /// Per-job traces in launch order.
    pub jobs: Vec<JobTrace>,
}

impl WorkflowTrace {
    /// Total measured virtual time — equals the workflow's reported
    /// makespan (phase times sum to job makespans, jobs run back to
    /// back).
    pub fn total_virt(&self) -> Duration {
        self.jobs.iter().map(JobTrace::virt).sum()
    }

    /// Total deterministic (modeled) time.
    pub fn total_det_ns(&self) -> u64 {
        self.jobs
            .iter()
            .map(JobTrace::det_ns)
            .fold(0, u64::saturating_add)
    }

    /// Workflow-level counter totals.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::default();
        for j in &self.jobs {
            c.add(&j.counters());
        }
        c
    }

    /// Number of simulated nodes that ran tasks (max task node + 1).
    pub fn num_nodes(&self) -> usize {
        self.jobs
            .iter()
            .flat_map(|j| &j.phases)
            .flat_map(|p| &p.tasks)
            .map(|t| t.node + 1)
            .max()
            .unwrap_or(0)
    }

    /// Flatten the trace into spans with ids, parent links, and absolute
    /// deterministic start offsets. Jobs lay out back to back on the
    /// deterministic clock; phases back to back within their job; tasks
    /// start at their phase's start (they run concurrently).
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        let mut next_id = 0u64;
        let mut alloc = || {
            let id = next_id;
            next_id += 1;
            id
        };
        let root = alloc();
        out.push(Span {
            id: root,
            parent: None,
            name: "workflow".to_string(),
            kind: SpanKind::Workflow,
            det_start_ns: 0,
            det_dur_ns: self.total_det_ns(),
            virt: self.total_virt(),
            cpu: self.jobs.iter().map(JobTrace::cpu).sum(),
            counters: self.counters(),
            skew: None,
            covers: Vec::new(),
        });
        let mut clock = 0u64;
        for job in &self.jobs {
            let jid = alloc();
            out.push(Span {
                id: jid,
                parent: Some(root),
                name: job.name.clone(),
                kind: SpanKind::Job,
                det_start_ns: clock,
                det_dur_ns: job.det_ns(),
                virt: job.virt(),
                cpu: job.cpu(),
                counters: job.counters(),
                skew: job.skew.clone(),
                covers: job.covers.clone(),
            });
            for phase in &job.phases {
                let pid = alloc();
                out.push(Span {
                    id: pid,
                    parent: Some(jid),
                    name: phase.kind.name().to_string(),
                    kind: SpanKind::Phase(phase.kind),
                    det_start_ns: clock,
                    det_dur_ns: phase.det_ns,
                    virt: phase.virt,
                    cpu: phase.cpu,
                    counters: phase.counters,
                    skew: None,
                    covers: Vec::new(),
                });
                for task in &phase.tasks {
                    let tid = alloc();
                    out.push(Span {
                        id: tid,
                        parent: Some(pid),
                        name: format!("{}@n{}", phase.kind.name(), task.node),
                        kind: SpanKind::Task { node: task.node },
                        det_start_ns: clock,
                        det_dur_ns: task.det_ns,
                        virt: task.virt,
                        cpu: task.cpu,
                        counters: task.counters,
                        skew: None,
                        covers: Vec::new(),
                    });
                }
                clock = clock.saturating_add(phase.det_ns);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(node: usize, det: u64) -> TaskTrace {
        TaskTrace {
            node,
            virt: Duration::from_millis(det),
            cpu: Duration::from_millis(det / 2),
            det_ns: det,
            counters: Counters {
                records_in: det,
                ..Counters::default()
            },
        }
    }

    fn two_job_trace() -> WorkflowTrace {
        let mk_job = |name: &str| JobTrace {
            name: name.to_string(),
            phases: vec![
                PhaseTrace::barrier(PhaseKind::Map, vec![task(0, 10), task(1, 30)]),
                PhaseTrace::solo(
                    PhaseKind::Shuffle,
                    Duration::from_millis(5),
                    5,
                    Counters {
                        shuffle_bytes: 100,
                        ..Counters::default()
                    },
                ),
                PhaseTrace::barrier(PhaseKind::Reduce, vec![task(0, 20), task(1, 15)]),
            ],
            skew: Some(SkewHistogram {
                records: vec![3, 1],
                bytes: vec![30, 10],
            }),
            covers: Vec::new(),
        };
        WorkflowTrace {
            jobs: vec![mk_job("a"), mk_job("b")],
        }
    }

    #[test]
    fn barrier_phase_takes_max_and_sums_counters() {
        let p = PhaseTrace::barrier(PhaseKind::Map, vec![task(0, 10), task(1, 30)]);
        assert_eq!(p.det_ns, 30);
        assert_eq!(p.virt, Duration::from_millis(30));
        assert_eq!(p.cpu, Duration::from_millis(5 + 15));
        assert_eq!(p.counters.records_in, 40);
        assert_eq!(p.tasks.len(), 2);
    }

    #[test]
    fn spans_form_a_tree_on_a_monotone_clock() {
        let t = two_job_trace();
        let spans = t.spans();
        // 1 workflow + 2 jobs * (1 job + 3 phases + 4 tasks).
        assert_eq!(spans.len(), 1 + 2 * 8);
        assert_eq!(spans[0].parent, None);
        for s in &spans[1..] {
            let p = s.parent.expect("non-root spans have parents");
            let parent = spans.iter().find(|x| x.id == p).expect("parent exists");
            assert!(parent.det_start_ns <= s.det_start_ns);
            assert!(
                parent.det_start_ns + parent.det_dur_ns >= s.det_start_ns + s.det_dur_ns,
                "span {} must nest within its parent",
                s.id
            );
        }
        // Job b starts where job a ends: 30 + 5 + 20.
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.det_start_ns, 55);
        assert_eq!(t.total_det_ns(), 110);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn skew_histogram_merges_and_measures_imbalance() {
        let mut a = SkewHistogram::new(2);
        a.records = vec![3, 1];
        a.bytes = vec![30, 10];
        let b = SkewHistogram {
            records: vec![1, 3],
            bytes: vec![10, 30],
        };
        a.merge(&b);
        assert_eq!(a.records, vec![4, 4]);
        assert!((a.imbalance() - 1.0).abs() < 1e-12);
        a.records = vec![8, 0];
        assert!((a.imbalance() - 2.0).abs() < 1e-12);
        a.reset();
        assert_eq!(a.records, vec![0, 0]);
        assert_eq!(SkewHistogram::new(0).imbalance(), 0.0);
    }

    #[test]
    fn counters_add_covers_every_field() {
        let one = Counters {
            records_in: 1,
            records_out: 1,
            pairs: 1,
            shuffle_bytes: 1,
            messages: 1,
            frames_checksummed: 1,
            retries: 1,
            crashes: 1,
            restore_bytes: 1,
            restore_messages: 1,
            retransmit_bytes: 1,
            retransmit_messages: 1,
            replication_bytes: 1,
            checkpoint_bytes: 1,
            restored_bytes: 1,
            backoff_ns: 1,
            staged_bytes: 1,
            staged_allocs: 1,
            materialized_bytes: 1,
            tie_pairs: 1,
        };
        let mut sum = Counters::default();
        assert!(sum.is_zero());
        sum.add(&one);
        sum.add(&one);
        assert_eq!(sum.records_in, 2);
        assert_eq!(sum.backoff_ns, 2);
        assert_eq!(sum.replication_bytes, 2);
        assert_eq!(sum.checkpoint_bytes, 2);
        assert_eq!(sum.restored_bytes, 2);
        assert_eq!(sum.staged_bytes, 2);
        assert_eq!(sum.staged_allocs, 2);
        assert_eq!(sum.materialized_bytes, 2);
        assert_eq!(sum.tie_pairs, 2);
        assert!(!sum.is_zero());
    }
}
