//! Trace assembly: per-task/phase/job records and the sink the engine
//! reports them through.

use std::time::Duration;

use crate::{Counters, PhaseKind, SkewHistogram, WorkflowTrace};

/// One node's task within a phase.
#[derive(Debug, Clone, Default)]
pub struct TaskTrace {
    /// The simulated node the task ran on.
    pub node: usize,
    /// Measured virtual time charged to the phase (includes retries,
    /// backoff, and straggler scaling).
    pub virt: Duration,
    /// Measured on-CPU time (thread CPU clock, before straggler
    /// scaling).
    pub cpu: Duration,
    /// Deterministic modeled duration.
    pub det_ns: u64,
    /// Deterministic counters.
    pub counters: Counters,
}

/// One BSP phase of a job.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// Which phase.
    pub kind: PhaseKind,
    /// Virtual time of the phase: the slowest task (tasks join at a
    /// barrier), or the modeled communication time for the shuffle.
    pub virt: Duration,
    /// Sum of the tasks' measured CPU time.
    pub cpu: Duration,
    /// Deterministic duration: slowest task on the modeled clock, or
    /// the modeled transfer time for the shuffle.
    pub det_ns: u64,
    /// Sum of the tasks' counters (plus phase-level traffic for the
    /// shuffle).
    pub counters: Counters,
    /// Per-node tasks, in node order; empty for sample/shuffle phases.
    pub tasks: Vec<TaskTrace>,
}

impl PhaseTrace {
    /// A compute phase closed by a barrier: virtual and deterministic
    /// time are the slowest task's, CPU and counters sum.
    pub fn barrier(kind: PhaseKind, tasks: Vec<TaskTrace>) -> Self {
        let virt = tasks.iter().map(|t| t.virt).max().unwrap_or_default();
        let det_ns = tasks.iter().map(|t| t.det_ns).max().unwrap_or(0);
        let cpu = tasks.iter().map(|t| t.cpu).sum();
        let mut counters = Counters::default();
        for t in &tasks {
            counters.add(&t.counters);
        }
        PhaseTrace {
            kind,
            virt,
            cpu,
            det_ns,
            counters,
            tasks,
        }
    }

    /// A phase with no per-node tasks (shuffle, sample): explicit times
    /// and counters.
    pub fn solo(kind: PhaseKind, virt: Duration, det_ns: u64, counters: Counters) -> Self {
        PhaseTrace {
            kind,
            virt,
            cpu: Duration::ZERO,
            det_ns,
            counters,
            tasks: Vec::new(),
        }
    }
}

/// One job's trace: its phases in execution order plus the per-reducer
/// skew its shuffle produced.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Job name (the workflow operator id).
    pub name: String,
    /// Phases in order (sample? map shuffle reduce, or a subset for
    /// jobs that bypass parts of the engine).
    pub phases: Vec<PhaseTrace>,
    /// Per-reducer record/byte distribution of the shuffle, when the
    /// job had one.
    pub skew: Option<SkewHistogram>,
    /// Logical workflow jobs this trace covers, when the physical stage
    /// fused more than one (empty for ordinary one-job stages). Keeps
    /// `--profile`/`--trace` truthful under fusion: a `sort+distr` span
    /// says it stands for both operators.
    pub covers: Vec<String>,
}

impl JobTrace {
    /// The job's virtual makespan: phases are joined by barriers, so
    /// their times sum.
    pub fn virt(&self) -> Duration {
        self.phases.iter().map(|p| p.virt).sum()
    }

    /// The job's deterministic makespan.
    pub fn det_ns(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.det_ns)
            .fold(0, u64::saturating_add)
    }

    /// Total measured CPU time across the job's tasks.
    pub fn cpu(&self) -> Duration {
        self.phases.iter().map(|p| p.cpu).sum()
    }

    /// Counter totals across the job's phases.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::default();
        for p in &self.phases {
            c.add(&p.counters);
        }
        c
    }
}

/// Where the engine reports trace records. Implementations must be
/// `Send + Sync` because the cluster (which owns the sink) is shared by
/// reference with phase workers; all sink *calls* happen on the driver
/// thread at phase barriers, in deterministic order.
pub trait TraceSink: Send + Sync {
    /// Whether collection is on. The engine checks this once per job
    /// and skips all bookkeeping when false.
    fn enabled(&self) -> bool {
        false
    }

    /// Report a completed job (called after recovery accounting is
    /// final, so phase times sum to the job's reported makespan).
    fn record_job(&mut self, _job: JobTrace) {}

    /// Report a pre-job sampling pass; it becomes the `sample` phase of
    /// the next recorded job.
    fn record_sample(&mut self, _sample: PhaseTrace) {}

    /// Annotate the most recently recorded job with the logical jobs it
    /// covers (fused stages call this right after the engine records the
    /// job). No-op for sinks that do not collect.
    fn annotate_last_job(&mut self, _covers: Vec<String>) {}

    /// Append an extra phase (checkpoint publication, resume restore) to
    /// the most recently recorded job. No-op for sinks that do not
    /// collect.
    fn append_phase_last_job(&mut self, _phase: PhaseTrace) {}

    /// Consume everything recorded and produce the assembled trace;
    /// `None` for sinks that do not collect.
    fn finish(&mut self) -> Option<WorkflowTrace> {
        None
    }

    /// Discard anything recorded so far without producing a trace — the
    /// per-request handoff for resident engines (`papar serve`): a sink
    /// that stays installed across requests is reset at each request
    /// boundary so one request's spans can never bleed into the next
    /// report. No-op for sinks that do not collect.
    fn reset(&mut self) {}
}

/// The default sink: disabled, records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// A sink that assembles the full [`WorkflowTrace`].
#[derive(Debug, Default)]
pub struct Collector {
    jobs: Vec<JobTrace>,
    /// A sampling pass waiting to be attached to the next job.
    pending_sample: Option<PhaseTrace>,
}

impl Collector {
    /// An empty, enabled collector.
    pub fn new() -> Self {
        Collector::default()
    }
}

impl TraceSink for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn record_job(&mut self, mut job: JobTrace) {
        if let Some(sample) = self.pending_sample.take() {
            job.phases.insert(0, sample);
        }
        self.jobs.push(job);
    }

    fn record_sample(&mut self, sample: PhaseTrace) {
        self.pending_sample = Some(sample);
    }

    fn annotate_last_job(&mut self, covers: Vec<String>) {
        if let Some(job) = self.jobs.last_mut() {
            job.covers = covers;
        }
    }

    fn append_phase_last_job(&mut self, phase: PhaseTrace) {
        if let Some(job) = self.jobs.last_mut() {
            job.phases.push(phase);
        }
    }

    fn finish(&mut self) -> Option<WorkflowTrace> {
        let mut jobs = std::mem::take(&mut self.jobs);
        // A sampling pass with no job after it (failed run) still shows
        // up rather than vanishing.
        if let Some(sample) = self.pending_sample.take() {
            jobs.push(JobTrace {
                name: "(sample)".to_string(),
                phases: vec![sample],
                skew: None,
                covers: Vec::new(),
            });
        }
        Some(WorkflowTrace { jobs })
    }

    fn reset(&mut self) {
        self.jobs.clear();
        self.pending_sample = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_empty() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record_job(JobTrace {
            name: "x".into(),
            phases: Vec::new(),
            skew: None,
            covers: Vec::new(),
        });
        s.annotate_last_job(vec!["a".into()]);
        assert!(s.finish().is_none());
    }

    #[test]
    fn collector_reset_discards_partial_request_state() {
        let mut c = Collector::new();
        c.record_sample(PhaseTrace::solo(
            PhaseKind::Sample,
            Duration::from_millis(1),
            1_000_000,
            Counters::default(),
        ));
        c.record_job(JobTrace {
            name: "req1".into(),
            phases: Vec::new(),
            skew: None,
            covers: Vec::new(),
        });
        // Request boundary: the previous request's spans must not bleed
        // into the next report.
        c.reset();
        let trace = c.finish().expect("collector always yields a trace");
        assert!(trace.jobs.is_empty(), "{:?}", trace.jobs);
    }

    #[test]
    fn collector_prepends_pending_sample_to_next_job() {
        let mut c = Collector::new();
        assert!(c.enabled());
        c.record_sample(PhaseTrace::solo(
            PhaseKind::Sample,
            Duration::from_millis(2),
            2_000_000,
            Counters::default(),
        ));
        c.record_job(JobTrace {
            name: "sort".into(),
            phases: vec![PhaseTrace::barrier(PhaseKind::Map, vec![])],
            skew: None,
            covers: Vec::new(),
        });
        c.record_job(JobTrace {
            name: "distr".into(),
            phases: Vec::new(),
            skew: None,
            covers: Vec::new(),
        });
        c.annotate_last_job(vec!["sort".into(), "distr".into()]);
        let t = c.finish().unwrap();
        assert_eq!(t.jobs.len(), 2);
        assert_eq!(t.jobs[0].phases[0].kind, PhaseKind::Sample);
        assert_eq!(t.jobs[0].virt(), Duration::from_millis(2));
        assert!(t.jobs[1].phases.is_empty());
        assert!(t.jobs[0].covers.is_empty());
        assert_eq!(
            t.jobs[1].covers,
            vec!["sort".to_string(), "distr".to_string()]
        );
    }

    #[test]
    fn orphan_sample_survives_as_its_own_job() {
        let mut c = Collector::new();
        c.record_sample(PhaseTrace::solo(
            PhaseKind::Sample,
            Duration::ZERO,
            7,
            Counters::default(),
        ));
        let t = c.finish().unwrap();
        assert_eq!(t.jobs.len(), 1);
        assert_eq!(t.jobs[0].name, "(sample)");
        assert_eq!(t.total_det_ns(), 7);
    }
}
