//! Human and machine renderings of a workflow trace.
//!
//! [`render_profile`] prints the per-phase *virtual-time* breakdown the
//! paper's Figure 13 stacked bars show — measured times, summing
//! exactly to the reported makespan. [`summary_json`] is the compact
//! machine-readable form the bench crate embeds in its `BENCH_*.json`
//! reports.

use std::time::Duration;

use crate::{JobTrace, PhaseKind, WorkflowTrace};

/// Render the per-phase virtual-time breakdown as a fixed-width table.
/// Phase rows within a job sum to the job's makespan and the total row
/// equals the workflow's reported makespan.
pub fn render_profile(trace: &WorkflowTrace) -> String {
    let total = trace.total_virt();
    let mut out = String::new();
    out.push_str("workflow profile (virtual time; phases sum to the makespan)\n");
    out.push_str(&format!(
        "{:<24} {:<8} {:>12} {:>7} {:>12} {:>12} {:>14} {:>12} {:>10}\n",
        "job", "phase", "time", "%", "cpu", "records", "bytes moved", "staged", "allocs"
    ));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(24 + 1 + 8 + 1 + 12 + 1 + 7 + 1 + 12 + 1 + 12 + 1 + 14 + 1 + 12 + 1 + 10)
    ));
    for job in &trace.jobs {
        for phase in &job.phases {
            let c = &phase.counters;
            let records = match phase.kind {
                PhaseKind::Sample | PhaseKind::Map | PhaseKind::Restore => c.records_in,
                PhaseKind::Shuffle => c.pairs,
                PhaseKind::Reduce | PhaseKind::Checkpoint => c.records_out,
            };
            let bytes = c.shuffle_bytes
                + c.restore_bytes
                + c.retransmit_bytes
                + c.replication_bytes
                + c.checkpoint_bytes
                + c.restored_bytes;
            out.push_str(&format!(
                "{:<24} {:<8} {:>12} {:>6.1}% {:>12} {:>12} {:>14} {:>12} {:>10}\n",
                truncate(&job.name, 24),
                phase.kind.name(),
                fmt_dur(phase.virt),
                percent(phase.virt, total),
                fmt_dur(phase.cpu),
                records,
                bytes,
                c.staged_bytes,
                c.staged_allocs,
            ));
        }
        if let Some(skew) = &job.skew {
            out.push_str(&format!(
                "{:<24} └ skew: imbalance {:.2} over {} reducers\n",
                "",
                skew.imbalance(),
                skew.records.len()
            ));
        }
        if !job.covers.is_empty() {
            out.push_str(&format!(
                "{:<24} └ covers: fused logical jobs {}\n",
                "",
                job.covers.join(", ")
            ));
        }
    }
    out.push_str(&format!(
        "{:<24} {:<8} {:>12} {:>6.1}%\n",
        "total",
        "",
        fmt_dur(total),
        100.0 * f64::from(u8::from(total > Duration::ZERO))
    ));
    let c = trace.counters();
    if c.crashes > 0 || c.retries > 0 {
        out.push_str(&format!(
            "faults: {} injected, {} task retries, {} backoff, {} B restored, {} B retransmitted\n",
            c.crashes,
            c.retries,
            fmt_dur(Duration::from_nanos(c.backoff_ns)),
            c.restore_bytes,
            c.retransmit_bytes,
        ));
    }
    if c.staged_bytes > 0 {
        out.push_str(&format!(
            "hot path: {} B staged for sort, {} heap allocs, {} B materialized, {} tie pairs\n",
            c.staged_bytes, c.staged_allocs, c.materialized_bytes, c.tie_pairs,
        ));
    }
    out
}

/// Static `[lo, hi]` bounds of one job's counters, as computed by an
/// abstract interpretation *before* the run (`papar_core::bounds`; this
/// crate sits below the planner, so the caller flattens the intervals).
/// `hi == u64::MAX` means unbounded and renders as `?`.
#[derive(Debug, Clone)]
pub struct StaticBound {
    /// Job name, matched against [`JobTrace::name`].
    pub name: String,
    /// Records entering the map phase.
    pub records_in: (u64, u64),
    /// Records leaving the reduce phase.
    pub records_out: (u64, u64),
    /// Key-value pairs shuffled.
    pub pairs: (u64, u64),
    /// Member records on the busiest reducer.
    pub max_load: (u64, u64),
}

/// Render a bound-vs-observed table: each traced job's counters next to
/// the static interval that predicted them, flagging any escape. Jobs
/// without a matching bound (and bounds without a traced job) are
/// skipped — custom operators interpret to ⊤ and never flag.
pub fn render_bounds_check(trace: &WorkflowTrace, bounds: &[StaticBound]) -> String {
    let fmt_bound = |(lo, hi): (u64, u64)| -> String {
        if lo == hi {
            format!("{lo}")
        } else if hi == u64::MAX {
            format!("[{lo}, ?]")
        } else {
            format!("[{lo}, {hi}]")
        }
    };
    let mut out = String::new();
    out.push_str("static bounds vs observed (debug builds assert containment)\n");
    out.push_str(&format!(
        "{:<24} {:<12} {:>12} {:>16} {:>8}\n",
        "job", "counter", "observed", "bound", ""
    ));
    for job in &trace.jobs {
        let Some(b) = bounds.iter().find(|b| b.name == job.name) else {
            continue;
        };
        let mut observed = Counters4::default();
        for phase in &job.phases {
            let c = &phase.counters;
            match phase.kind {
                PhaseKind::Map => {
                    observed.records_in += c.records_in;
                    observed.pairs += c.pairs;
                }
                PhaseKind::Reduce => observed.records_out += c.records_out,
                _ => {}
            }
        }
        let max_load = job
            .skew
            .as_ref()
            .and_then(|s| s.records.iter().copied().max());
        let mut rows: Vec<(&str, u64, (u64, u64))> = vec![
            ("records_in", observed.records_in, b.records_in),
            ("pairs", observed.pairs, b.pairs),
            ("records_out", observed.records_out, b.records_out),
        ];
        if let Some(ml) = max_load {
            rows.push(("max_load", ml, b.max_load));
        }
        for (i, (counter, obs, bound)) in rows.iter().enumerate() {
            let ok = bound.0 <= *obs && *obs <= bound.1;
            out.push_str(&format!(
                "{:<24} {:<12} {:>12} {:>16} {:>8}\n",
                if i == 0 {
                    truncate(&job.name, 24)
                } else {
                    String::new()
                },
                counter,
                obs,
                fmt_bound(*bound),
                if ok { "ok" } else { "ESCAPED" },
            ));
        }
    }
    out
}

#[derive(Default)]
struct Counters4 {
    records_in: u64,
    records_out: u64,
    pairs: u64,
}

/// What an adaptive planning pass predicted for one profiled job (this
/// crate sits below the planner, so the caller flattens its rationale
/// into these plain numbers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Prediction {
    /// Modeled end-to-end workflow cost.
    pub cost_ns: u64,
    /// Predicted busiest-reducer record count for the profiled job.
    pub max_load: u64,
    /// Predicted total shuffled bytes across all stages.
    pub shuffle_bytes: u64,
}

/// Render the predicted-vs-observed row of an adaptive run: the cost
/// model's prediction next to the trace's actuals, with the ratio that
/// tells the user whether the model (and hence the chosen plan) was
/// honest. `job` names the profiled job; its observed max load comes
/// from the skew histogram of the matching traced job (fused stages
/// match by prefix, e.g. `sort+distr` covers `sort`).
pub fn render_prediction_check(trace: &WorkflowTrace, job: &str, p: &Prediction) -> String {
    let observed_virt = trace.total_virt().as_nanos() as u64;
    let observed_bytes: u64 = trace
        .jobs
        .iter()
        .flat_map(|j| &j.phases)
        .map(|ph| ph.counters.shuffle_bytes)
        .sum();
    let observed_load = trace
        .jobs
        .iter()
        .filter(|j| j.name == job || j.name.starts_with(&format!("{job}+")))
        .filter_map(|j| j.skew.as_ref())
        .filter_map(|s| s.records.iter().copied().max())
        .max();
    let ratio = |pred: u64, obs: u64| -> String {
        if pred == 0 {
            "-".to_string()
        } else {
            format!("{:.2}x", obs as f64 / pred as f64)
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "adaptive prediction vs observed (profiled job '{job}')\n"
    ));
    out.push_str(&format!(
        "{:<16} {:>16} {:>16} {:>8}\n",
        "metric", "predicted", "observed", "ratio"
    ));
    out.push_str(&format!(
        "{:<16} {:>16} {:>16} {:>8}\n",
        "cost",
        fmt_dur(Duration::from_nanos(p.cost_ns)),
        fmt_dur(Duration::from_nanos(observed_virt)),
        ratio(p.cost_ns, observed_virt),
    ));
    if let Some(load) = observed_load {
        out.push_str(&format!(
            "{:<16} {:>16} {:>16} {:>8}\n",
            "max reducer load", p.max_load, load, ratio(p.max_load, load),
        ));
    }
    out.push_str(&format!(
        "{:<16} {:>16} {:>16} {:>8}\n",
        "shuffled bytes",
        p.shuffle_bytes,
        observed_bytes,
        ratio(p.shuffle_bytes, observed_bytes),
    ));
    out
}

/// Compact (single-line) machine-readable summary of a trace, suitable
/// for embedding in a larger JSON report. Integer fields only; skew
/// imbalance is reported in thousandths.
pub fn summary_json(trace: &WorkflowTrace) -> String {
    let mut s = String::from("{");
    s.push_str(&format!(
        "\"total_virt_ns\":{},\"total_det_ns\":{},\"jobs\":[",
        trace.total_virt().as_nanos(),
        trace.total_det_ns()
    ));
    for (i, job) in trace.jobs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_job(&mut s, job);
    }
    s.push_str("]}");
    s
}

fn push_job(s: &mut String, job: &JobTrace) {
    s.push_str(&format!(
        "{{\"name\":\"{}\",\"virt_ns\":{},\"det_ns\":{}",
        esc(&job.name),
        job.virt().as_nanos(),
        job.det_ns()
    ));
    if let Some(skew) = &job.skew {
        s.push_str(&format!(
            ",\"reducers\":{},\"skew_imbalance_milli\":{}",
            skew.records.len(),
            (skew.imbalance() * 1000.0).round() as u64
        ));
    }
    if !job.covers.is_empty() {
        s.push_str(",\"covers\":[");
        for (i, name) in job.covers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", esc(name)));
        }
        s.push(']');
    }
    s.push_str(",\"phases\":[");
    for (i, p) in job.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let c = &p.counters;
        s.push_str(&format!(
            "{{\"kind\":\"{}\",\"virt_ns\":{},\"det_ns\":{},\"cpu_ns\":{},\"tasks\":{},\
             \"records_in\":{},\"records_out\":{},\"pairs\":{},\"shuffle_bytes\":{},\
             \"retries\":{},\"crashes\":{},\"restore_bytes\":{},\"retransmit_bytes\":{},\
             \"replication_bytes\":{},\"checkpoint_bytes\":{},\"restored_bytes\":{},\
             \"staged_bytes\":{},\"staged_allocs\":{},\"materialized_bytes\":{},\
             \"tie_pairs\":{}}}",
            p.kind.name(),
            p.virt.as_nanos(),
            p.det_ns,
            p.cpu.as_nanos(),
            p.tasks.len(),
            c.records_in,
            c.records_out,
            c.pairs,
            c.shuffle_bytes,
            c.retries,
            c.crashes,
            c.restore_bytes,
            c.retransmit_bytes,
            c.replication_bytes,
            c.checkpoint_bytes,
            c.restored_bytes,
            c.staged_bytes,
            c.staged_allocs,
            c.materialized_bytes,
            c.tie_pairs,
        ));
    }
    s.push_str("]}");
}

fn percent(part: Duration, total: Duration) -> f64 {
    if total.is_zero() {
        0.0
    } else {
        100.0 * part.as_secs_f64() / total.as_secs_f64()
    }
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// Adaptive duration formatting: µs below a millisecond, ms below a
/// second, seconds above.
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn esc(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counters, PhaseTrace, SkewHistogram, TaskTrace};

    fn trace() -> WorkflowTrace {
        WorkflowTrace {
            jobs: vec![JobTrace {
                name: "blast.sort".to_string(),
                phases: vec![
                    PhaseTrace::barrier(
                        PhaseKind::Map,
                        vec![TaskTrace {
                            node: 0,
                            virt: Duration::from_millis(6),
                            cpu: Duration::from_millis(5),
                            det_ns: 6_000_000,
                            counters: Counters {
                                records_in: 100,
                                pairs: 100,
                                ..Counters::default()
                            },
                        }],
                    ),
                    PhaseTrace::solo(
                        PhaseKind::Shuffle,
                        Duration::from_millis(4),
                        4_000_000,
                        Counters {
                            pairs: 100,
                            shuffle_bytes: 4096,
                            ..Counters::default()
                        },
                    ),
                ],
                skew: Some(SkewHistogram {
                    records: vec![60, 40],
                    bytes: vec![600, 400],
                }),
                covers: vec!["sort".to_string(), "distr".to_string()],
            }],
        }
    }

    #[test]
    fn profile_total_matches_makespan() {
        let t = trace();
        let rendered = render_profile(&t);
        assert!(rendered.contains("blast.sort"));
        assert!(rendered.contains("map"));
        assert!(rendered.contains("shuffle"));
        assert!(rendered.contains("10.000 ms")); // 6 + 4, the makespan
        assert!(rendered.contains("100.0%"));
        assert!(rendered.contains("skew: imbalance 1.20"));
        assert!(rendered.contains("covers: fused logical jobs sort, distr"));
    }

    #[test]
    fn bounds_check_flags_escapes_and_renders_intervals() {
        let t = trace();
        let bounds = vec![StaticBound {
            name: "blast.sort".to_string(),
            records_in: (100, 100),
            records_out: (0, u64::MAX),
            pairs: (0, 100),
            max_load: (50, 100),
        }];
        let rendered = render_bounds_check(&t, &bounds);
        assert!(rendered.contains("blast.sort"), "{rendered}");
        // Exact, capped, and unbounded forms all render.
        assert!(rendered.contains(" 100"), "{rendered}");
        assert!(rendered.contains("[0, ?]"), "{rendered}");
        // Skew max 60 lies inside [50, 100].
        assert!(rendered.contains("max_load"), "{rendered}");
        assert!(!rendered.contains("ESCAPED"), "{rendered}");
        // Shrink a bound below the observation: the row is flagged.
        let tight = vec![StaticBound {
            pairs: (0, 10),
            ..bounds[0].clone()
        }];
        let rendered = render_bounds_check(&t, &tight);
        assert!(rendered.contains("ESCAPED"), "{rendered}");
        // Jobs with no matching bound are skipped silently.
        assert!(render_bounds_check(&t, &[]).lines().count() <= 2);
    }

    #[test]
    fn prediction_check_reports_ratios_and_matches_fused_names() {
        let t = trace();
        let p = Prediction {
            cost_ns: 5_000_000,
            max_load: 50,
            shuffle_bytes: 2048,
        };
        // The traced job is `blast.sort`; profiled job `blast.sort`
        // matches exactly.
        let rendered = render_prediction_check(&t, "blast.sort", &p);
        assert!(rendered.contains("adaptive prediction vs observed"), "{rendered}");
        assert!(rendered.contains("max reducer load"), "{rendered}");
        assert!(rendered.contains("2.00x"), "{rendered}"); // 10 ms / 5 ms
        assert!(rendered.contains("1.20x"), "{rendered}"); // 60 / 50
        // A zero prediction renders `-` instead of dividing by zero.
        let rendered = render_prediction_check(&t, "blast.sort", &Prediction::default());
        assert!(rendered.contains('-'), "{rendered}");
        // A job with no skew histogram match omits the load row.
        let rendered = render_prediction_check(&t, "other", &p);
        assert!(!rendered.contains("max reducer load"), "{rendered}");
    }

    #[test]
    fn empty_trace_renders_without_dividing_by_zero() {
        let rendered = render_profile(&WorkflowTrace::default());
        assert!(rendered.contains("total"));
        assert!(rendered.contains("0.0%"));
    }

    #[test]
    fn summary_json_is_balanced_and_integer_only() {
        let json = summary_json(&trace());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"total_virt_ns\":10000000"));
        assert!(json.contains("\"skew_imbalance_milli\":1200"));
        assert!(json.contains("\"covers\":[\"sort\",\"distr\"]"));
        assert!(json.contains("\"kind\":\"map\""));
        assert!(json.contains("\"shuffle_bytes\":4096"));
        assert!(!json.contains('\n'));
    }
}
