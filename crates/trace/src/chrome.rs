//! Chrome trace-event JSON export (`chrome://tracing`, Perfetto).
//!
//! The export is stamped with the *deterministic* clock only — modeled
//! nanoseconds derived from record/pair/byte counters — and every
//! number is formatted with integer arithmetic, so the emitted bytes
//! are identical across runs and thread counts. Timestamps are
//! microseconds (the trace-event unit) with three fixed decimals.

use crate::{Span, SpanKind, WorkflowTrace};

/// Render a workflow trace as a Chrome trace-event JSON document.
///
/// One complete (`"ph":"X"`) event per span: the workflow on the driver
/// track (`tid` 0), jobs and phases likewise, per-node tasks on one
/// track per simulated node (`tid` = node + 1). Span ids and parent
/// links ride in `args` so the tree survives the flat event list.
pub fn to_chrome_json(trace: &WorkflowTrace) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\"traceEvents\":[\n");
    // Metadata: name the process and the per-node tracks.
    push_meta(&mut s, 0, "process_name", "papar simulated cluster");
    push_meta(&mut s, 0, "thread_name", "driver");
    for node in 0..trace.num_nodes() {
        push_meta(&mut s, node + 1, "thread_name", &format!("node {node}"));
    }
    let spans = trace.spans();
    for (i, span) in spans.iter().enumerate() {
        push_span(&mut s, span);
        if i + 1 < spans.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    s
}

fn push_meta(s: &mut String, tid: usize, name: &str, value: &str) {
    s.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"{name}\",\"args\":{{\"name\":\"{}\"}}}},\n",
        esc(value)
    ));
}

fn push_span(s: &mut String, span: &Span) {
    let (cat, tid) = match span.kind {
        SpanKind::Workflow => ("workflow", 0),
        SpanKind::Job => ("job", 0),
        SpanKind::Phase(_) => ("phase", 0),
        SpanKind::Task { node } => ("task", node + 1),
    };
    s.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{",
        esc(&span.name),
        micros(span.det_start_ns),
        micros(span.det_dur_ns),
    ));
    s.push_str(&format!("\"span\":{}", span.id));
    s.push_str(&format!(
        ",\"parent\":{}",
        span.parent.map(|p| p as i64).unwrap_or(-1)
    ));
    let c = &span.counters;
    for (key, v) in [
        ("records_in", c.records_in),
        ("records_out", c.records_out),
        ("pairs", c.pairs),
        ("shuffle_bytes", c.shuffle_bytes),
        ("messages", c.messages),
        ("frames_checksummed", c.frames_checksummed),
        ("retries", c.retries),
        ("crashes", c.crashes),
        ("restore_bytes", c.restore_bytes),
        ("restore_messages", c.restore_messages),
        ("retransmit_bytes", c.retransmit_bytes),
        ("retransmit_messages", c.retransmit_messages),
        ("replication_bytes", c.replication_bytes),
        ("checkpoint_bytes", c.checkpoint_bytes),
        ("restored_bytes", c.restored_bytes),
        ("backoff_ns", c.backoff_ns),
        ("staged_bytes", c.staged_bytes),
        ("staged_allocs", c.staged_allocs),
        ("materialized_bytes", c.materialized_bytes),
        ("tie_pairs", c.tie_pairs),
    ] {
        s.push_str(&format!(",\"{key}\":{v}"));
    }
    if let Some(skew) = &span.skew {
        push_u64_array(s, "skew_records", &skew.records);
        push_u64_array(s, "skew_bytes", &skew.bytes);
    }
    if !span.covers.is_empty() {
        s.push_str(",\"covers\":[");
        for (i, name) in span.covers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", esc(name)));
        }
        s.push(']');
    }
    s.push_str("}}");
}

fn push_u64_array(s: &mut String, key: &str, values: &[u64]) {
    s.push_str(&format!(",\"{key}\":["));
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
}

/// Nanoseconds as a microsecond JSON number with exactly three
/// decimals, via integer arithmetic (no float formatting anywhere near
/// the byte-identical output).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Minimal JSON string escaping for span names (operator ids may carry
/// arbitrary XML-sourced characters).
fn esc(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counters, JobTrace, PhaseKind, PhaseTrace, TaskTrace};
    use std::time::Duration;

    fn sample_trace() -> WorkflowTrace {
        WorkflowTrace {
            jobs: vec![JobTrace {
                name: "sort \"x\"".to_string(),
                phases: vec![
                    PhaseTrace::barrier(
                        PhaseKind::Map,
                        vec![
                            TaskTrace {
                                node: 0,
                                det_ns: 1_234_567,
                                ..TaskTrace::default()
                            },
                            TaskTrace {
                                node: 1,
                                det_ns: 2_000_000,
                                ..TaskTrace::default()
                            },
                        ],
                    ),
                    PhaseTrace::solo(
                        PhaseKind::Shuffle,
                        Duration::ZERO,
                        500,
                        Counters {
                            shuffle_bytes: 42,
                            ..Counters::default()
                        },
                    ),
                ],
                skew: Some(crate::SkewHistogram {
                    records: vec![5, 3],
                    bytes: vec![50, 30],
                }),
                covers: vec!["sort".to_string(), "distr".to_string()],
            }],
        }
    }

    #[test]
    fn micros_formats_with_integer_math() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn export_is_structurally_valid_and_covers_spans() {
        let json = to_chrome_json(&sample_trace());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Escaped job name, all three span categories, skew arrays.
        assert!(json.contains("sort \\\"x\\\""));
        for cat in [
            "\"cat\":\"workflow\"",
            "\"cat\":\"job\"",
            "\"cat\":\"phase\"",
            "\"cat\":\"task\"",
        ] {
            assert!(json.contains(cat), "missing {cat}");
        }
        assert!(json.contains("\"skew_records\":[5,3]"));
        // The fused job span names the logical jobs it stands for.
        assert!(json.contains("\"covers\":[\"sort\",\"distr\"]"));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1234.567"));
        // Per-node tracks get named.
        assert!(json.contains("\"name\":\"node 1\""));
    }

    #[test]
    fn export_is_reproducible() {
        let a = to_chrome_json(&sample_trace());
        let b = to_chrome_json(&sample_trace());
        assert_eq!(a, b);
    }
}
