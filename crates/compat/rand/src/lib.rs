//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the rand 0.8 API it uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! integer and float ranges. The generator is SplitMix64 — not rand's
//! ChaCha-based StdRng, but deterministic, well-distributed, and more than
//! adequate for synthetic data generation. Streams differ from upstream
//! rand; every consumer in this workspace only requires determinism for a
//! fixed seed, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their "natural" domain by
/// [`Rng::gen`] (full width for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform double in `[0, 1)` from the top 53 bits of a word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Wrapping arithmetic in u64 handles signed ranges: the
                // two's-complement difference is the true span for every
                // integer type at most 64 bits wide.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = if span == 0 {
                    rng.next_u64() // span covers the whole u64 domain
                } else {
                    rng.next_u64() % span
                };
                self.start.wrapping_add(off as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let off = if span == 0 {
                    rng.next_u64() // full-domain inclusive range
                } else {
                    rng.next_u64() % span
                };
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for rand's
    /// `StdRng`: same trait surface, different (but fixed) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_covers_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            if rng.gen::<f64>() < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "lo={lo} hi={hi}");
    }
}
