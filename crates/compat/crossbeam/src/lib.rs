//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of crossbeam it actually uses: `thread::scope` with
//! panic-capturing semantics, implemented on top of `std::thread::scope`
//! (stable since Rust 1.63). Only the API this repository calls is
//! provided.

pub mod thread {
    /// Result of a scope: `Err` carries the payload of the first panicking
    /// child thread, matching crossbeam's contract (std's scope would
    /// instead resume the panic on the parent).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. Crossbeam passes the scope itself to the
        /// closure; every call site in this workspace ignores it (`|_| ...`),
        /// so the stand-in passes `()`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Run `f` with a scope in which borrowing, non-'static threads can be
    /// spawned; all are joined before `scope` returns. A child panic is
    /// reported as `Err` rather than propagated.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let mut parts = vec![vec![3u32, 1], vec![2, 4]];
        super::thread::scope(|s| {
            for part in &mut parts {
                s.spawn(move |_| part.sort());
            }
        })
        .unwrap();
        assert_eq!(parts, vec![vec![1, 3], vec![2, 4]]);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
