//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal benchmark harness with criterion's API shape: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//! It runs each benchmark `sample_size` times and prints mean wall-clock
//! time — no statistics, no reports, but `cargo bench` compiles and runs.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, shown as
/// `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// How per-iteration setup output is batched in `iter_batched`. The
/// stand-in runs one setup per iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("{label:<48} (no iterations)");
    } else {
        let mean = b.elapsed / b.iters as u32;
        println!("{label:<48} mean {mean:>12.3?}  ({} iters)", b.iters);
    }
}

/// Re-export so `std::hint::black_box` call sites written as
/// `criterion::black_box` also work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut count = 0;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("g", 2), &3, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(count, 2);
    }
}
