//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the proptest API subset its tests use: the `proptest!` macro,
//! `prop_assert*` / `prop_assume!`, `prop_oneof!`, `any::<T>()`, string
//! regex strategies, ranges, tuples, `prop::collection::vec`,
//! `prop::char::range`, and the `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed` combinators.
//!
//! Differences from upstream: no shrinking (a failure reports the case
//! number and the seed is derived from the test name, so failures are
//! reproducible), and the default case count is 64 rather than 256.

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    /// `prop::collection::vec`, `prop::char::range`, ... — upstream
    /// proptest re-exports the crate root under this name.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each function body runs once per generated
/// case; `prop_assert*` failures abort the test with the failing case
/// index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __case: u32 = 0;
                let mut __attempts: u32 = 0;
                while __case < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases.saturating_mul(16).saturating_add(64) {
                        panic!(
                            "proptest {}: too many inputs rejected by prop_assume!",
                            stringify!($name)
                        );
                    }
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __case += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __case,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a boolean property; on failure the current case fails with the
/// condition (or formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal (by reference, so operands are not
/// consumed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            __l, __r, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Assert two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left != right)`\n  both: `{:?}`",
                            __l
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                            __l, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (retried with fresh input) when a
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategy arms, all producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges honour their bounds.
        #[test]
        fn range_in_bounds(x in 3usize..17, y in -5i64..6) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..6).contains(&y));
        }

        /// Vec strategies honour length and element bounds, and tuples
        /// compose.
        #[test]
        fn vec_and_tuple(v in prop::collection::vec((0u32..9, "[a-c]{1,2}"), 0..10)) {
            prop_assert!(v.len() < 10);
            for (n, s) in &v {
                prop_assert!(*n < 9);
                prop_assert!(!s.is_empty() && s.len() <= 2);
            }
        }

        /// prop_oneof mixes arms; filter and map compose.
        #[test]
        fn oneof_filter_map(c in prop_oneof![
            Just('x'),
            prop::char::range('a', 'c'),
            (0u8..4).prop_filter("nonzero", |v| *v != 0).prop_map(|v| (b'0' + v) as char),
        ]) {
            prop_assert!(matches!(c, 'x' | 'a'..='c' | '1'..='3'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Inner-attribute config form compiles and limits cases.
        #[test]
        fn configured(_x in 0u8..3) {
            prop_assert!(true);
        }
    }

    #[test]
    fn assume_rejects_and_retries() {
        proptest! {
            fn inner(x in 0u32..100) {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
    }
}
