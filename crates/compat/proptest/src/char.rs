//! Character strategies (`prop::char::range`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive character range strategy.
pub struct CharRange {
    lo: u32,
    hi: u32,
}

pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range");
    CharRange {
        lo: lo as u32,
        hi: hi as u32,
    }
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            let v = self.lo + rng.below(u64::from(self.hi - self.lo) + 1) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}
