//! The `Strategy` trait and combinators: how test inputs are generated.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    /// Recursive strategies, by unrolling: depth `d` alternates between the
    /// leaf and one more application of `recurse`, so generation always
    /// terminates after at most `d` nested layers.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1024 consecutive generated values",
            self.whence
        );
    }
}

/// Uniform choice among several strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Bias 1/8 of draws to the endpoints, where bugs live.
                let off = match rng.next_u64() % 16 {
                    0 => 0,
                    1 => span.wrapping_sub(1),
                    _ if span == 0 => rng.next_u64(),
                    _ => rng.below(span),
                };
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// String strategies from a regex-subset pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
