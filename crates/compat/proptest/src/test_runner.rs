//! Test-runner state: configuration, case errors, and the deterministic
//! RNG strategies draw from.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; 64 keeps whole-workflow
        // properties fast while still exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input did not satisfy a `prop_assume!` precondition; the case
    /// is retried with fresh input rather than counted as a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic SplitMix64 stream, seeded from the test's name so every
/// property explores a fixed, reproducible input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
