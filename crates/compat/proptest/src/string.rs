//! String generation from the regex subset used by `&str` strategies.
//!
//! Supported syntax: literal characters, character classes `[...]` with
//! ranges and literal `-` at either end, the `\PC` (non-control) escape,
//! backslash-escaped literals, and `{m}` / `{m,n}` counted repetition plus
//! `?`, `*`, `+` with a bounded unrolling for the unbounded forms.

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    /// `(lo, hi)` inclusive code-point ranges; single chars are `(c, c)`.
    Class(Vec<(u32, u32)>),
    /// `\PC`: any non-control character.
    NonControl,
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

/// A few non-ASCII, non-control characters so `\PC` exercises multi-byte
/// UTF-8 paths.
const NON_ASCII: &[char] = &['\u{e9}', '\u{3bb}', '\u{4e2d}', '\u{2211}', '\u{1f600}'];

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let body = &chars[i + 1..close];
                i = close + 1;
                Atom::Class(parse_class(body, pattern))
            }
            '\\' => {
                let esc = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                if esc == 'P' || esc == 'p' {
                    // Only `\PC` / `\pC` is supported.
                    assert!(
                        chars.get(i + 2) == Some(&'C'),
                        "unsupported unicode class in pattern {pattern:?}"
                    );
                    i += 3;
                    Atom::NonControl
                } else {
                    i += 2;
                    Atom::Literal(esc)
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition lower bound"),
                        n.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(u32, u32)> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    assert!(
        body[0] != '^',
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut items = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            items.push((body[j] as u32, body[j + 2] as u32));
            j += 3;
        } else if j + 2 == body.len() && body[j + 1] == '-' {
            // Trailing '-' is a literal, e.g. `[a-z0-9_-]`.
            items.push((body[j] as u32, body[j] as u32));
            items.push(('-' as u32, '-' as u32));
            j += 2;
        } else {
            items.push((body[j] as u32, body[j] as u32));
            j += 1;
        }
    }
    items
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(items) => {
            let total: u64 = items.iter().map(|&(lo, hi)| u64::from(hi - lo) + 1).sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in items {
                let size = u64::from(hi - lo) + 1;
                if pick < size {
                    return char::from_u32(lo + pick as u32)
                        .expect("class range produced invalid code point");
                }
                pick -= size;
            }
            unreachable!()
        }
        Atom::NonControl => {
            if rng.below(16) == 0 {
                NON_ASCII[rng.below(NON_ASCII.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn classes_ranges_and_counts() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = generate("[a-z_][a-z0-9_-]{0,10}", &mut rng);
            assert!((1..=11).contains(&s.chars().count()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_', "{s:?}");
            for c in s.chars().skip(1) {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-',
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn leading_dash_is_literal() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let s = generate("[-/a-z0-9]{0,10}", &mut rng);
            for c in s.chars() {
                assert!(
                    c == '-' || c == '/' || c.is_ascii_lowercase() || c.is_ascii_digit(),
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn non_control_escape() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let s = generate("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
        }
    }
}
