//! `any::<T>()`: whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`Arbitrary`]; obtain via [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias a quarter of draws to the classic boundary values.
                match rng.next_u64() % 16 {
                    0 => 0,
                    1 => <$t>::MIN,
                    2 => <$t>::MAX,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MAX,
            6 => f64::MIN_POSITIVE,
            // Random bit patterns cover the full exponent range (and
            // occasionally NaNs), like upstream's `any::<f64>()`.
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            let v = (rng.next_u64() % 0x11_0000) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}
