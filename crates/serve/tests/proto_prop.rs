//! Property tests for the daemon's frame protocol: round-trips for
//! arbitrary messages, and — the daemon's survival property — no input,
//! however truncated or corrupted, ever panics the decoder or sneaks
//! through as a different payload. Everything malformed must come back
//! as a typed [`ServeError`].

use papar_serve::protocol::{read_frame, JobSpec, Request, Response};
use papar_serve::ServeError;
use proptest::prelude::*;

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some)]
}

fn opt_u32() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), any::<u32>().prop_map(Some)]
}

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        "[ -~]{0,24}",
        "[ -~]{0,24}",
        "[ -~]{0,24}",
        "[ -~]{0,24}",
        any::<u32>(),
        prop::collection::vec(("[a-z_]{1,8}", "[ -~]{0,12}"), 0..4),
        opt_u64(),
        opt_u32(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(input_config, workflow, data, out_dir, nodes, args, records, threads, f, z)| {
                JobSpec {
                    input_config,
                    workflow,
                    data,
                    out_dir,
                    nodes,
                    args,
                    records,
                    threads,
                    no_fuse: f,
                    no_zerocopy: z,
                }
            },
        )
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        spec_strategy().prop_map(Request::Submit),
        any::<u64>().prop_map(|id| Request::Status { id }),
        any::<u64>().prop_map(|id| Request::Wait { id }),
        Just(Request::Shutdown),
    ]
}

/// Frame a payload the way the protocol does.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    papar_record::wire::encode_frame(payload, &mut out);
    out
}

proptest! {
    /// Any request survives encode → frame → read_frame → decode intact.
    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let payload = req.encode();
        let framed = frame(&payload);
        let mut cursor = std::io::Cursor::new(framed);
        let got = read_frame(&mut cursor).unwrap().expect("one frame in");
        prop_assert_eq!(Request::decode(&got).unwrap(), req);
    }

    /// Truncating a valid frame at ANY byte boundary yields a typed
    /// BadFrame (or a clean EOF at zero) — never a panic, never a
    /// partial parse.
    #[test]
    fn truncation_is_always_typed(req in request_strategy(), frac in 0.0f64..1.0) {
        let framed = frame(&req.encode());
        let cut = ((framed.len() as f64) * frac) as usize;
        prop_assume!(cut < framed.len());
        let mut cursor = std::io::Cursor::new(&framed[..cut]);
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only before any byte"),
            Err(ServeError::BadFrame { .. }) => {}
            other => prop_assert!(false, "cut at {}: expected BadFrame, got {:?}", cut, other),
        }
    }

    /// Flipping any single bit of a valid frame can never deliver a
    /// different payload as if it were genuine: the read either fails
    /// typed, or (for flips the framing cannot see, e.g. making the
    /// length field point at a shorter checksum-valid prefix — which
    /// FNV-1a makes astronomically unlikely) must still not equal a
    /// *different* payload presented as the original.
    #[test]
    fn corruption_never_forges_a_payload(req in request_strategy(), frac in 0.0f64..1.0, bit in 0u8..8) {
        let payload = req.encode();
        let mut framed = frame(&payload);
        let idx = (((framed.len() - 1) as f64) * frac) as usize;
        framed[idx] ^= 1 << bit;
        let mut cursor = std::io::Cursor::new(&framed);
        match read_frame(&mut cursor) {
            Err(_) => {}
            Ok(Some(got)) => prop_assert_ne!(got, payload, "corrupt frame delivered as genuine"),
            Ok(None) => prop_assert!(false, "corrupt frame read as clean EOF"),
        }
    }

    /// Arbitrary garbage bytes: read_frame and Request::decode never
    /// panic, whatever arrives.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut cursor = std::io::Cursor::new(&bytes);
        let _ = read_frame(&mut cursor);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Payload-level fuzz of the message decoder itself (no framing):
    /// valid tag byte, garbage fields — still typed errors only.
    #[test]
    fn message_decode_is_total(tag in 0u8..8, bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut payload = vec![tag];
        payload.extend_from_slice(&bytes);
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}
