//! End-to-end daemon tests, in process: a real `Server` on a loopback
//! TCP socket, real clients on real sockets, real workloads through the
//! real engine. Verifies the acceptance properties the protocol/queue
//! unit tests cannot: byte-identity of served partitions with a
//! fresh-state run across thread counts, the plan/data caches actually
//! eliding work on a repeated submit, typed errors over the wire, and a
//! clean drain on shutdown.

use mublastp::dbgen::DbSpec;
use papar_serve::job::{self, Resources};
use papar_serve::protocol::{CacheOutcome, JobSpec, JobStateKind};
use papar_serve::{Client, Endpoint, ServeError, ServeOptions, Server};
use std::path::{Path, PathBuf};

const INPUT_CFG: &str = r#"
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;

const WORKFLOW: &str = r#"
<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

/// A scratch dir with the configs and a generated 400-record database.
fn fixture(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("papar-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("blast_db.xml"), INPUT_CFG).unwrap();
    std::fs::write(dir.join("wf.xml"), WORKFLOW).unwrap();
    let db = DbSpec::env_nr_scaled(400, 11).generate();
    std::fs::write(dir.join("env_nr.db"), db.to_bytes()).unwrap();
    dir
}

fn spec(dir: &Path, out: &str, threads: Option<u32>) -> JobSpec {
    JobSpec {
        input_config: dir.join("blast_db.xml").display().to_string(),
        workflow: dir.join("wf.xml").display().to_string(),
        data: dir.join("env_nr.db").display().to_string(),
        out_dir: dir.join(out).display().to_string(),
        nodes: 3,
        args: vec![("num_partitions".into(), "4".into())],
        records: Some(400),
        threads,
        no_fuse: false,
        no_zerocopy: false,
    }
}

fn partition_bytes(dir: &Path) -> Vec<Vec<u8>> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    names.sort();
    assert_eq!(names.len(), 4, "expected 4 partitions in {}", dir.display());
    names.iter().map(|p| std::fs::read(p).unwrap()).collect()
}

/// Start a daemon on a fresh loopback port; returns its endpoint and
/// the thread running it.
fn start(opts_queue: usize) -> (Endpoint, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeOptions {
        endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
        queue_capacity: opts_queue,
        ..ServeOptions::default()
    })
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (endpoint, handle)
}

#[test]
fn served_jobs_match_fresh_state_execution_across_threads_and_hit_caches() {
    let dir = fixture("bytes");

    // The reference: the same pipeline on throwaway resources (exactly
    // what one-shot `papar run` does — the CI `serve` job additionally
    // `cmp`s against the real binary).
    let mut fresh = Resources::new(4, 4, 1);
    job::execute(&spec(&dir, "oneshot", Some(1)), &mut fresh).expect("fresh run");
    let reference = partition_bytes(&dir.join("oneshot"));

    let (endpoint, server) = start(8);
    let mut client = Client::connect(&endpoint).unwrap();

    // Cold submit, then warm resubmits across thread counts: all byte-
    // identical, and the warm ones must report plan+data cache hits.
    let outs = [
        ("t1-cold", Some(1)),
        ("t1-warm", Some(1)),
        ("t4-warm", Some(4)),
    ];
    for (i, (out, threads)) in outs.iter().enumerate() {
        let (id, _) = client.submit(spec(&dir, out, *threads)).unwrap();
        let report = client.wait(id).unwrap();
        assert_eq!(
            report.state,
            JobStateKind::Done,
            "job {out}: {}",
            report.detail
        );
        assert_eq!(partition_bytes(&dir.join(out)), reference, "{out} diverged");
        assert_ne!(report.plan_fingerprint, 0);
        if i == 0 {
            assert_eq!(report.plan_cache, CacheOutcome::Miss);
            assert_eq!(report.data_cache, CacheOutcome::Miss);
        } else {
            // Same spec (out dir differs → same data, different plan
            // args): data must hit. Plan hits only for identical specs,
            // checked below with a true resubmit.
            assert_eq!(report.data_cache, CacheOutcome::Hit, "{out}");
        }
        assert!(report.detail.contains("cache"), "{}", report.detail);
    }

    // A true resubmit (identical spec, same out dir) elides planning:
    // `papar status` must say so, and the daemon counters must agree.
    let (id, _) = client.submit(spec(&dir, "t1-warm", Some(1))).unwrap();
    let report = client.wait(id).unwrap();
    assert_eq!(report.state, JobStateKind::Done, "{}", report.detail);
    assert_eq!(report.plan_cache, CacheOutcome::Hit);
    assert!(
        report.detail.contains("cache hit"),
        "status detail must surface the hit:\n{}",
        report.detail
    );
    let stats = client.ping().unwrap();
    assert_eq!(stats.jobs_done, 4);
    assert!(stats.plan_hits >= 1, "{stats:?}");
    assert!(stats.data_hits >= 3, "{stats:?}");
    assert!(stats.plans_cached >= 1, "{stats:?}");

    // Status for a job the daemon never issued: typed, not a hangup.
    assert_eq!(
        client.status(10_000).unwrap_err(),
        ServeError::UnknownJob { id: 10_000 }
    );

    // Clean shutdown via the protocol; the server thread must return.
    client.shutdown().unwrap();
    server.join().expect("server thread exits cleanly");
    // And the daemon refuses connections afterwards.
    assert!(
        Client::connect(&endpoint).is_err() || {
            // The listener may linger a beat; a request must fail either way.
            Client::connect(&endpoint)
                .and_then(|mut c| c.ping())
                .is_err()
        }
    );
}

#[test]
fn failed_jobs_report_typed_failure_not_a_dead_daemon() {
    let dir = fixture("fail");
    let (endpoint, server) = start(4);
    let mut client = Client::connect(&endpoint).unwrap();

    // Data file that does not exist: the job fails, the daemon lives.
    let mut bad = spec(&dir, "nope", Some(1));
    bad.data = dir.join("missing.db").display().to_string();
    let (id, _) = client.submit(bad).unwrap();
    let report = client.wait(id).unwrap();
    assert_eq!(report.state, JobStateKind::Failed);
    assert!(report.detail.contains("missing.db"), "{}", report.detail);

    // The daemon still serves: a good job right after succeeds.
    let (id, _) = client.submit(spec(&dir, "after", Some(1))).unwrap();
    let report = client.wait(id).unwrap();
    assert_eq!(report.state, JobStateKind::Done, "{}", report.detail);
    let stats = client.ping().unwrap();
    assert_eq!((stats.jobs_done, stats.jobs_failed), (1, 1));

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn malformed_frames_get_a_typed_answer_then_a_hangup() {
    use std::io::{Read, Write};
    let (endpoint, server) = start(4);
    let addr = match &endpoint {
        Endpoint::Tcp(a) => a.clone(),
        other => panic!("expected tcp endpoint, got {other}"),
    };

    // Raw garbage: claims a 5-byte payload, sends junk with a wrong
    // checksum. The daemon answers one typed error frame and hangs up —
    // it must NOT die.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    let mut junk = Vec::new();
    junk.extend_from_slice(&5u32.to_le_bytes());
    junk.extend_from_slice(&0xBAD0_BAD0_BAD0_BAD0u64.to_le_bytes());
    junk.extend_from_slice(b"junk!");
    raw.write_all(&junk).unwrap();
    raw.flush().unwrap();
    let answer = papar_serve::protocol::read_frame(&mut raw)
        .expect("typed answer frame")
        .expect("not EOF");
    match papar_serve::protocol::Response::decode(&answer).unwrap() {
        papar_serve::protocol::Response::Err(ServeError::BadFrame { detail }) => {
            assert!(detail.contains("checksum"), "{detail}");
        }
        other => panic!("expected BadFrame answer, got {other:?}"),
    }
    // Connection is closed after the answer.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // A fresh, well-formed client still works on the same daemon.
    let mut client = Client::connect(&endpoint).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn queue_overflow_is_refused_typed_and_the_daemon_survives() {
    let dir = fixture("overflow");
    let (endpoint, server) = start(1);
    let mut client = Client::connect(&endpoint).unwrap();

    // Capacity 1: the first (possibly already running) job occupies the
    // only slot; keep submitting until admission control answers. With
    // jobs taking ~a second, the second immediate submit must be
    // refused.
    let (first, _) = client.submit(spec(&dir, "q0", Some(1))).unwrap();
    let mut refused = false;
    for i in 0..50 {
        match client.submit(spec(&dir, &format!("q{}", i + 1), Some(1))) {
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                refused = true;
                break;
            }
            Ok(_) => continue, // a slot freed between submits; try again
            Err(other) => panic!("expected QueueFull, got {other}"),
        }
    }
    assert!(refused, "admission control never engaged");

    // The refused submit cost nothing: the first job still completes.
    let report = client.wait(first).unwrap();
    assert_eq!(report.state, JobStateKind::Done, "{}", report.detail);

    client.shutdown().unwrap();
    server.join().unwrap();
}
