//! The daemon: socket listener, connection handlers, and the single
//! worker thread that drains the job queue onto the resident cluster.
//!
//! Threading model: the accept loop polls a nonblocking listener (so it
//! can notice shutdown between connections), spawns one handler thread
//! per client connection, and runs one worker thread for the engine.
//! Handlers only touch the queue and the shared counters — every
//! engine-side object (cluster, caches) is owned by the worker, so
//! there is no lock around the hot path and two jobs can never race on
//! the engine. Shutdown — a `Shutdown` request or SIGTERM/SIGINT —
//! closes the queue to new admissions, lets the worker drain what was
//! already admitted, and exits cleanly.

use crate::job::{self, Resources};
use crate::protocol::{
    read_frame, write_frame, DaemonStats, Endpoint, Request, Response, PROTOCOL_VERSION,
};
use crate::queue::JobQueue;
use crate::ServeError;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SIGTERM/SIGINT land here; everything else about signal handling
/// stays out of the async-signal context. Installed via the raw libc
/// `signal(2)` symbol — the handler only stores a flag, which is
/// async-signal-safe, and the accept loop polls it.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// How the daemon should be configured.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Pending-job admission limit (queued + running).
    pub queue_capacity: usize,
    /// Compiled plans kept resident.
    pub plan_cache: usize,
    /// Decoded input files kept resident.
    pub data_cache: usize,
    /// Install SIGTERM/SIGINT handlers (the CLI does; in-process tests
    /// must not hijack the test harness's signals).
    pub handle_signals: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            endpoint: Endpoint::Tcp("127.0.0.1:0".to_string()),
            queue_capacity: 32,
            plan_cache: 16,
            data_cache: 8,
            handle_signals: false,
        }
    }
}

/// Counters shared between the worker (writes) and handlers (read by
/// `Ping`).
#[derive(Debug, Default)]
struct SharedStats {
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    plans_cached: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    data_hits: AtomicU64,
    data_misses: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> DaemonStats {
        DaemonStats {
            jobs_done: self.jobs_done.load(Ordering::SeqCst),
            jobs_failed: self.jobs_failed.load(Ordering::SeqCst),
            plans_cached: self.plans_cached.load(Ordering::SeqCst),
            plan_hits: self.plan_hits.load(Ordering::SeqCst),
            plan_misses: self.plan_misses.load(Ordering::SeqCst),
            data_hits: self.data_hits.load(Ordering::SeqCst),
            data_misses: self.data_misses.load(Ordering::SeqCst),
        }
    }
}

struct Shared {
    queue: JobQueue,
    stats: SharedStats,
    /// Set by a `Shutdown` request (SIGTERM sets the global flag).
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || TERM_REQUESTED.load(Ordering::SeqCst)
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// The resident daemon. [`Server::bind`] validates the environment and
/// claims the socket; [`Server::run`] serves until shutdown.
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    /// The Unix socket path to unlink on exit, when listening on one.
    unlink_on_exit: Option<std::path::PathBuf>,
    shared: Arc<Shared>,
    default_threads: usize,
    opts: ServeOptions,
}

impl Server {
    /// Validate the environment (a malformed `PAPAR_THREADS` is refused
    /// *here*, not on the first request — a resident daemon must not
    /// boot mis-sized) and claim the socket.
    pub fn bind(opts: ServeOptions) -> Result<Server, ServeError> {
        let default_threads =
            papar_mr::default_thread_budget().map_err(|e| ServeError::Rejected {
                detail: e.to_string(),
            })?;
        let (listener, endpoint, unlink_on_exit) = match &opts.endpoint {
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed daemon would make
                // bind fail; a *live* daemon's socket must not be
                // stolen. Distinguish by connecting.
                if path.exists() {
                    if std::os::unix::net::UnixStream::connect(path).is_ok() {
                        return Err(ServeError::Rejected {
                            detail: format!(
                                "another daemon is already listening on {}",
                                path.display()
                            ),
                        });
                    }
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (
                    Listener::Unix(l),
                    Endpoint::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                let actual = l.local_addr()?;
                (Listener::Tcp(l), Endpoint::Tcp(actual.to_string()), None)
            }
        };
        if opts.handle_signals {
            install_signal_handlers();
        }
        Ok(Server {
            listener,
            endpoint,
            unlink_on_exit,
            shared: Arc::new(Shared {
                queue: JobQueue::new(opts.queue_capacity),
                stats: SharedStats::default(),
                shutdown: AtomicBool::new(false),
            }),
            default_threads,
            opts,
        })
    }

    /// The endpoint actually bound (with the OS-assigned port for
    /// `tcp:...:0`). Connect clients here.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The validated engine thread budget jobs default to.
    pub fn default_threads(&self) -> usize {
        self.default_threads
    }

    /// Serve until a `Shutdown` request or SIGTERM/SIGINT, then drain
    /// the queue and return. Never panics; per-connection faults stay
    /// on their connection.
    pub fn run(self) -> Result<(), ServeError> {
        let worker = {
            let shared = self.shared.clone();
            let mut res = Resources::new(
                self.opts.plan_cache,
                self.opts.data_cache,
                self.default_threads,
            );
            std::thread::Builder::new()
                .name("papar-serve-worker".into())
                .spawn(move || worker_loop(&shared, &mut res))
                .map_err(|e| ServeError::Io {
                    detail: e.to_string(),
                })?
        };

        loop {
            if self.shared.shutting_down() {
                break;
            }
            let accepted: Option<Box<dyn StreamIo>> = match &self.listener {
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(false);
                        Some(Box::new(s))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nonblocking(false);
                        Some(Box::new(s))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                Some(stream) => {
                    let shared = self.shared.clone();
                    let _ = std::thread::Builder::new()
                        .name("papar-serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared));
                }
                None => std::thread::sleep(Duration::from_millis(15)),
            }
        }

        // Graceful drain: no new admissions, everything already
        // admitted still runs, then the worker exits.
        self.shared.queue.close();
        let _ = worker.join();
        if let Some(path) = &self.unlink_on_exit {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

trait StreamIo: Read + Write + Send {}
impl<T: Read + Write + Send> StreamIo for T {}

fn worker_loop(shared: &Shared, res: &mut Resources) {
    loop {
        match shared.queue.next_job(Duration::from_millis(100)) {
            Some((id, spec)) => {
                // A panic inside the engine must neither kill the daemon
                // nor leave the job stuck in `Running`; the resident
                // cluster may be mid-run, so it is discarded too.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    job::execute(&spec, res)
                }))
                .unwrap_or_else(|_| {
                    res.cluster = None;
                    Err("internal error: job panicked; resident cluster discarded".to_string())
                });
                match &result {
                    Ok(_) => shared.stats.jobs_done.fetch_add(1, Ordering::SeqCst),
                    Err(_) => shared.stats.jobs_failed.fetch_add(1, Ordering::SeqCst),
                };
                shared
                    .stats
                    .plans_cached
                    .store(res.plans.len() as u64, Ordering::SeqCst);
                shared
                    .stats
                    .plan_hits
                    .store(res.plans.hits, Ordering::SeqCst);
                shared
                    .stats
                    .plan_misses
                    .store(res.plans.misses, Ordering::SeqCst);
                shared
                    .stats
                    .data_hits
                    .store(res.data.hits, Ordering::SeqCst);
                shared
                    .stats
                    .data_misses
                    .store(res.data.misses, Ordering::SeqCst);
                shared.queue.complete(id, result);
            }
            None => {
                if (shared.shutting_down() || shared.queue.is_closed())
                    && !shared.queue.has_pending()
                {
                    return;
                }
            }
        }
    }
}

fn handle_connection(mut stream: Box<dyn StreamIo>, shared: &Shared) {
    loop {
        match read_frame(&mut stream) {
            Ok(None) => return, // clean disconnect between frames
            Ok(Some(payload)) => {
                let response = match Request::decode(&payload) {
                    Ok(request) => respond(request, shared),
                    Err(e) => Response::Err(e),
                };
                if write_frame(&mut stream, &response.encode()).is_err() {
                    return;
                }
            }
            Err(e) => {
                // The stream is desynchronized after a bad frame; one
                // typed answer, then hang up.
                let _ = write_frame(&mut stream, &Response::Err(e).encode());
                return;
            }
        }
    }
}

fn respond(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Pong {
            version: PROTOCOL_VERSION,
            stats: shared.stats.snapshot(),
        },
        Request::Submit(spec) => {
            if shared.shutting_down() {
                return Response::Err(ServeError::ShuttingDown);
            }
            match shared.queue.submit(spec) {
                Ok((id, position)) => Response::Submitted { id, position },
                Err(e) => Response::Err(e),
            }
        }
        Request::Status { id } => match shared.queue.report(id) {
            Ok(report) => Response::Job(report),
            Err(e) => Response::Err(e),
        },
        Request::Wait { id } => match shared.queue.wait(id) {
            Ok(report) => Response::Job(report),
            Err(e) => Response::Err(e),
        },
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            Response::ShuttingDown
        }
    }
}
