//! The daemon's frame protocol.
//!
//! Every message travels as one wire frame — the engine's own
//! `[len u32 LE][fnv1a u64 LE][payload]` layout
//! ([`papar_record::wire::encode_frame`]) — so the daemon reuses the
//! checksum and framing code the checkpoint manifests already trust,
//! and a corrupt or truncated message is *detected*, not mis-parsed.
//! The payload is a tag byte followed by the message's fields in the
//! wire crate's little-endian primitives; strings are length-prefixed
//! UTF-8. Decoding never panics: every malformed input comes back as
//! [`ServeError::BadFrame`].
//!
//! The protocol is strictly request/response over a byte stream (Unix
//! socket or TCP): the client writes one [`Request`] frame, the daemon
//! answers with one [`Response`] frame, repeat. No pipelining, no
//! interleaving — boring on purpose.

use crate::ServeError;
use papar_record::wire::{self, Reader};
use std::io::{Read, Write};

/// Protocol revision; bumped on any incompatible message change. The
/// daemon answers `Ping` with its version so mismatched clients fail
/// loudly at handshake rather than mysteriously mid-stream.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a single frame's payload. Requests and responses are
/// metadata (paths, tables), never bulk data — anything larger is a
/// corrupt length field, and honoring it would let one bad frame make
/// the daemon allocate gigabytes.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Where the daemon listens / the client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at this filesystem path.
    Unix(std::path::PathBuf),
    /// A TCP listen/connect address, e.g. `127.0.0.1:7117`.
    Tcp(String),
}

impl Endpoint {
    /// Parse a `--socket` argument: `tcp:HOST:PORT` selects TCP,
    /// anything else is a Unix socket path.
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("tcp:") {
            Some(addr) => Endpoint::Tcp(addr.to_string()),
            None => Endpoint::Unix(std::path::PathBuf::from(s)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Everything a `papar submit` carries. Paths are sent as the client
/// resolved them (absolute for a remote daemon — the daemon reads them
/// from *its* filesystem).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSpec {
    /// Path to the InputData configuration document.
    pub input_config: String,
    /// Path to the Workflow configuration document.
    pub workflow: String,
    /// Path to the input data file.
    pub data: String,
    /// Directory for the partition files.
    pub out_dir: String,
    /// Simulated cluster size.
    pub nodes: u32,
    /// Launch-time workflow arguments, duplicate-free (the CLI rejects
    /// duplicates before they get here), in the order given.
    pub args: Vec<(String, String)>,
    /// Read exactly this many records from a binary input (the
    /// `--records` flag).
    pub records: Option<u64>,
    /// Engine thread override for this job; `None` uses the daemon's
    /// validated startup budget. Never changes output bytes.
    pub threads: Option<u32>,
    /// Disable physical-plan fusion (`--no-fuse`).
    pub no_fuse: bool,
    /// Disable the zero-copy reduce path (`--no-zerocopy`).
    pub no_zerocopy: bool,
    /// Run the cost-based adaptive planner (`--adaptive`). Folded into
    /// the spec hash AND — via the decision's rationale — the plan
    /// fingerprint, so a data-file change re-plans instead of reusing a
    /// cached plan derived from stale statistics.
    pub adaptive: bool,
}

/// A job's lifecycle state, as reported to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStateKind {
    /// Waiting in the FIFO queue at this position (0 = next to run).
    Queued {
        /// Jobs ahead of this one.
        position: u32,
    },
    /// Currently executing on the resident cluster.
    Running,
    /// Finished; the report's detail holds the rendered summary.
    Done,
    /// Failed; the report's detail holds the error.
    Failed,
}

/// Whether a job's plan / dataset came out of the resident caches.
/// `Pending` until the job actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Not known yet (job still queued or running).
    Pending,
    /// Served from the resident cache.
    Hit,
    /// Compiled / loaded fresh and inserted.
    Miss,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::Pending => write!(f, "pending"),
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::Miss => write!(f, "miss"),
        }
    }
}

/// What `papar status <job-id>` (and a blocking `wait`) returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The daemon-issued job id.
    pub id: u64,
    /// Lifecycle state (with queue position while queued).
    pub state: JobStateKind,
    /// Rendered human-readable body: the run summary plus the profile
    /// table once done, the error once failed, empty before that.
    pub detail: String,
    /// The plan fingerprint ([`papar_core::exec::plan_fingerprint`])
    /// the job's plan-cache entry is keyed by; 0 until planned.
    pub plan_fingerprint: u64,
    /// Did the compiled plan come from the resident cache?
    pub plan_cache: CacheOutcome,
    /// Did the decoded input come from the resident cache?
    pub data_cache: CacheOutcome,
    /// Wall-clock milliseconds the job spent executing (0 until done).
    pub wall_ms: u64,
    /// Total simulated partitioning time in nanoseconds (0 until done).
    pub sim_ns: u64,
}

/// Daemon-wide counters, answered to `Ping`. The bench harness and CI
/// read these to prove work was actually elided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonStats {
    /// Jobs that reached `Done`.
    pub jobs_done: u64,
    /// Jobs that reached `Failed`.
    pub jobs_failed: u64,
    /// Compiled plans currently resident.
    pub plans_cached: u64,
    /// Plan-cache hits (plans *not* recompiled).
    pub plan_hits: u64,
    /// Plan-cache misses (plans compiled fresh).
    pub plan_misses: u64,
    /// Dataset-cache hits (input files *not* re-read).
    pub data_hits: u64,
    /// Dataset-cache misses.
    pub data_misses: u64,
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Health check; answered with `Pong` + [`DaemonStats`].
    Ping,
    /// Enqueue a job; answered with `Submitted` or `Err(QueueFull)`.
    Submit(JobSpec),
    /// One-shot state query; answered with `Job` or `Err(UnknownJob)`.
    Status {
        /// The job to report on.
        id: u64,
    },
    /// Block until the job leaves the queue/running states, then answer
    /// with its final `Job` report.
    Wait {
        /// The job to wait for.
        id: u64,
    },
    /// Drain the queue and exit; answered with `ShuttingDown`.
    Shutdown,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to `Ping`.
    Pong {
        /// The daemon's [`PROTOCOL_VERSION`].
        version: u8,
        /// Lifetime counters.
        stats: DaemonStats,
    },
    /// The job was admitted.
    Submitted {
        /// Daemon-issued id, for `status`/`wait`.
        id: u64,
        /// Jobs ahead of it at admission time.
        position: u32,
    },
    /// Answer to `Status`/`Wait`.
    Job(JobReport),
    /// Shutdown acknowledged; the daemon exits once the queue drains.
    ShuttingDown,
    /// The request failed; the typed reason.
    Err(ServeError),
}

// ---------------------------------------------------------------------
// Payload primitives. The wire crate's Reader supplies the fallible
// read side; the put_* helpers mirror its little-endian layout.
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(n) => {
            put_u8(out, 1);
            put_u64(out, n);
        }
        None => put_u8(out, 0),
    }
}

fn bad(detail: impl Into<String>) -> ServeError {
    ServeError::BadFrame {
        detail: detail.into(),
    }
}

fn get_u8(r: &mut Reader<'_>) -> Result<u8, ServeError> {
    r.read_u8().map_err(|e| bad(e.to_string()))
}

fn get_u32(r: &mut Reader<'_>) -> Result<u32, ServeError> {
    r.read_u32().map_err(|e| bad(e.to_string()))
}

fn get_u64(r: &mut Reader<'_>) -> Result<u64, ServeError> {
    r.read_u64().map_err(|e| bad(e.to_string()))
}

fn get_str(r: &mut Reader<'_>) -> Result<String, ServeError> {
    let len = get_u32(r)? as usize;
    if len > r.remaining() {
        return Err(bad(format!(
            "string length {len} exceeds the {} bytes left in the frame",
            r.remaining()
        )));
    }
    let bytes = r.read_bytes(len).map_err(|e| bad(e.to_string()))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| bad("string field is not UTF-8"))
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, ServeError> {
    match get_u8(r)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(r)?)),
        n => Err(bad(format!("option flag must be 0 or 1, got {n}"))),
    }
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, ServeError> {
    match get_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        n => Err(bad(format!("bool must be 0 or 1, got {n}"))),
    }
}

// ---------------------------------------------------------------------
// Message encodings.
// ---------------------------------------------------------------------

impl JobSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.input_config);
        put_str(out, &self.workflow);
        put_str(out, &self.data);
        put_str(out, &self.out_dir);
        put_u32(out, self.nodes);
        put_u32(out, self.args.len() as u32);
        for (k, v) in &self.args {
            put_str(out, k);
            put_str(out, v);
        }
        put_opt_u64(out, self.records);
        put_opt_u64(out, self.threads.map(u64::from));
        put_u8(out, self.no_fuse as u8);
        put_u8(out, self.no_zerocopy as u8);
        // Wire compatibility: new fields append last.
        put_u8(out, self.adaptive as u8);
    }

    fn decode(r: &mut Reader<'_>) -> Result<JobSpec, ServeError> {
        let input_config = get_str(r)?;
        let workflow = get_str(r)?;
        let data = get_str(r)?;
        let out_dir = get_str(r)?;
        let nodes = get_u32(r)?;
        let n_args = get_u32(r)? as usize;
        // Each arg costs >= 8 bytes on the wire; a count that cannot fit
        // in the frame is a corrupt field, not a huge allocation.
        if n_args * 8 > r.remaining() {
            return Err(bad(format!(
                "arg count {n_args} exceeds the {} bytes left in the frame",
                r.remaining()
            )));
        }
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            let k = get_str(r)?;
            let v = get_str(r)?;
            args.push((k, v));
        }
        let records = get_opt_u64(r)?;
        let threads = match get_opt_u64(r)? {
            Some(t) => Some(
                u32::try_from(t).map_err(|_| bad(format!("thread override {t} out of range")))?,
            ),
            None => None,
        };
        let no_fuse = get_bool(r)?;
        let no_zerocopy = get_bool(r)?;
        let adaptive = get_bool(r)?;
        Ok(JobSpec {
            input_config,
            workflow,
            data,
            out_dir,
            nodes,
            args,
            records,
            threads,
            no_fuse,
            no_zerocopy,
            adaptive,
        })
    }
}

impl JobStateKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JobStateKind::Queued { position } => {
                put_u8(out, 0);
                put_u32(out, *position);
            }
            JobStateKind::Running => put_u8(out, 1),
            JobStateKind::Done => put_u8(out, 2),
            JobStateKind::Failed => put_u8(out, 3),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<JobStateKind, ServeError> {
        match get_u8(r)? {
            0 => Ok(JobStateKind::Queued {
                position: get_u32(r)?,
            }),
            1 => Ok(JobStateKind::Running),
            2 => Ok(JobStateKind::Done),
            3 => Ok(JobStateKind::Failed),
            n => Err(bad(format!("unknown job state tag {n}"))),
        }
    }
}

impl CacheOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(
            out,
            match self {
                CacheOutcome::Pending => 0,
                CacheOutcome::Hit => 1,
                CacheOutcome::Miss => 2,
            },
        );
    }

    fn decode(r: &mut Reader<'_>) -> Result<CacheOutcome, ServeError> {
        match get_u8(r)? {
            0 => Ok(CacheOutcome::Pending),
            1 => Ok(CacheOutcome::Hit),
            2 => Ok(CacheOutcome::Miss),
            n => Err(bad(format!("unknown cache outcome tag {n}"))),
        }
    }
}

impl JobReport {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.id);
        self.state.encode(out);
        put_str(out, &self.detail);
        put_u64(out, self.plan_fingerprint);
        self.plan_cache.encode(out);
        self.data_cache.encode(out);
        put_u64(out, self.wall_ms);
        put_u64(out, self.sim_ns);
    }

    fn decode(r: &mut Reader<'_>) -> Result<JobReport, ServeError> {
        Ok(JobReport {
            id: get_u64(r)?,
            state: JobStateKind::decode(r)?,
            detail: get_str(r)?,
            plan_fingerprint: get_u64(r)?,
            plan_cache: CacheOutcome::decode(r)?,
            data_cache: CacheOutcome::decode(r)?,
            wall_ms: get_u64(r)?,
            sim_ns: get_u64(r)?,
        })
    }
}

impl DaemonStats {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.jobs_done,
            self.jobs_failed,
            self.plans_cached,
            self.plan_hits,
            self.plan_misses,
            self.data_hits,
            self.data_misses,
        ] {
            put_u64(out, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<DaemonStats, ServeError> {
        Ok(DaemonStats {
            jobs_done: get_u64(r)?,
            jobs_failed: get_u64(r)?,
            plans_cached: get_u64(r)?,
            plan_hits: get_u64(r)?,
            plan_misses: get_u64(r)?,
            data_hits: get_u64(r)?,
            data_misses: get_u64(r)?,
        })
    }
}

impl ServeError {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServeError::QueueFull { capacity } => {
                put_u8(out, 1);
                put_u64(out, *capacity as u64);
            }
            ServeError::UnknownJob { id } => {
                put_u8(out, 2);
                put_u64(out, *id);
            }
            ServeError::BadFrame { detail } => {
                put_u8(out, 3);
                put_str(out, detail);
            }
            ServeError::ShuttingDown => put_u8(out, 4),
            ServeError::Io { detail } => {
                put_u8(out, 5);
                put_str(out, detail);
            }
            ServeError::Rejected { detail } => {
                put_u8(out, 6);
                put_str(out, detail);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<ServeError, ServeError> {
        match get_u8(r)? {
            1 => Ok(ServeError::QueueFull {
                capacity: get_u64(r)? as usize,
            }),
            2 => Ok(ServeError::UnknownJob { id: get_u64(r)? }),
            3 => Ok(ServeError::BadFrame {
                detail: get_str(r)?,
            }),
            4 => Ok(ServeError::ShuttingDown),
            5 => Ok(ServeError::Io {
                detail: get_str(r)?,
            }),
            6 => Ok(ServeError::Rejected {
                detail: get_str(r)?,
            }),
            n => Err(bad(format!("unknown error tag {n}"))),
        }
    }
}

impl Request {
    /// Serialize into a frame payload (tag + fields, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => put_u8(&mut out, 1),
            Request::Submit(spec) => {
                put_u8(&mut out, 2);
                spec.encode(&mut out);
            }
            Request::Status { id } => {
                put_u8(&mut out, 3);
                put_u64(&mut out, *id);
            }
            Request::Wait { id } => {
                put_u8(&mut out, 4);
                put_u64(&mut out, *id);
            }
            Request::Shutdown => put_u8(&mut out, 5),
        }
        out
    }

    /// Parse a frame payload. Trailing garbage after a well-formed
    /// message is a framing bug on the peer and is rejected.
    pub fn decode(payload: &[u8]) -> Result<Request, ServeError> {
        let mut r = Reader::new(payload);
        let req = match get_u8(&mut r)? {
            1 => Request::Ping,
            2 => Request::Submit(JobSpec::decode(&mut r)?),
            3 => Request::Status {
                id: get_u64(&mut r)?,
            },
            4 => Request::Wait {
                id: get_u64(&mut r)?,
            },
            5 => Request::Shutdown,
            n => return Err(bad(format!("unknown request tag {n}"))),
        };
        if r.remaining() != 0 {
            return Err(bad(format!(
                "{} trailing bytes after request",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

impl Response {
    /// Serialize into a frame payload (tag + fields, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong { version, stats } => {
                put_u8(&mut out, 1);
                put_u8(&mut out, *version);
                stats.encode(&mut out);
            }
            Response::Submitted { id, position } => {
                put_u8(&mut out, 2);
                put_u64(&mut out, *id);
                put_u32(&mut out, *position);
            }
            Response::Job(report) => {
                put_u8(&mut out, 3);
                report.encode(&mut out);
            }
            Response::ShuttingDown => put_u8(&mut out, 4),
            Response::Err(e) => {
                put_u8(&mut out, 5);
                e.encode(&mut out);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ServeError> {
        let mut r = Reader::new(payload);
        let resp = match get_u8(&mut r)? {
            1 => Response::Pong {
                version: get_u8(&mut r)?,
                stats: DaemonStats::decode(&mut r)?,
            },
            2 => Response::Submitted {
                id: get_u64(&mut r)?,
                position: get_u32(&mut r)?,
            },
            3 => Response::Job(JobReport::decode(&mut r)?),
            4 => Response::ShuttingDown,
            5 => Response::Err(ServeError::decode(&mut r)?),
            n => return Err(bad(format!("unknown response tag {n}"))),
        };
        if r.remaining() != 0 {
            return Err(bad(format!(
                "{} trailing bytes after response",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Stream framing.
// ---------------------------------------------------------------------

/// Write one `[len][checksum][payload]` frame to the stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    wire::encode_frame(payload, &mut frame);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from the stream and return its verified payload.
/// `Ok(None)` is a clean end-of-stream (the peer closed between
/// frames); EOF *inside* a frame, an oversized length, or a checksum
/// mismatch is a [`ServeError::BadFrame`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    let mut header = [0u8; 12];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(bad(format!(
                    "stream closed {filled} bytes into a 12-byte frame header"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let expect = u64::from_le_bytes(header[4..12].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(bad(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            bad(format!("stream closed inside a {len}-byte frame payload"))
        } else {
            e.into()
        });
    }
    let got = wire::checksum(&payload);
    if got != expect {
        return Err(bad(format!(
            "frame checksum mismatch: header says {expect:#018x}, payload hashes to {got:#018x}"
        )));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            input_config: "cfg.xml".into(),
            workflow: "wf.xml".into(),
            data: "/data/env_nr.db".into(),
            out_dir: "/tmp/out".into(),
            nodes: 8,
            args: vec![("num_partitions".into(), "16".into())],
            records: Some(500),
            threads: Some(4),
            no_fuse: false,
            no_zerocopy: true,
        }
    }

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Ping,
            Request::Submit(spec()),
            Request::Status { id: 7 },
            Request::Wait { id: u64::MAX },
            Request::Shutdown,
        ] {
            let payload = req.encode();
            assert_eq!(Request::decode(&payload).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            Response::Pong {
                version: PROTOCOL_VERSION,
                stats: DaemonStats {
                    jobs_done: 3,
                    plan_hits: 2,
                    ..Default::default()
                },
            },
            Response::Submitted { id: 1, position: 0 },
            Response::Job(JobReport {
                id: 1,
                state: JobStateKind::Queued { position: 2 },
                detail: String::new(),
                plan_fingerprint: 0xDEAD_BEEF,
                plan_cache: CacheOutcome::Pending,
                data_cache: CacheOutcome::Pending,
                wall_ms: 0,
                sim_ns: 0,
            }),
            Response::ShuttingDown,
            Response::Err(ServeError::QueueFull { capacity: 4 }),
            Response::Err(ServeError::ShuttingDown),
            Response::Err(ServeError::Rejected {
                detail: "nope".into(),
            }),
        ] {
            let payload = resp.encode();
            assert_eq!(Response::decode(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(ServeError::BadFrame { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let payload = Request::Submit(spec()).encode();
        let mut frame = Vec::new();
        wire::encode_frame(&payload, &mut frame);
        for cut in [0, 3, 11, 12, frame.len() - 1] {
            let mut cursor = std::io::Cursor::new(&frame[..cut]);
            match read_frame(&mut cursor) {
                Ok(None) if cut == 0 => {}
                Err(ServeError::BadFrame { .. }) => {}
                other => panic!("cut at {cut}: expected BadFrame, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_payload_fails_the_checksum() {
        let payload = Request::Status { id: 9 }.encode();
        let mut frame = Vec::new();
        wire::encode_frame(&payload, &mut frame);
        *frame.last_mut().unwrap() ^= 0x40;
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor) {
            Err(ServeError::BadFrame { detail }) => {
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_refused_without_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor) {
            Err(ServeError::BadFrame { detail }) => assert!(detail.contains("limit"), "{detail}"),
            other => panic!("expected length rejection, got {other:?}"),
        }
    }
}
