//! Executing one submitted job on the daemon's resident state.
//!
//! [`execute`] is `papar run`'s pipeline — read, check, plan, verify,
//! lower, scatter, run, collect, write — with the expensive stages
//! routed through the resident caches and the resident cluster. Every
//! step calls the *same* engine functions in the *same* order with the
//! *same* options as `crates/cli`'s one-shot path, so a served job's
//! partition files are byte-identical to `papar run`'s; the CI `serve`
//! job `cmp`s them to keep that true.

use crate::cache::{CachedPlan, DataCache, DataKey, PlanCache};
use crate::protocol::JobSpec;
use crate::queue::JobOutcome;
use papar_config::input::InputFormat;
use papar_config::{InputConfig, WorkflowConfig};
use papar_core::exec::{plan_fingerprint_with, ExecOptions, WorkflowRunner};
use papar_core::plan::Planner;
use papar_mr::{Cluster, RetryPolicy};
use papar_record::batch::{Batch, Dataset};
use papar_record::{wire, Record, Schema};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Everything the worker thread keeps alive between jobs.
pub struct Resources {
    /// The resident cluster; rebuilt only when a request asks for a
    /// different node count, [`Cluster::reset`] otherwise.
    pub cluster: Option<Cluster>,
    /// Compiled plans by fingerprint.
    pub plans: PlanCache,
    /// Decoded input files.
    pub data: DataCache,
    /// The validated startup thread budget, used when a job does not
    /// override `--threads`. Pinning it per job keeps one request's
    /// override from leaking into the next on the reused cluster.
    pub default_threads: usize,
}

impl Resources {
    /// Fresh resources with the given cache capacities.
    pub fn new(plan_cap: usize, data_cap: usize, default_threads: usize) -> Resources {
        Resources {
            cluster: None,
            plans: PlanCache::new(plan_cap),
            data: DataCache::new(data_cap),
            default_threads: default_threads.max(1),
        }
    }
}

/// Read an input data file per its configuration — the loader `papar
/// run` and the daemon share. Binary files may carry payload beyond the
/// record region: `records` bounds the region explicitly; otherwise the
/// longest whole-record prefix after `start_position` is read (the
/// paper's "treat every 16 bytes as an entry" reading of Figure 4).
pub fn load_records(
    cfg: &InputConfig,
    schema: &Schema,
    path: &Path,
    records: Option<usize>,
) -> Result<Vec<Record>, String> {
    match cfg.format {
        InputFormat::Binary => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let width = schema
                .binary_record_width()
                .ok_or_else(|| "binary schema has variable-width fields".to_string())?;
            let start = cfg.start_position as usize;
            if bytes.len() < start {
                return Err(format!(
                    "{} is shorter than start_position {start}",
                    path.display()
                ));
            }
            let region = match records {
                Some(n) => {
                    let need = n * width;
                    if bytes.len() - start < need {
                        return Err(format!(
                            "--records {n} wants {need} bytes after the header, file has {}",
                            bytes.len() - start
                        ));
                    }
                    need
                }
                None => (bytes.len() - start) / width * width,
            };
            papar_record::codec::binary::read(cfg, schema, &bytes[..start + region])
                .map_err(|e| e.to_string())
        }
        InputFormat::Text => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            papar_record::codec::text::read(cfg, schema, &text).map_err(|e| e.to_string())
        }
    }
}

/// Hash of the raw request: everything that decides what planning would
/// produce *and* what the static-analysis gate would say. The effective
/// arguments (with the conventional `input_path`/`output_path`
/// defaults) are a pure function of the workflow text, the given args,
/// and the data/out paths — all hashed here — so a spec-hash hit is
/// safe to serve without re-deriving them. The data file's size and
/// mtime are included because the gate's record-count checks read the
/// data; a changed file must re-plan.
fn spec_hash(spec: &JobSpec, cfg_text: &str, wf_text: &str, len: u64, mtime_ns: u128) -> u64 {
    let mut canon = String::new();
    let _ = writeln!(canon, "input_config:\n{cfg_text}");
    let _ = writeln!(canon, "workflow:\n{wf_text}");
    let _ = writeln!(canon, "data={} len={len} mtime={mtime_ns}", spec.data);
    let _ = writeln!(canon, "out={}", spec.out_dir);
    let _ = writeln!(canon, "nodes={}", spec.nodes);
    let mut args: Vec<&(String, String)> = spec.args.iter().collect();
    args.sort();
    for (k, v) in args {
        let _ = writeln!(canon, "arg {k}={v}");
    }
    let _ = writeln!(canon, "records={:?}", spec.records);
    let _ = writeln!(canon, "fuse={}", !spec.no_fuse);
    let _ = writeln!(canon, "adaptive={}", spec.adaptive);
    wire::checksum(canon.as_bytes())
}

/// Compile a job's plan the way `papar run` does: parse both documents,
/// derive the effective arguments, run the static-analysis gate, bind,
/// verify, lower, verify again.
fn compile_plan(
    spec: &JobSpec,
    cfg_text: &str,
    wf_text: &str,
    records: &[Record],
    options: &ExecOptions,
) -> Result<CachedPlan, String> {
    let records_in = records.len();
    let input_cfg =
        InputConfig::parse_str(cfg_text).map_err(|e| format!("{}: {e}", spec.input_config))?;
    let workflow =
        WorkflowConfig::parse_str(wf_text).map_err(|e| format!("{}: {e}", spec.workflow))?;

    let mut args: HashMap<String, String> = spec.args.iter().cloned().collect();
    for name in ["input_path", "input_file"] {
        if workflow.argument(name).is_some() && !args.contains_key(name) {
            args.insert(name.to_string(), spec.data.clone());
        }
    }
    for name in ["output_path"] {
        if workflow.argument(name).is_some() && !args.contains_key(name) {
            args.insert(name.to_string(), spec.out_dir.clone());
        }
    }

    let ctx = papar_check::CheckContext {
        args: args.clone(),
        nodes: Some(spec.nodes as usize),
        replication: Some(0),
        records: Some(records_in),
        ..Default::default()
    };
    let analysis = papar_check::analyze(&workflow, std::slice::from_ref(&input_cfg), &ctx);
    if analysis.has_errors() {
        let rendered: String = analysis
            .errors()
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect();
        return Err(format!(
            "{} rejected by static analysis:\n{rendered}(`papar check` re-runs this \
             analysis standalone)",
            spec.workflow
        ));
    }
    let warnings: Vec<String> = analysis.diagnostics.iter().map(|d| d.to_string()).collect();

    let planner = Planner::new(workflow, vec![input_cfg.clone()]);
    let plan = planner.bind(&args).map_err(|e| e.to_string())?;
    let divergences = papar_check::verify_plan(&analysis, &plan);
    if !divergences.is_empty() {
        return Err(format!(
            "plan-invariant verification failed:\n{}",
            papar_check::render_text(&divergences)
        ));
    }
    if plan.external_inputs.len() != 1 {
        return Err(format!(
            "the workflow expects {} external inputs; a submit provides exactly one (--data)",
            plan.external_inputs.len()
        ));
    }
    let input_name = plan.external_inputs[0].0.clone();

    // Adaptive planning: run the sampling pre-pass over the loaded
    // records and let the cost-based planner pick the knobs; the
    // decision travels with the cached plan and its rationale is folded
    // into the fingerprint below.
    let decision = if spec.adaptive {
        let batch = Batch::Flat(records.to_vec());
        let stats = papar_core::stats::collect_for_plan(
            &plan,
            |name| (name == input_name).then_some(&batch),
            options.sample_stride,
        )
        .map_err(|e| e.to_string())?;
        Some(papar_core::adaptive::choose(
            &plan,
            spec.nodes as usize,
            options,
            stats.as_ref(),
        ))
    } else {
        None
    };

    let toggles = decision
        .as_ref()
        .map(|d| d.knobs().fuse)
        .unwrap_or_else(|| papar_core::physplan::FuseToggles::from_flag(!spec.no_fuse));
    let phys = papar_core::physplan::lower_with(&plan, spec.nodes as usize, None, toggles);
    let divergences = papar_check::verify_physical_plan(&plan, &phys, spec.nodes as usize, None);
    if !divergences.is_empty() {
        return Err(format!(
            "physical-plan verification failed:\n{}",
            papar_check::render_text(&divergences)
        ));
    }
    let num_jobs = plan.jobs.len();
    let fingerprint = plan_fingerprint_with(
        &plan,
        &phys,
        spec.nodes as usize,
        options,
        decision.as_ref().map(|d| &d.rationale),
    );
    let schema = Arc::new(Schema::from_input_config(&input_cfg));
    Ok(CachedPlan {
        plan,
        phys,
        input_cfg,
        schema,
        warnings,
        input_name,
        num_jobs,
        fingerprint,
        decision,
    })
}

/// Run one job on the resident state. Returns the rendered outcome or
/// the failure message; never panics — any error travels back to the
/// client as the job's `Failed` detail.
pub fn execute(spec: &JobSpec, res: &mut Resources) -> Result<JobOutcome, String> {
    let started = Instant::now();
    if spec.nodes == 0 {
        return Err("--nodes must be at least 1".to_string());
    }
    let cfg_text = std::fs::read_to_string(&spec.input_config)
        .map_err(|e| format!("cannot read {}: {e}", spec.input_config))?;
    let wf_text = std::fs::read_to_string(&spec.workflow)
        .map_err(|e| format!("cannot read {}: {e}", spec.workflow))?;
    let meta =
        std::fs::metadata(&spec.data).map_err(|e| format!("cannot stat {}: {e}", spec.data))?;
    let mtime_ns = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);

    // Thread budget resolution happens here, not in ExecOptions::default,
    // so a request without an override cannot inherit the previous
    // request's setting from the reused cluster.
    let threads = spec
        .threads
        .map(|t| t as usize)
        .unwrap_or(res.default_threads)
        .max(1);
    let options = ExecOptions {
        threads: Some(threads),
        trace: true,
        fuse: !spec.no_fuse,
        zerocopy: !spec.no_zerocopy,
        adaptive: spec.adaptive,
        ..ExecOptions::default()
    };

    // Data first (the analysis gate inside planning needs the record
    // count): resident when the same file (same size/mtime/bound/
    // config) was decoded before.
    let data_misses_before = res.data.misses;
    let records = load_data(spec, &cfg_text, res, meta.len(), mtime_ns)?;
    let data_cache_hit = res.data.misses == data_misses_before;
    let records_in = records.len();

    // Plan: resident on a repeated request, compiled fresh otherwise.
    let shash = spec_hash(spec, &cfg_text, &wf_text, meta.len(), mtime_ns);
    let (cached, plan_cache_hit) = match res.plans.get_by_spec(shash) {
        Some(cached) => (cached, true),
        None => {
            let cached = Arc::new(compile_plan(spec, &cfg_text, &wf_text, &records, &options)?);
            res.plans.insert(shash, cached.clone());
            (cached, false)
        }
    };

    // Cluster: reuse unless the node count changed; reset wipes data,
    // traces, and fault state but keeps the thread budget.
    let rebuild = !matches!(&res.cluster, Some(c) if c.num_nodes() == spec.nodes as usize);
    if rebuild {
        res.cluster = Some(
            Cluster::try_new(spec.nodes as usize)
                .map_err(|e| e.to_string())?
                .with_replication(0)
                .with_retry(RetryPolicy {
                    max_attempts: 3,
                    ..RetryPolicy::default()
                }),
        );
    }
    let cluster = res.cluster.as_mut().expect("cluster just ensured");
    if !rebuild {
        cluster.reset();
    }

    let mut runner = WorkflowRunner::with_options(cached.plan.clone(), options);
    if let Some(d) = cached.decision.clone() {
        runner = runner.with_decision(d);
    }
    runner
        .scatter_input(
            cluster,
            &cached.input_name,
            Dataset::new(cached.schema.clone(), Batch::Flat((*records).clone())),
        )
        .map_err(|e| e.to_string())?;
    let report = runner.run(cluster).map_err(|e| e.to_string())?;

    // Write each output partition in the input's on-disk format, with
    // `papar run`'s exact file naming and codecs.
    std::fs::create_dir_all(&spec.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", spec.out_dir))?;
    let partitions = cluster
        .collect(&runner.plan().output_path)
        .map_err(|e| e.to_string())?;
    let out_dir = Path::new(&spec.out_dir);
    let mut files = Vec::with_capacity(partitions.len());
    for (i, part) in partitions.iter().enumerate() {
        let recs = part.batch.clone().flatten();
        let path = out_dir.join(match cached.input_cfg.format {
            InputFormat::Binary => format!("partition_{i:04}.bin"),
            InputFormat::Text => format!("partition_{i:04}.txt"),
        });
        match cached.input_cfg.format {
            InputFormat::Binary => {
                let bytes = papar_record::codec::binary::write(
                    &cached.input_cfg,
                    &part.schema,
                    &recs,
                    None,
                )
                .map_err(|e| e.to_string())?;
                std::fs::write(&path, bytes)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            }
            InputFormat::Text => {
                let text = papar_record::codec::text::write(&cached.input_cfg, &part.schema, &recs)
                    .map_err(|e| e.to_string())?;
                std::fs::write(&path, text)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            }
        }
        files.push(path);
    }

    // Render the report the way `papar run` prints its summary, plus
    // the cache verdicts and the profile table from this request's
    // span tree.
    let mut detail = String::new();
    for w in &cached.warnings {
        let _ = writeln!(detail, "{w}");
    }
    let _ = writeln!(detail, "read {records_in} records from {}", spec.data);
    let _ = writeln!(
        detail,
        "plan {:#018x}: cache {}",
        cached.fingerprint,
        if plan_cache_hit { "hit" } else { "miss" }
    );
    let _ = writeln!(
        detail,
        "data {}: cache {}",
        spec.data,
        if data_cache_hit { "hit" } else { "miss" }
    );
    if let Some(d) = &cached.decision {
        detail.push_str(&d.rationale.render());
    }
    for note in &report.notes {
        let _ = writeln!(detail, "note: {note}");
    }
    for stats in &report.jobs {
        let _ = writeln!(
            detail,
            "job '{}': {:?} simulated, {} bytes shuffled",
            stats.name,
            stats.sim_time(),
            stats.exchange.remote_bytes
        );
    }
    let _ = writeln!(
        detail,
        "total simulated partitioning time: {:?}",
        report.total_sim_time()
    );
    let _ = writeln!(detail, "wrote {} partitions:", files.len());
    for f in &files {
        let _ = writeln!(detail, "  {}", f.display());
    }
    if let Some(trace) = &report.trace {
        detail.push_str(&papar_trace::render_profile(trace));
    }

    Ok(JobOutcome {
        detail,
        plan_fingerprint: cached.fingerprint,
        plan_cache_hit,
        data_cache_hit,
        wall_ms: started.elapsed().as_millis() as u64,
        sim_ns: report.total_sim_time().as_nanos() as u64,
    })
}

/// Fetch the decoded input through the data cache. A miss parses the
/// input config (cheap — a page of XML) and decodes the file; the
/// expensive decode is what the cache elides.
fn load_data(
    spec: &JobSpec,
    cfg_text: &str,
    res: &mut Resources,
    len: u64,
    mtime_ns: u128,
) -> Result<Arc<Vec<Record>>, String> {
    let key = DataKey {
        path: spec.data.clone(),
        len,
        mtime_ns,
        records: spec.records,
        config_hash: wire::checksum(cfg_text.as_bytes()),
    };
    if let Some(records) = res.data.get(&key) {
        return Ok(records);
    }
    let cfg =
        InputConfig::parse_str(cfg_text).map_err(|e| format!("{}: {e}", spec.input_config))?;
    let schema = Arc::new(Schema::from_input_config(&cfg));
    let records = Arc::new(load_records(
        &cfg,
        &schema,
        Path::new(&spec.data),
        spec.records.map(|n| n as usize),
    )?);
    res.data.insert(key, records.clone());
    Ok(records)
}
