//! `papar serve`: the resident partitioning daemon.
//!
//! A one-shot `papar run` pays the whole pipeline — parse the XML
//! documents, bind and verify the plan, read and decode the input file —
//! for every invocation, even when a workload submits the *same*
//! workflow over the *same* data dozens of times (parameter sweeps, the
//! paper's figure reproductions, downstream services partitioning on
//! demand). This crate keeps all of that resident:
//!
//! * a daemon ([`server::Server`]) listens on a Unix or TCP socket and
//!   speaks a hand-rolled length-prefixed frame protocol
//!   ([`protocol`]) built on the same `[len][fnv1a][payload]` frames
//!   and FNV-1a checksums the engine's wire format already uses — the
//!   repo stays dependency-free;
//! * compiled [`papar_core::plan::WorkflowPlan`]s (and their lowered
//!   physical plans) live in an LRU cache keyed by the *plan
//!   fingerprint* ([`papar_core::exec::plan_fingerprint`]), decoded
//!   input files in a second LRU keyed by path + size + mtime
//!   ([`cache`]);
//! * requests run through the existing
//!   [`papar_core::exec::WorkflowRunner`] on one resident
//!   [`papar_mr::Cluster`] that is [`papar_mr::Cluster::reset`] between
//!   jobs — same engine, same output bytes as `papar run`;
//! * concurrent clients enqueue into a bounded FIFO job queue
//!   ([`queue`]) with per-job ids and `queued/running/done/failed`
//!   states; at capacity, admission control answers a typed
//!   [`ServeError::QueueFull`] instead of blocking or dropping;
//! * each request captures a `papar-trace` span tree, so
//!   `papar status <job-id>` can return the completed job's stats and
//!   profile table (or its live queue position).
//!
//! The client half ([`client::Client`]) backs `papar submit` /
//! `papar status` and is what the tests drive.

pub mod cache;
pub mod client;
pub mod job;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use protocol::{Endpoint, JobReport, JobSpec, JobStateKind, Request, Response};
pub use server::{ServeOptions, Server};

/// Everything that can go wrong between a client and the daemon. Typed,
/// so callers can branch on admission control and protocol faults
/// without parsing message strings; the daemon itself never panics and
/// never silently drops a request — every failure travels back as one
/// of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The job queue is at capacity; the submit was refused at
    /// admission. Resubmit after a job drains.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// `status`/`wait` named a job id this daemon has never issued.
    UnknownJob {
        /// The id the client asked about.
        id: u64,
    },
    /// A frame failed to decode: short header, oversized length,
    /// truncated payload, checksum mismatch, or an unknown message tag.
    BadFrame {
        /// What exactly was wrong.
        detail: String,
    },
    /// The daemon is shutting down and no longer admits work.
    ShuttingDown,
    /// Socket-level failure (connect, read, write, bind).
    Io {
        /// Rendered `std::io::Error`.
        detail: String,
    },
    /// The request was well-formed but unservable (bad spec fields,
    /// startup misconfiguration such as a malformed `PAPAR_THREADS`).
    Rejected {
        /// What was wrong with the request.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => write!(
                f,
                "job queue is full ({capacity} jobs); retry after one drains"
            ),
            ServeError::UnknownJob { id } => write!(f, "no such job: {id}"),
            ServeError::BadFrame { detail } => write!(f, "bad frame: {detail}"),
            ServeError::ShuttingDown => write!(f, "daemon is shutting down"),
            ServeError::Io { detail } => write!(f, "socket error: {detail}"),
            ServeError::Rejected { detail } => write!(f, "request rejected: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            detail: e.to_string(),
        }
    }
}
