//! The client half: what `papar submit` / `papar status` (and the
//! tests) use to talk to a daemon.

use crate::protocol::{
    read_frame, write_frame, DaemonStats, Endpoint, JobReport, JobSpec, Request, Response,
};
use crate::ServeError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

trait StreamIo: Read + Write {}
impl<T: Read + Write> StreamIo for T {}

/// One connection to a daemon. Requests are strictly sequential
/// (write one frame, read one frame); open more clients for
/// concurrency.
pub struct Client {
    stream: Box<dyn StreamIo>,
}

impl Client {
    /// Connect to a daemon's endpoint.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ServeError> {
        let stream: Box<dyn StreamIo> = match endpoint {
            Endpoint::Unix(path) => {
                Box::new(UnixStream::connect(path).map_err(|e| ServeError::Io {
                    detail: format!("cannot connect to {}: {e}", path.display()),
                })?)
            }
            Endpoint::Tcp(addr) => {
                Box::new(TcpStream::connect(addr).map_err(|e| ServeError::Io {
                    detail: format!("cannot connect to {addr}: {e}"),
                })?)
            }
        };
        Ok(Client { stream })
    }

    /// Send one request, read one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload),
            None => Err(ServeError::Io {
                detail: "daemon closed the connection without answering".to_string(),
            }),
        }
    }

    /// Health check; returns the daemon's lifetime counters.
    pub fn ping(&mut self) -> Result<DaemonStats, ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong { stats, .. } => Ok(stats),
            Response::Err(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Enqueue a job; returns `(job id, queue position)`.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(u64, u32), ServeError> {
        match self.request(&Request::Submit(spec))? {
            Response::Submitted { id, position } => Ok((id, position)),
            Response::Err(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// One-shot state query.
    pub fn status(&mut self, id: u64) -> Result<JobReport, ServeError> {
        match self.request(&Request::Status { id })? {
            Response::Job(report) => Ok(report),
            Response::Err(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Block until the job completes or fails, then return its report.
    pub fn wait(&mut self, id: u64) -> Result<JobReport, ServeError> {
        match self.request(&Request::Wait { id })? {
            Response::Job(report) => Ok(report),
            Response::Err(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::BadFrame {
        detail: format!("daemon answered with the wrong message type: {resp:?}"),
    }
}
