//! The daemon's bounded FIFO job queue.
//!
//! Connection handler threads *admit* jobs; one worker thread *drains*
//! them in submission order onto the resident cluster, so two jobs
//! never contend for the engine. Admission control is strict: at
//! capacity, `submit` answers a typed [`ServeError::QueueFull`]
//! immediately — the daemon never blocks a client on a full queue and
//! never silently drops a request. Completed jobs stay in the table so
//! `papar status` keeps working after the fact; only *pending* entries
//! count against capacity.

use crate::protocol::{CacheOutcome, JobReport, JobSpec, JobStateKind};
use crate::ServeError;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What a finished job leaves behind for `status`/`wait`.
#[derive(Debug, Clone, Default)]
pub struct JobOutcome {
    /// Rendered summary + profile table (or nothing on failure).
    pub detail: String,
    /// Plan fingerprint the plan cache keyed this job by.
    pub plan_fingerprint: u64,
    /// Whether the compiled plan was served from cache.
    pub plan_cache_hit: bool,
    /// Whether the decoded input was served from cache.
    pub data_cache_hit: bool,
    /// Wall-clock milliseconds spent executing.
    pub wall_ms: u64,
    /// Simulated partitioning time in nanoseconds.
    pub sim_ns: u64,
}

#[derive(Debug)]
enum JobStatus {
    Queued,
    Running,
    Done(JobOutcome),
    Failed(String),
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    status: JobStatus,
}

#[derive(Debug, Default)]
struct Inner {
    /// Ids waiting to run, oldest first.
    pending: VecDeque<u64>,
    /// Every job ever admitted, by id (completed ones included).
    jobs: HashMap<u64, JobEntry>,
    next_id: u64,
    /// Closed queues admit nothing; the worker drains what remains.
    closed: bool,
}

/// The shared queue. All methods are safe to call from any thread.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    /// Signaled on every admit, completion, and close.
    changed: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                next_id: 1,
                ..Inner::default()
            }),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission limit on pending (queued + running) jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit a job. Returns its id and queue position, or the typed
    /// admission failure.
    pub fn submit(&self, spec: JobSpec) -> Result<(u64, u32), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        let running = inner
            .jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Running))
            .count();
        if inner.pending.len() + running >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let position = inner.pending.len() as u32;
        inner.pending.push_back(id);
        inner.jobs.insert(
            id,
            JobEntry {
                spec,
                status: JobStatus::Queued,
            },
        );
        self.changed.notify_all();
        Ok((id, position))
    }

    /// Worker side: take the oldest queued job and mark it running.
    /// Blocks up to `timeout` when the queue is empty; `None` means
    /// nothing arrived (poll your shutdown flag and call again).
    pub fn next_job(&self, timeout: Duration) -> Option<(u64, JobSpec)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.pending.is_empty() && !inner.closed {
            let (guard, _) = self.changed.wait_timeout(inner, timeout).unwrap();
            inner = guard;
        }
        let id = inner.pending.pop_front()?;
        let entry = inner.jobs.get_mut(&id).expect("pending id has an entry");
        entry.status = JobStatus::Running;
        let spec = entry.spec.clone();
        self.changed.notify_all();
        Some((id, spec))
    }

    /// Worker side: record a job's terminal state and wake waiters.
    pub fn complete(&self, id: u64, result: Result<JobOutcome, String>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.status = match result {
                Ok(outcome) => JobStatus::Done(outcome),
                Err(msg) => JobStatus::Failed(msg),
            };
        }
        self.changed.notify_all();
    }

    /// Stop admitting; already-queued jobs still drain. Wakes every
    /// waiter so blocked `wait`s and the worker notice.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.changed.notify_all();
    }

    /// Whether [`JobQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Whether any job is still queued or running (a closing daemon
    /// exits only once this is false).
    pub fn has_pending(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        !inner.pending.is_empty()
            || inner
                .jobs
                .values()
                .any(|j| matches!(j.status, JobStatus::Running))
    }

    /// One-shot state snapshot for `papar status`.
    pub fn report(&self, id: u64) -> Result<JobReport, ServeError> {
        let inner = self.inner.lock().unwrap();
        Self::report_locked(&inner, id)
    }

    /// Block until the job reaches `Done`/`Failed`, then report it.
    /// Unblocks with the current (non-terminal) state if the queue
    /// closes while the job is still pending and it will never run.
    pub fn wait(&self, id: u64) -> Result<JobReport, ServeError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let report = Self::report_locked(&inner, id)?;
            match report.state {
                JobStateKind::Done | JobStateKind::Failed => return Ok(report),
                _ => {}
            }
            inner = self.changed.wait(inner).unwrap();
        }
    }

    fn report_locked(inner: &Inner, id: u64) -> Result<JobReport, ServeError> {
        let entry = inner.jobs.get(&id).ok_or(ServeError::UnknownJob { id })?;
        let mut report = JobReport {
            id,
            state: JobStateKind::Running,
            detail: String::new(),
            plan_fingerprint: 0,
            plan_cache: CacheOutcome::Pending,
            data_cache: CacheOutcome::Pending,
            wall_ms: 0,
            sim_ns: 0,
        };
        match &entry.status {
            JobStatus::Queued => {
                let position = inner.pending.iter().position(|&p| p == id).unwrap_or(0) as u32;
                report.state = JobStateKind::Queued { position };
            }
            JobStatus::Running => {}
            JobStatus::Done(outcome) => {
                report.state = JobStateKind::Done;
                report.detail = outcome.detail.clone();
                report.plan_fingerprint = outcome.plan_fingerprint;
                report.plan_cache = if outcome.plan_cache_hit {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                };
                report.data_cache = if outcome.data_cache_hit {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                };
                report.wall_ms = outcome.wall_ms;
                report.sim_ns = outcome.sim_ns;
            }
            JobStatus::Failed(msg) => {
                report.state = JobStateKind::Failed;
                report.detail = msg.clone();
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tag: &str) -> JobSpec {
        JobSpec {
            workflow: tag.to_string(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn fifo_order_and_positions() {
        let q = JobQueue::new(4);
        let (a, pa) = q.submit(spec("a")).unwrap();
        let (b, pb) = q.submit(spec("b")).unwrap();
        assert_eq!((pa, pb), (0, 1));
        assert!(matches!(
            q.report(b).unwrap().state,
            JobStateKind::Queued { position: 1 }
        ));
        let (first, s) = q.next_job(Duration::ZERO).unwrap();
        assert_eq!((first, s.workflow.as_str()), (a, "a"));
        // b moves up once a leaves the queue.
        assert!(matches!(
            q.report(b).unwrap().state,
            JobStateKind::Queued { position: 0 }
        ));
        assert!(matches!(q.report(a).unwrap().state, JobStateKind::Running));
    }

    #[test]
    fn admission_control_is_typed_and_counts_running_jobs() {
        let q = JobQueue::new(2);
        q.submit(spec("a")).unwrap();
        q.submit(spec("b")).unwrap();
        assert_eq!(
            q.submit(spec("c")),
            Err(ServeError::QueueFull { capacity: 2 })
        );
        // Starting a job keeps it counted: still full.
        q.next_job(Duration::ZERO).unwrap();
        assert_eq!(
            q.submit(spec("c")),
            Err(ServeError::QueueFull { capacity: 2 })
        );
        // Completion frees the slot.
        q.complete(1, Ok(JobOutcome::default()));
        q.submit(spec("c")).unwrap();
    }

    #[test]
    fn completed_jobs_remain_queryable() {
        let q = JobQueue::new(2);
        let (id, _) = q.submit(spec("a")).unwrap();
        q.next_job(Duration::ZERO).unwrap();
        q.complete(
            id,
            Ok(JobOutcome {
                detail: "42 partitions".into(),
                plan_fingerprint: 7,
                plan_cache_hit: true,
                ..JobOutcome::default()
            }),
        );
        let report = q.report(id).unwrap();
        assert_eq!(report.state, JobStateKind::Done);
        assert_eq!(report.detail, "42 partitions");
        assert_eq!(report.plan_cache, CacheOutcome::Hit);
        assert_eq!(q.report(99), Err(ServeError::UnknownJob { id: 99 }));
    }

    #[test]
    fn failures_carry_their_message() {
        let q = JobQueue::new(2);
        let (id, _) = q.submit(spec("a")).unwrap();
        q.next_job(Duration::ZERO).unwrap();
        q.complete(id, Err("static analysis refused".into()));
        let report = q.report(id).unwrap();
        assert_eq!(report.state, JobStateKind::Failed);
        assert!(report.detail.contains("refused"));
    }

    #[test]
    fn closed_queue_refuses_new_work_but_drains_old() {
        let q = JobQueue::new(4);
        let (id, _) = q.submit(spec("a")).unwrap();
        q.close();
        assert_eq!(q.submit(spec("b")), Err(ServeError::ShuttingDown));
        assert!(q.has_pending());
        let (got, _) = q.next_job(Duration::ZERO).unwrap();
        assert_eq!(got, id);
        q.complete(id, Ok(JobOutcome::default()));
        assert!(!q.has_pending());
    }

    #[test]
    fn wait_blocks_until_terminal() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        let (id, _) = q.submit(spec("a")).unwrap();
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || q.wait(id).unwrap())
        };
        let (got, _) = q.next_job(Duration::from_secs(1)).unwrap();
        assert_eq!(got, id);
        q.complete(
            id,
            Ok(JobOutcome {
                sim_ns: 123,
                ..JobOutcome::default()
            }),
        );
        let report = waiter.join().unwrap();
        assert_eq!(report.state, JobStateKind::Done);
        assert_eq!(report.sim_ns, 123);
    }
}
