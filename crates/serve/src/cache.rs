//! The daemon's resident caches.
//!
//! Two LRUs, both hand-rolled over `HashMap` (no dependencies):
//!
//! * [`PlanCache`] holds compiled plans — the bound
//!   [`WorkflowPlan`], its lowered physical plan, the parsed input
//!   configuration, the derived schema, and the static-analysis
//!   warnings — keyed by the *plan fingerprint*
//!   ([`papar_core::exec::plan_fingerprint`]): the FNV-1a hash of
//!   everything plan-side that decides output bytes. A same-fingerprint
//!   resubmit skips parsing, binding, verification, and lowering
//!   entirely. Because computing the fingerprint itself requires
//!   planning, the cache carries a second *spec-hash* index (hash of
//!   the raw request: document bytes, effective arguments, cluster
//!   size, toggles) that maps a repeated request to its fingerprint
//!   without touching the planner.
//! * [`DataCache`] holds decoded input files keyed by path, file size,
//!   mtime, the record bound, and the input-config hash, so a changed
//!   or truncated file can never serve stale records.
//!
//! Neither cache is consulted for correctness — a miss just does what
//! `papar run` always does. Hit/miss counters feed the daemon stats so
//! the bench harness and CI can prove work was elided.

use papar_config::InputConfig;
use papar_core::physplan::PhysicalPlan;
use papar_core::plan::WorkflowPlan;
use papar_record::{Record, Schema};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A minimal LRU: a map from key to (last-use tick, value), evicting
/// the smallest tick at capacity. O(n) eviction is fine at daemon cache
/// sizes (single digits to low hundreds).
#[derive(Debug)]
pub struct Lru<K: Eq + Hash + Clone, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` entries (min 1).
    pub fn new(cap: usize) -> Self {
        Lru {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up and mark as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.0 = tick;
                Some(&slot.1)
            }
            None => None,
        }
    }

    /// Insert, evicting the least recently used entry at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Whether a key is resident (without touching recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Everything planning produced for one fingerprint, ready to execute.
/// The plan is cloned out per run ([`WorkflowRunner`] takes it by
/// value); everything else is shared.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The bound logical plan.
    pub plan: WorkflowPlan,
    /// Its lowered physical plan (same nodes/fuse as the request).
    pub phys: PhysicalPlan,
    /// The parsed input configuration (decides the output file codec).
    pub input_cfg: InputConfig,
    /// Schema derived from the input configuration.
    pub schema: Arc<Schema>,
    /// Warning-severity diagnostics from the static-analysis gate.
    pub warnings: Vec<String>,
    /// The dataset name of the plan's single external input.
    pub input_name: String,
    /// Logical job count (sizes the fault schedule in `papar run`; kept
    /// for parity).
    pub num_jobs: usize,
    /// The plan fingerprint this entry is keyed by.
    pub fingerprint: u64,
    /// The adaptive planner's decision (None without `--adaptive`). Its
    /// rationale — including the input-statistics fingerprint — is
    /// folded into [`CachedPlan::fingerprint`], so a data-file change
    /// under adaptive planning is a different plan, never a stale hit.
    pub decision: Option<papar_core::adaptive::PlanDecision>,
}

/// Compiled plans by fingerprint, with the spec-hash side index.
#[derive(Debug)]
pub struct PlanCache {
    lru: Lru<u64, Arc<CachedPlan>>,
    /// spec hash → fingerprint. May point at an evicted fingerprint;
    /// that lookup falls through to a miss and recompiles.
    index: HashMap<u64, u64>,
    /// Lifetime hits (lookups that skipped the planner).
    pub hits: u64,
    /// Lifetime misses (plans compiled fresh).
    pub misses: u64,
}

impl PlanCache {
    /// An empty cache holding at most `cap` compiled plans.
    pub fn new(cap: usize) -> Self {
        PlanCache {
            lru: Lru::new(cap),
            index: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up by the raw request's spec hash. A hit means "this exact
    /// request was planned before and the plan is still resident".
    pub fn get_by_spec(&mut self, spec_hash: u64) -> Option<Arc<CachedPlan>> {
        let fp = *self.index.get(&spec_hash)?;
        let cached = self.lru.get(&fp).cloned();
        if cached.is_some() {
            self.hits += 1;
        }
        cached
    }

    /// Insert a freshly compiled plan under its fingerprint and index
    /// the spec hash that produced it. Counts as a miss.
    pub fn insert(&mut self, spec_hash: u64, plan: Arc<CachedPlan>) {
        self.misses += 1;
        self.index.insert(spec_hash, plan.fingerprint);
        self.lru.insert(plan.fingerprint, plan);
        // The index is tiny (8+8 bytes per entry) but unbounded in
        // principle; prune entries whose plan was evicted once it
        // outgrows the cache by a wide margin.
        if self.index.len() > self.lru.cap * 8 + 64 {
            let lru = &self.lru;
            self.index.retain(|_, fp| lru.contains(fp));
        }
    }

    /// Compiled plans currently resident.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

/// Cache key for one decoded input file. Size and mtime make a changed
/// file a guaranteed miss; the config hash covers schema changes that
/// would decode the same bytes differently; the record bound is part of
/// the identity because `--records 100` and `--records 200` decode
/// different prefixes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataKey {
    /// The data file path as submitted.
    pub path: String,
    /// File size in bytes at load time.
    pub len: u64,
    /// Modification time (nanoseconds since the epoch) at load time.
    pub mtime_ns: u128,
    /// The `--records` bound, part of the decode identity.
    pub records: Option<u64>,
    /// FNV-1a of the input-config document text.
    pub config_hash: u64,
}

/// Decoded input files. Values are `Arc`ed so a hit shares the records
/// with the cache; the executor clones the `Vec` only when scattering.
#[derive(Debug)]
pub struct DataCache {
    lru: Lru<DataKey, Arc<Vec<Record>>>,
    /// Lifetime hits (files *not* re-read and re-decoded).
    pub hits: u64,
    /// Lifetime misses.
    pub misses: u64,
}

impl DataCache {
    /// An empty cache holding at most `cap` decoded files.
    pub fn new(cap: usize) -> Self {
        DataCache {
            lru: Lru::new(cap),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a decoded file.
    pub fn get(&mut self, key: &DataKey) -> Option<Arc<Vec<Record>>> {
        let hit = self.lru.get(key).cloned();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Insert a freshly decoded file. Counts as a miss.
    pub fn insert(&mut self, key: DataKey, records: Arc<Vec<Record>>) {
        self.misses += 1;
        self.lru.insert(key, records);
    }

    /// Decoded files currently resident.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether no files are resident.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some(&"a")); // 1 is now fresher than 2
        lru.insert(3, "c"); // evicts 2
        assert_eq!(lru.len(), 2);
        assert!(lru.contains(&1));
        assert!(!lru.contains(&2));
        assert!(lru.contains(&3));
    }

    #[test]
    fn lru_reinsert_updates_in_place() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.insert(1, "a2"); // update, no eviction
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(&"a2"));
        assert!(lru.contains(&2));
    }

    #[test]
    fn data_key_distinguishes_mtime_and_record_bound() {
        let key = |mtime_ns: u128, records: Option<u64>| DataKey {
            path: "/d/x.db".into(),
            len: 4096,
            mtime_ns,
            records,
            config_hash: 99,
        };
        let mut cache = DataCache::new(4);
        cache.insert(key(1, None), Arc::new(Vec::new()));
        assert!(cache.get(&key(1, None)).is_some());
        assert!(cache.get(&key(2, None)).is_none(), "newer mtime must miss");
        assert!(
            cache.get(&key(1, Some(10))).is_none(),
            "different --records must miss"
        );
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }
}
