//! End-to-end tests of the MapReduce engine on the simulated cluster.

use papar_config::input::FieldType;
use papar_mr::engine::{FnMapper, FnReducer, HashPartitioner, IdentityPartitioner};
use papar_mr::sampler::RangePartitioner;
use papar_mr::{Cluster, Entry, MapInput, MapReduceJob};
use papar_record::batch::{Batch, Dataset};
use papar_record::{rec, Record, Schema, Value};
use std::sync::Arc;

fn int_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![("k", FieldType::Integer)]))
}

fn pair_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        ("src", FieldType::Integer),
        ("dst", FieldType::Integer),
    ]))
}

fn int_dataset(vals: &[i32]) -> Dataset {
    Dataset::new(
        int_schema(),
        Batch::Flat(vals.iter().map(|&v| rec![v]).collect()),
    )
}

fn collect_ints(cluster: &Cluster, name: &str) -> Vec<Vec<i32>> {
    cluster
        .collect(name)
        .unwrap()
        .into_iter()
        .map(|d| {
            d.batch
                .flatten()
                .iter()
                .map(|r| r.value(0).unwrap().as_i64().unwrap() as i32)
                .collect()
        })
        .collect()
}

/// The identity mapper: emit each record keyed by its first field.
#[allow(clippy::type_complexity)]
fn key_by_first(
) -> FnMapper<impl Fn(&papar_mr::TaskCtx, &[MapInput]) -> papar_mr::Result<Vec<(Value, Entry)>>> {
    FnMapper(|_ctx: &papar_mr::TaskCtx, inputs: &[MapInput]| {
        let mut out = Vec::new();
        for MapInput { data: ds, .. } in inputs {
            for r in ds.batch.clone().flatten() {
                let key = r.value(0).unwrap().clone();
                out.push((key, Entry::Rec(r)));
            }
        }
        Ok(out)
    })
}

/// The pass-through reducer: strip keys, keep entries in delivered order.
#[allow(clippy::type_complexity)]
fn strip_keys(
) -> FnReducer<impl Fn(&papar_mr::TaskCtx, Vec<(Value, Entry)>) -> papar_mr::Result<Batch>> {
    FnReducer(|_ctx: &papar_mr::TaskCtx, pairs: Vec<(Value, Entry)>| {
        let mut records = Vec::new();
        for (_, e) in pairs {
            match e {
                Entry::Rec(r) => records.push(r),
                Entry::Packed(p) => records.extend(p.records),
            }
        }
        Ok(Batch::Flat(records))
    })
}

#[test]
fn range_sorted_job_produces_globally_sorted_output() {
    let mut cluster = Cluster::new(4);
    let vals: Vec<i32> = (0..200).map(|i| (i * 37) % 200).collect();
    cluster.scatter("in", int_dataset(&vals)).unwrap();

    let samples: Vec<Vec<Value>> = vec![vals.iter().map(|&v| Value::Int(v)).collect()];
    let part = RangePartitioner::from_samples(&samples, 3).unwrap();
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "sort".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &part,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    let stats = cluster.run_job(&job).unwrap();
    assert_eq!(stats.records_in, 200);
    assert_eq!(stats.records_out, 200);
    assert_eq!(stats.pairs_shuffled, 200);

    let parts = collect_ints(&cluster, "out");
    assert_eq!(parts.len(), 3);
    let concat: Vec<i32> = parts.concat();
    let mut expect = vals.clone();
    expect.sort();
    assert_eq!(
        concat, expect,
        "concatenated reducer outputs must be sorted"
    );
}

#[test]
fn identity_partitioner_routes_to_named_reducer() {
    let mut cluster = Cluster::new(2);
    cluster
        .scatter("in", int_dataset(&[5, 6, 7, 8, 9]))
        .unwrap();

    // Key = target partition (v % 3), like a distribute job's reduce-key.
    let mapper = FnMapper(|_: &papar_mr::TaskCtx, inputs: &[MapInput]| {
        let mut out = Vec::new();
        for MapInput { data: ds, .. } in inputs {
            for r in ds.batch.clone().flatten() {
                let v = r.value(0).unwrap().as_i64().unwrap();
                out.push((Value::Int((v % 3) as i32), Entry::Rec(r)));
            }
        }
        Ok(out)
    });
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "distr".into(),
        inputs: vec!["in".into()],
        output: "parts".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &IdentityPartitioner,
        reducer: &reducer,
        sort_by_key: false,
        descending: false,
        compress_key: None,
    };
    cluster.run_job(&job).unwrap();
    let parts = collect_ints(&cluster, "parts");
    assert_eq!(parts.len(), 3);
    assert_eq!(parts[0], vec![6, 9]);
    assert_eq!(parts[1], vec![7]);
    assert_eq!(parts[2], vec![5, 8]);
}

#[test]
fn hash_grouping_collects_equal_keys_on_one_reducer() {
    let mut cluster = Cluster::new(3);
    let vals: Vec<i32> = (0..90).map(|i| i % 9).collect();
    cluster.scatter("in", int_dataset(&vals)).unwrap();
    let mapper = key_by_first();
    // Reducer asserts all its keys group contiguously after key sorting.
    let reducer = FnReducer(|_: &papar_mr::TaskCtx, pairs: Vec<(Value, Entry)>| {
        let keys: Vec<&Value> = pairs.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "engine must deliver key-sorted pairs");
        let mut records = Vec::new();
        for (_, e) in pairs {
            if let Entry::Rec(r) = e {
                records.push(r);
            }
        }
        Ok(Batch::Flat(records))
    });
    let job = MapReduceJob {
        name: "group".into(),
        inputs: vec!["in".into()],
        output: "grouped".into(),
        num_reducers: 4,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    cluster.run_job(&job).unwrap();
    // Every key's 10 copies must land in exactly one fragment.
    let parts = collect_ints(&cluster, "grouped");
    for key in 0..9 {
        let holders = parts.iter().filter(|p| p.contains(&key)).count();
        assert_eq!(holders, 1, "key {key} split across reducers");
        let total: usize = parts
            .iter()
            .map(|p| p.iter().filter(|&&v| v == key).count())
            .sum();
        assert_eq!(total, 10);
    }
}

#[test]
fn packed_entries_survive_shuffle_with_and_without_compression() {
    for compress in [None, Some(1)] {
        let mut cluster = Cluster::new(2);
        let rows = vec![rec![2, 1], rec![3, 1], rec![4, 1], rec![1, 2]];
        let packed = Batch::Flat(rows).pack_by(1).unwrap();
        cluster
            .scatter("in", Dataset::new(pair_schema(), packed))
            .unwrap();

        let mapper = FnMapper(|_: &papar_mr::TaskCtx, inputs: &[MapInput]| {
            let mut out = Vec::new();
            for MapInput { data: ds, .. } in inputs {
                for g in ds.batch.as_packed().unwrap() {
                    out.push((g.key.clone(), Entry::Packed(g.clone())));
                }
            }
            Ok(out)
        });
        let reducer = FnReducer(|_: &papar_mr::TaskCtx, pairs: Vec<(Value, Entry)>| {
            let mut groups = Vec::new();
            for (_, e) in pairs {
                if let Entry::Packed(p) = e {
                    groups.push(p);
                } else {
                    panic!("expected packed entries");
                }
            }
            Ok(Batch::Packed(groups))
        });
        let job = MapReduceJob {
            name: "shuffle-packed".into(),
            inputs: vec!["in".into()],
            output: "out".into(),
            num_reducers: 2,
            map_output_schema: pair_schema(),
            output_schema: pair_schema(),
            mapper: &mapper,
            partitioner: &HashPartitioner,
            reducer: &reducer,
            sort_by_key: true,
            descending: false,
            compress_key: compress,
        };
        cluster.run_job(&job).unwrap();
        let out = cluster.collect_concat("out").unwrap();
        assert_eq!(out.batch.record_count(), 4, "compress={compress:?}");
        // Every member record still carries its key field after decode.
        for g in out.batch.as_packed().unwrap() {
            for r in &g.records {
                assert_eq!(r.value(1).unwrap(), &g.key);
            }
        }
    }
}

#[test]
fn compression_reduces_shuffled_bytes_on_redundant_groups() {
    // Build one big packed group per node so most traffic is packed data.
    let run = |compress: Option<usize>| -> u64 {
        let mut cluster = Cluster::new(2);
        let mut rows = Vec::new();
        for g in 0..20 {
            for i in 0..20 {
                rows.push(rec![g * 100 + i, g]); // 20 edges into each of 20 vertices
            }
        }
        let packed = Batch::Flat(rows).pack_by(1).unwrap();
        cluster
            .scatter("in", Dataset::new(pair_schema(), packed))
            .unwrap();
        let mapper = FnMapper(|_: &papar_mr::TaskCtx, inputs: &[MapInput]| {
            let mut out = Vec::new();
            for MapInput { data: ds, .. } in inputs {
                for g in ds.batch.as_packed().unwrap() {
                    out.push((g.key.clone(), Entry::Packed(g.clone())));
                }
            }
            Ok(out)
        });
        let reducer = FnReducer(|_: &papar_mr::TaskCtx, pairs: Vec<(Value, Entry)>| {
            let mut groups = Vec::new();
            for (_, e) in pairs {
                if let Entry::Packed(p) = e {
                    groups.push(p);
                }
            }
            Ok(Batch::Packed(groups))
        });
        // Force cross-node traffic: single reducer on node 0.
        let job = MapReduceJob {
            name: "c".into(),
            inputs: vec!["in".into()],
            output: "out".into(),
            num_reducers: 1,
            map_output_schema: pair_schema(),
            output_schema: pair_schema(),
            mapper: &mapper,
            partitioner: &HashPartitioner,
            reducer: &reducer,
            sort_by_key: true,
            descending: false,
            compress_key: compress,
        };
        let stats = cluster.run_job(&job).unwrap();
        stats.exchange.remote_bytes
    };
    let plain = run(None);
    let compressed = run(Some(1));
    assert!(
        compressed < plain,
        "CSC compression should shrink the shuffle: {compressed} >= {plain}"
    );
}

#[test]
fn results_are_deterministic_across_runs_and_node_counts_content() {
    let vals: Vec<i32> = (0..500).map(|i| (i * 131) % 97).collect();
    let run = |nodes: usize| -> Vec<Vec<i32>> {
        let mut cluster = Cluster::new(nodes);
        cluster.scatter("in", int_dataset(&vals)).unwrap();
        let samples: Vec<Vec<Value>> = vec![vals.iter().map(|&v| Value::Int(v)).collect()];
        let part = RangePartitioner::from_samples(&samples, 4).unwrap();
        let mapper = key_by_first();
        let reducer = strip_keys();
        let job = MapReduceJob {
            name: "sort".into(),
            inputs: vec!["in".into()],
            output: "out".into(),
            num_reducers: 4,
            map_output_schema: int_schema(),
            output_schema: int_schema(),
            mapper: &mapper,
            partitioner: &part,
            reducer: &reducer,
            sort_by_key: true,
            descending: false,
            compress_key: None,
        };
        cluster.run_job(&job).unwrap();
        collect_ints(&cluster, "out")
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(
        a, b,
        "same cluster size must reproduce identical partitions"
    );
    // Different node counts keep the same *sorted content* per reducer
    // because the range partitioner fixes reducer ranges.
    let c = run(5);
    assert_eq!(a, c, "reducer ranges are node-count independent");
}

#[test]
fn zero_reducers_is_an_error() {
    let mut cluster = Cluster::new(2);
    cluster.scatter("in", int_dataset(&[1])).unwrap();
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "bad".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 0,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: false,
        descending: false,
        compress_key: None,
    };
    assert!(cluster.run_job(&job).is_err());
}

#[test]
fn out_of_range_partitioner_is_rejected() {
    struct Bad;
    impl papar_mr::Partitioner for Bad {
        fn reducer_for(&self, _: &Value, n: usize) -> papar_mr::Result<usize> {
            // Returns in-band instead of erroring — the engine's
            // defensive check must still reject it.
            Ok(n + 5)
        }
    }
    let mut cluster = Cluster::new(2);
    cluster.scatter("in", int_dataset(&[1, 2])).unwrap();
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "bad".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 2,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &Bad,
        reducer: &reducer,
        sort_by_key: false,
        descending: false,
        compress_key: None,
    };
    let e = cluster.run_job(&job).unwrap_err();
    assert!(e.to_string().contains("partitioner"), "{e}");
}

#[test]
fn missing_input_dataset_yields_empty_maps() {
    let mut cluster = Cluster::new(2);
    // No scatter at all: mappers see zero fragments and emit nothing; the
    // job still completes with empty stats (mirrors an empty HDFS dir).
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "empty".into(),
        inputs: vec!["ghost".into()],
        output: "out".into(),
        num_reducers: 2,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    let stats = cluster.run_job(&job).unwrap();
    assert_eq!(stats.records_in, 0);
    assert_eq!(stats.records_out, 0);
    // Every reducer still materializes an (empty) output fragment, so a
    // distribute job always produces all of its partitions.
    let parts = cluster.collect("out").unwrap();
    assert_eq!(parts.len(), 2);
    assert!(parts.iter().all(|p| p.batch.is_empty()));
}

#[test]
fn multiple_inputs_are_all_mapped() {
    let mut cluster = Cluster::new(2);
    cluster.scatter("a", int_dataset(&[1, 2])).unwrap();
    cluster.scatter("b", int_dataset(&[3])).unwrap();
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "multi".into(),
        inputs: vec!["a".into(), "b".into()],
        output: "out".into(),
        num_reducers: 1,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    let stats = cluster.run_job(&job).unwrap();
    assert_eq!(stats.records_in, 3);
    let out = cluster.collect_concat("out").unwrap();
    assert_eq!(out.batch.record_count(), 3);
}

#[test]
fn stats_time_components_are_populated() {
    let mut cluster = Cluster::new(3);
    let vals: Vec<i32> = (0..3000).collect();
    cluster.scatter("in", int_dataset(&vals)).unwrap();
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "t".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    let stats = cluster.run_job(&job).unwrap();
    assert_eq!(stats.map_time_by_node.len(), 3);
    assert!(stats.map_time() > std::time::Duration::ZERO);
    assert!(stats.exchange.remote_bytes > 0);
    assert!(stats.sim_time() >= stats.map_time());
}

#[test]
fn entry_record_count_accessor() {
    assert_eq!(Entry::Rec(rec![1]).record_count(), 1);
    let p = papar_record::PackedRecord {
        key: Value::Int(1),
        records: vec![rec![2, 1], rec![3, 1]],
    };
    assert_eq!(Entry::Packed(p).record_count(), 2);
}

#[test]
fn reducers_outnumbering_nodes_still_produce_all_fragments() {
    let mut cluster = Cluster::new(2);
    let vals: Vec<i32> = (0..40).collect();
    cluster.scatter("in", int_dataset(&vals)).unwrap();
    let mapper = FnMapper(|_: &papar_mr::TaskCtx, inputs: &[MapInput]| {
        let mut out = Vec::new();
        for MapInput { data: ds, .. } in inputs {
            for r in ds.batch.clone().flatten() {
                let v = r.value(0).unwrap().as_i64().unwrap();
                out.push((Value::Int((v % 8) as i32), Entry::Rec(r)));
            }
        }
        Ok(out)
    });
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "wide".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 8,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &IdentityPartitioner,
        reducer: &reducer,
        sort_by_key: false,
        descending: false,
        compress_key: None,
    };
    cluster.run_job(&job).unwrap();
    let parts = collect_ints(&cluster, "out");
    assert_eq!(parts.len(), 8);
    for (i, p) in parts.iter().enumerate() {
        assert_eq!(p.len(), 5, "fragment {i} wrong: {p:?}");
        assert!(p.iter().all(|v| (v % 8) as usize == i));
    }
}

#[test]
fn per_node_stats_land_in_their_slots_regardless_of_completion_order() {
    // Node 0's mapper does by far the most compute, so with one thread
    // per node it finishes *last*; its time must still land in slot 0 of
    // `map_time_by_node`, not wherever the joining order put it. The
    // load is a CPU spin (not a sleep) because task compute is charged
    // from the per-thread CPU clock.
    let mut cluster = Cluster::new(3).with_threads(3);
    let vals: Vec<i32> = (0..30).collect();
    cluster.scatter("in", int_dataset(&vals)).unwrap();
    let spin_iters = [40_000_000u64, 4_000_000, 50_000];
    let mapper = FnMapper(move |ctx: &papar_mr::TaskCtx, inputs: &[MapInput]| {
        let mut x = 1u64;
        for i in 0..spin_iters[ctx.node] {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let mut out = Vec::new();
        for MapInput { data: ds, .. } in inputs {
            for r in ds.batch.clone().flatten() {
                let key = r.value(0).unwrap().clone();
                out.push((key, Entry::Rec(r)));
            }
        }
        Ok(out)
    });
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "slots".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    let stats = cluster.run_job(&job).unwrap();
    assert_eq!(stats.map_time_by_node.len(), 3);
    let t = &stats.map_time_by_node;
    assert!(
        t[0] > t[1] && t[1] > t[2],
        "per-node times must follow the injected sleeps, got {t:?}"
    );
    assert_eq!(stats.records_in, 30);
}

#[test]
fn record_type_is_reexported() {
    // Compile-time check that the public surface exposes what operators
    // need without reaching into private modules.
    let _: Record = rec![1];
}

#[test]
fn distribute_key_out_of_range_errors_instead_of_skewing() {
    // A distribute-style job whose policy emits partition id
    // `num_reducers` must fail with a typed error; the engine used to
    // clamp it onto the last reducer and silently skew the output.
    let mut cluster = Cluster::new(2);
    cluster.scatter("in", int_dataset(&[1, 2, 3, 4])).unwrap();
    let mapper = FnMapper(|_: &papar_mr::TaskCtx, inputs: &[MapInput]| {
        let mut out = Vec::new();
        for MapInput { data: ds, .. } in inputs {
            for r in ds.batch.clone().flatten() {
                // Policy bug under test: one-past-the-end partition id.
                out.push((Value::Int(3), Entry::Rec(r)));
            }
        }
        Ok(out)
    });
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "distribute".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &IdentityPartitioner,
        reducer: &reducer,
        sort_by_key: false,
        descending: false,
        compress_key: None,
    };
    let err = cluster.run_job(&job).unwrap_err();
    assert!(
        matches!(
            err,
            papar_mr::MrError::PartitionOutOfRange {
                id: 3,
                num_reducers: 3
            }
        ),
        "expected PartitionOutOfRange, got {err:?}"
    );
}

#[test]
fn distribute_negative_key_errors_instead_of_clamping() {
    let mut cluster = Cluster::new(2);
    cluster.scatter("in", int_dataset(&[1, 2])).unwrap();
    let mapper = FnMapper(|_: &papar_mr::TaskCtx, inputs: &[MapInput]| {
        let mut out = Vec::new();
        for MapInput { data: ds, .. } in inputs {
            for r in ds.batch.clone().flatten() {
                out.push((Value::Int(-1), Entry::Rec(r)));
            }
        }
        Ok(out)
    });
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "distribute-neg".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &IdentityPartitioner,
        reducer: &reducer,
        sort_by_key: false,
        descending: false,
        compress_key: None,
    };
    let err = cluster.run_job(&job).unwrap_err();
    assert!(
        matches!(
            err,
            papar_mr::MrError::PartitionOutOfRange {
                id: -1,
                num_reducers: 3
            }
        ),
        "expected PartitionOutOfRange, got {err:?}"
    );
}

#[test]
fn collector_trace_covers_phases_tasks_and_skew() {
    use papar_trace::{Collector, PhaseKind};

    let mut cluster = Cluster::new(4).with_tracer(Box::new(Collector::new()));
    let vals: Vec<i32> = (0..120).map(|i| (i * 13) % 120).collect();
    cluster.scatter("in", int_dataset(&vals)).unwrap();
    let mapper = key_by_first();
    let reducer = strip_keys();
    let job = MapReduceJob {
        name: "traced-sort".into(),
        inputs: vec!["in".into()],
        output: "out".into(),
        num_reducers: 3,
        map_output_schema: int_schema(),
        output_schema: int_schema(),
        mapper: &mapper,
        partitioner: &HashPartitioner,
        reducer: &reducer,
        sort_by_key: true,
        descending: false,
        compress_key: None,
    };
    let stats = cluster.run_job(&job).unwrap();
    let trace = cluster.take_trace().expect("collector must yield a trace");

    assert_eq!(trace.jobs.len(), 1);
    let jt = &trace.jobs[0];
    assert_eq!(jt.name, "traced-sort");
    let kinds: Vec<PhaseKind> = jt.phases.iter().map(|p| p.kind).collect();
    assert_eq!(
        kinds,
        vec![PhaseKind::Map, PhaseKind::Shuffle, PhaseKind::Reduce]
    );
    // The per-phase virtual times must sum exactly to the makespan the
    // stats report (map barrier + comm + reduce barrier).
    assert_eq!(jt.virt(), stats.sim_time());

    // One task span per node in both compute phases, in slot order.
    let map = &jt.phases[0];
    let reduce = &jt.phases[2];
    assert_eq!(map.tasks.len(), 4);
    assert_eq!(reduce.tasks.len(), 4);
    for (i, t) in map.tasks.iter().enumerate() {
        assert_eq!(t.node, i);
    }
    assert_eq!(map.counters.records_in, 120);
    assert_eq!(map.counters.pairs, 120);
    assert_eq!(reduce.counters.records_out, 120);

    // Skew histogram: one bucket per reducer, records summing to the
    // shuffled pair count.
    let skew = jt.skew.as_ref().expect("traced job must carry skew");
    assert_eq!(skew.records.len(), 3);
    assert_eq!(skew.records.iter().sum::<u64>(), 120);
    assert!(skew.bytes.iter().sum::<u64>() > 0);

    // The Chrome export is non-trivial and mentions every phase.
    let json = papar_trace::to_chrome_json(&trace);
    for needle in ["traced-sort", "\"map\"", "\"shuffle\"", "\"reduce\""] {
        assert!(json.contains(needle), "chrome json missing {needle}");
    }
}
