//! Property tests for checkpoint crash-consistency: any single-byte
//! corruption of a published fragment — anywhere in the file, including
//! the frame header — is caught by verify-on-load, quarantined, and the
//! owning stage invalidated; likewise any torn (truncated) write.

use std::fs;
use std::path::{Path, PathBuf};

use papar_mr::{CheckpointSession, MrError};
use proptest::prelude::*;

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "papar-ckpt-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Write one committed stage with a single fragment and return the
/// fragment file's path.
fn publish_one(dir: &Path, payload: &[u8]) -> PathBuf {
    let mut s = CheckpointSession::create(dir, 0xC0FFEE).unwrap();
    s.stage_fragment("/out", 0, 0, payload.to_vec());
    s.commit_stage(0, "stage", &Default::default()).unwrap();
    let r = CheckpointSession::resume(dir, 0xC0FFEE).unwrap();
    assert!(r.corruption_events().is_empty());
    dir.join(r.completed()[0].fragments[0].file.clone())
}

/// Assert the damaged checkpoint resumes with the stage invalidated, the
/// fragment quarantined as evidence, and a second resume coming up clean.
fn assert_caught(dir: &Path, frag: &Path) -> Result<(), TestCaseError> {
    let r = CheckpointSession::resume(dir, 0xC0FFEE).unwrap();
    prop_assert!(
        !r.corruption_events().is_empty(),
        "corruption went undetected"
    );
    prop_assert!(matches!(
        r.corruption_events()[0],
        MrError::CheckpointCorrupt { .. }
    ));
    prop_assert!(!r.is_complete(0), "corrupt stage still marked complete");
    let mut q = frag.as_os_str().to_owned();
    q.push(".quarantine");
    prop_assert!(
        PathBuf::from(q).exists(),
        "corrupt fragment was not quarantined"
    );
    // The manifest was rewritten to the intact prefix, so a second resume
    // sees a consistent (empty) checkpoint with no further incidents.
    let clean = CheckpointSession::resume(dir, 0xC0FFEE).unwrap();
    prop_assert!(clean.corruption_events().is_empty());
    prop_assert!(clean.completed().is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single byte of a fragment file — length prefix, frame
    /// checksum, or payload — is always caught on resume.
    #[test]
    fn single_byte_corruption_is_always_caught(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        pos_seed in any::<usize>(),
        flip_seed in any::<u8>(),
    ) {
        let dir = tmpdir("flip", pos_seed as u64 ^ payload.len() as u64);
        let frag = publish_one(&dir, &payload);

        let mut bytes = fs::read(&frag).unwrap();
        let pos = pos_seed % bytes.len();
        let flip = flip_seed | 1; // nonzero mask: the byte is guaranteed to change
        bytes[pos] ^= flip;
        fs::write(&frag, &bytes).unwrap();

        assert_caught(&dir, &frag)?;
        let _ = fs::remove_dir_all(&dir);
    }

    /// A torn write — the fragment file truncated at any point short of
    /// its full length — is always caught on resume.
    #[test]
    fn torn_fragment_write_is_always_caught(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_seed in any::<usize>(),
    ) {
        let dir = tmpdir("torn", cut_seed as u64 ^ payload.len() as u64);
        let frag = publish_one(&dir, &payload);

        let full = fs::read(&frag).unwrap();
        let cut = cut_seed % full.len(); // 0..len, strictly shorter
        fs::write(&frag, &full[..cut]).unwrap();

        assert_caught(&dir, &frag)?;
        let _ = fs::remove_dir_all(&dir);
    }
}
