//! Node-local dataset storage.
//!
//! Every simulated node owns a [`DataStore`]: a map from dataset name (the
//! paper's HDFS paths such as `/user/sort_output` become plain names) to
//! the *fragments* of that dataset the node holds. A fragment carries an
//! ordinal so that globally collecting a dataset reproduces a deterministic
//! order — for job outputs the ordinal is the reducer id, so collecting a
//! distribute job's output yields the partitions in partition order.

use papar_record::batch::Dataset;
use std::collections::HashMap;
use std::sync::Arc;

use crate::{MrError, Result};

/// One stored fragment: a global ordinal plus its data.
///
/// Data is behind an `Arc` so handing fragments to map tasks never copies
/// records — the map phase reads shared immutable data, like mappers over
/// HDFS blocks.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Global position of this fragment within the dataset (scatter chunk
    /// index or reducer id).
    pub ordinal: u32,
    /// The records (shared, immutable).
    pub data: Arc<Dataset>,
}

/// The named datasets held by one node.
#[derive(Debug, Default)]
pub struct DataStore {
    data: HashMap<String, Vec<Fragment>>,
}

impl DataStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fragment to a dataset (created on first use).
    pub fn put(&mut self, name: &str, ordinal: u32, data: Dataset) {
        self.data
            .entry(name.to_string())
            .or_default()
            .push(Fragment {
                ordinal,
                data: Arc::new(data),
            });
    }

    /// The local fragments of a dataset, in ordinal order.
    pub fn get(&self, name: &str) -> Option<Vec<&Fragment>> {
        self.data.get(name).map(|frags| {
            let mut v: Vec<&Fragment> = frags.iter().collect();
            v.sort_by_key(|f| f.ordinal);
            v
        })
    }

    /// Like [`DataStore::get`] but with an error naming the dataset.
    pub fn require(&self, name: &str) -> Result<Vec<&Fragment>> {
        self.get(name)
            .ok_or_else(|| MrError(format!("dataset '{name}' not found on this node")))
    }

    /// True when the node holds (possibly empty) fragments for `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.data.contains_key(name)
    }

    /// Remove a dataset, returning whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.data.remove(name).is_some()
    }

    /// Names of all stored datasets (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.data.keys().map(String::as_str)
    }

    /// Total records across the local fragments of `name`.
    pub fn record_count(&self, name: &str) -> usize {
        self.data
            .get(name)
            .map(|frags| frags.iter().map(|f| f.data.batch.record_count()).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papar_record::{rec, Batch, Schema};
    use papar_config::input::FieldType;
    use std::sync::Arc;

    fn ds(vals: &[i32]) -> Dataset {
        let schema = Arc::new(Schema::new(vec![("a", FieldType::Integer)]));
        Dataset::new(schema, Batch::Flat(vals.iter().map(|&v| rec![v]).collect()))
    }

    #[test]
    fn put_get_roundtrip_in_ordinal_order() {
        let mut store = DataStore::new();
        store.put("x", 2, ds(&[30]));
        store.put("x", 0, ds(&[10]));
        store.put("x", 1, ds(&[20]));
        let frags = store.get("x").unwrap();
        assert_eq!(
            frags.iter().map(|f| f.ordinal).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn missing_dataset_is_reported() {
        let store = DataStore::new();
        assert!(store.get("nope").is_none());
        let e = store.require("nope").unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn remove_and_contains() {
        let mut store = DataStore::new();
        store.put("x", 0, ds(&[1]));
        assert!(store.contains("x"));
        assert!(store.remove("x"));
        assert!(!store.contains("x"));
        assert!(!store.remove("x"));
    }

    #[test]
    fn record_count_sums_fragments() {
        let mut store = DataStore::new();
        store.put("x", 0, ds(&[1, 2]));
        store.put("x", 1, ds(&[3]));
        assert_eq!(store.record_count("x"), 3);
        assert_eq!(store.record_count("y"), 0);
    }
}
