//! Node-local dataset storage.
//!
//! Every simulated node owns a [`DataStore`]: a map from dataset name (the
//! paper's HDFS paths such as `/user/sort_output` become plain names) to
//! the *fragments* of that dataset the node holds. A fragment carries an
//! ordinal so that globally collecting a dataset reproduces a deterministic
//! order — for job outputs the ordinal is the reducer id, so collecting a
//! distribute job's output yields the partitions in partition order.

use papar_record::batch::Dataset;
use std::collections::HashMap;
use std::sync::Arc;

use crate::{MrError, Result};

/// One stored fragment: a global ordinal plus its data.
///
/// Data is behind an `Arc` so handing fragments to map tasks never copies
/// records — the map phase reads shared immutable data, like mappers over
/// HDFS blocks.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Global position of this fragment within the dataset (scatter chunk
    /// index or reducer id).
    pub ordinal: u32,
    /// The records (shared, immutable).
    pub data: Arc<Dataset>,
}

/// The named datasets held by one node.
///
/// Besides the primary fragments a node owns, the store has a separate
/// *replica* area: copies of fragments whose primary lives on another node,
/// placed there by the cluster's replication policy. Replicas never feed
/// map tasks or collects — they exist purely so a crashed node's primaries
/// can be re-fetched instead of lost.
#[derive(Debug, Default)]
pub struct DataStore {
    data: HashMap<String, Vec<Fragment>>,
    replicas: HashMap<String, Vec<Fragment>>,
}

impl DataStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fragment to a dataset (created on first use).
    pub fn put(&mut self, name: &str, ordinal: u32, data: Dataset) {
        self.put_arc(name, ordinal, Arc::new(data));
    }

    /// Like [`DataStore::put`] for data already behind an `Arc` (replica
    /// restores share the surviving copy's storage).
    pub fn put_arc(&mut self, name: &str, ordinal: u32, data: Arc<Dataset>) {
        self.data
            .entry(name.to_string())
            .or_default()
            .push(Fragment { ordinal, data });
    }

    /// Stash a replica of another node's fragment.
    pub fn put_replica(&mut self, name: &str, ordinal: u32, data: Arc<Dataset>) {
        self.replicas
            .entry(name.to_string())
            .or_default()
            .push(Fragment { ordinal, data });
    }

    /// Look up a replica by identity.
    pub fn replica(&self, name: &str, ordinal: u32) -> Option<Arc<Dataset>> {
        self.replicas
            .get(name)?
            .iter()
            .find(|f| f.ordinal == ordinal)
            .map(|f| Arc::clone(&f.data))
    }

    /// Look up a primary fragment by identity.
    pub fn primary(&self, name: &str, ordinal: u32) -> Option<Arc<Dataset>> {
        self.data
            .get(name)?
            .iter()
            .find(|f| f.ordinal == ordinal)
            .map(|f| Arc::clone(&f.data))
    }

    /// Identities `(name, ordinal)` of every primary fragment.
    pub fn fragment_ids(&self) -> Vec<(String, u32)> {
        let mut ids: Vec<(String, u32)> = self
            .data
            .iter()
            .flat_map(|(name, frags)| frags.iter().map(move |f| (name.clone(), f.ordinal)))
            .collect();
        ids.sort();
        ids
    }

    /// Identities of every replica held for other nodes.
    pub fn replica_ids(&self) -> Vec<(String, u32)> {
        let mut ids: Vec<(String, u32)> = self
            .replicas
            .iter()
            .flat_map(|(name, frags)| frags.iter().map(move |f| (name.clone(), f.ordinal)))
            .collect();
        ids.sort();
        ids
    }

    /// Number of replica fragments held.
    pub fn replica_count(&self) -> usize {
        self.replicas.values().map(Vec::len).sum()
    }

    /// Simulate a node crash: every primary fragment and every replica is
    /// lost at once.
    pub fn wipe(&mut self) {
        self.data.clear();
        self.replicas.clear();
    }

    /// The local fragments of a dataset, in ordinal order.
    pub fn get(&self, name: &str) -> Option<Vec<&Fragment>> {
        self.data.get(name).map(|frags| {
            let mut v: Vec<&Fragment> = frags.iter().collect();
            v.sort_by_key(|f| f.ordinal);
            v
        })
    }

    /// Like [`DataStore::get`] but with an error naming the dataset.
    pub fn require(&self, name: &str) -> Result<Vec<&Fragment>> {
        self.get(name)
            .ok_or_else(|| MrError::msg(format!("dataset '{name}' not found on this node")))
    }

    /// True when the node holds (possibly empty) fragments for `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.data.contains_key(name)
    }

    /// Remove a dataset — primary fragments and any replicas held for other
    /// nodes — returning whether a primary existed here.
    pub fn remove(&mut self, name: &str) -> bool {
        let had = self.data.remove(name).is_some();
        self.replicas.remove(name);
        had
    }

    /// Names of all stored datasets (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.data.keys().map(String::as_str)
    }

    /// Total records across the local fragments of `name`.
    pub fn record_count(&self, name: &str) -> usize {
        self.data
            .get(name)
            .map(|frags| frags.iter().map(|f| f.data.batch.record_count()).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papar_config::input::FieldType;
    use papar_record::{rec, Batch, Schema};
    use std::sync::Arc;

    fn ds(vals: &[i32]) -> Dataset {
        let schema = Arc::new(Schema::new(vec![("a", FieldType::Integer)]));
        Dataset::new(schema, Batch::Flat(vals.iter().map(|&v| rec![v]).collect()))
    }

    #[test]
    fn put_get_roundtrip_in_ordinal_order() {
        let mut store = DataStore::new();
        store.put("x", 2, ds(&[30]));
        store.put("x", 0, ds(&[10]));
        store.put("x", 1, ds(&[20]));
        let frags = store.get("x").unwrap();
        assert_eq!(
            frags.iter().map(|f| f.ordinal).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn missing_dataset_is_reported() {
        let store = DataStore::new();
        assert!(store.get("nope").is_none());
        let e = store.require("nope").unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn remove_and_contains() {
        let mut store = DataStore::new();
        store.put("x", 0, ds(&[1]));
        assert!(store.contains("x"));
        assert!(store.remove("x"));
        assert!(!store.contains("x"));
        assert!(!store.remove("x"));
    }

    #[test]
    fn replicas_live_apart_from_primaries() {
        let mut store = DataStore::new();
        store.put("x", 0, ds(&[1, 2]));
        store.put_replica("x", 1, Arc::new(ds(&[3])));
        // Replicas never show up in reads, counts or names.
        assert_eq!(store.get("x").unwrap().len(), 1);
        assert_eq!(store.record_count("x"), 2);
        assert_eq!(store.replica_count(), 1);
        assert_eq!(store.replica("x", 1).unwrap().batch.record_count(), 1);
        assert!(store.replica("x", 0).is_none());
        assert_eq!(store.primary("x", 0).unwrap().batch.record_count(), 2);
        assert!(store.primary("x", 1).is_none());
        assert_eq!(store.fragment_ids(), vec![("x".to_string(), 0)]);
        assert_eq!(store.replica_ids(), vec![("x".to_string(), 1)]);
    }

    #[test]
    fn wipe_loses_everything() {
        let mut store = DataStore::new();
        store.put("x", 0, ds(&[1]));
        store.put_replica("y", 3, Arc::new(ds(&[2])));
        store.wipe();
        assert!(!store.contains("x"));
        assert_eq!(store.replica_count(), 0);
        assert!(store.fragment_ids().is_empty());
    }

    #[test]
    fn record_count_sums_fragments() {
        let mut store = DataStore::new();
        store.put("x", 0, ds(&[1, 2]));
        store.put("x", 1, ds(&[3]));
        assert_eq!(store.record_count("x"), 3);
        assert_eq!(store.record_count("y"), 0);
    }
}
