//! Per-task compute timing for worker threads.
//!
//! A task's charged compute must approximate what a *dedicated* cluster
//! node would spend, but worker threads share the host's cores and can be
//! oversubscribed (`threads > cores`). Wall clocks count the time a
//! thread spends scheduled out, so under contention they inflate per-task
//! compute — and with it the simulated makespan — by an amount that
//! depends on the thread count, which the virtual clock must not.
//!
//! On Linux the timer therefore reads `CLOCK_THREAD_CPUTIME_ID`, the
//! kernel's per-thread CPU counter: time on-CPU only, nanosecond
//! resolution, unaffected by how many sibling tasks run concurrently.
//! Elsewhere it falls back to a wall [`Instant`], which is exact whenever
//! the engine runs one task at a time.

use std::time::Duration;
#[cfg(not(target_os = "linux"))]
use std::time::Instant;

/// Stopwatch over the current thread's CPU time (Linux) or wall time
/// (fallback). Not meaningful across threads: start and read it on the
/// same thread.
pub(crate) struct TaskTimer {
    #[cfg(target_os = "linux")]
    start: Duration,
    #[cfg(not(target_os = "linux"))]
    start: Instant,
}

impl TaskTimer {
    pub(crate) fn start() -> Self {
        TaskTimer {
            #[cfg(target_os = "linux")]
            start: thread_cpu_now(),
            #[cfg(not(target_os = "linux"))]
            start: Instant::now(),
        }
    }

    pub(crate) fn elapsed(&self) -> Duration {
        #[cfg(target_os = "linux")]
        {
            thread_cpu_now().saturating_sub(self.start)
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.start.elapsed()
        }
    }
}

/// The calling thread's cumulative CPU time.
#[cfg(target_os = "linux")]
fn thread_cpu_now() -> Duration {
    use std::ffi::{c_int, c_long};

    #[repr(C)]
    struct Timespec {
        tv_sec: c_long,
        tv_nsec: c_long,
    }
    const CLOCK_THREAD_CPUTIME_ID: c_int = 3;
    extern "C" {
        fn clock_gettime(clockid: c_int, tp: *mut Timespec) -> c_int;
    }
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable Timespec matching the C layout,
    // and the thread CPU clock always exists for the calling thread.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_timer_advances_with_work_but_not_with_sleep() {
        let t = TaskTimer::start();
        let mut x = 1u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let busy = t.elapsed();
        assert!(busy > Duration::ZERO, "spinning must accrue time");

        #[cfg(target_os = "linux")]
        {
            let t = TaskTimer::start();
            std::thread::sleep(Duration::from_millis(30));
            let slept = t.elapsed();
            assert!(
                slept < Duration::from_millis(25),
                "sleeping must not accrue CPU time, got {slept:?}"
            );
        }
    }
}
