//! Distributed key sampling for balanced reduce ranges (paper Section
//! III-D, "Data Sampling").
//!
//! The sort operator needs a temporary reduce-key corresponding to the
//! *range* of the user key so that reducer `i` receives keys smaller than
//! reducer `i+1`'s and the concatenated reducer outputs are globally
//! sorted. Picking the ranges naively (uniform over the key domain) skews
//! reducers badly on non-uniform data; the paper follows TopCluster-style
//! local sampling: every node samples its local keys, the samples are
//! gathered, and the quantiles of the combined sample become the range
//! boundaries.

use papar_record::prefix;
use papar_record::Value;

use crate::engine::Partitioner;
use crate::Result;

/// Default sampling stride: one key in 64 is sampled, matching the regime
/// where the sample is big enough to place boundaries within a fraction of
/// a percent of the true quantiles but cheap next to the sort itself.
pub const DEFAULT_SAMPLE_STRIDE: usize = 64;

/// Take every `stride`-th key from a node's local keys (always including
/// the first, so tiny fragments contribute).
pub fn local_sample(keys: &[Value], stride: usize) -> Vec<Value> {
    let stride = stride.max(1);
    keys.iter().step_by(stride).cloned().collect()
}

/// Combine per-node samples and compute up to `num_reducers - 1` range
/// boundaries at the sample quantiles.
///
/// Reducer `i` handles keys in `[boundaries[i-1], boundaries[i])` with the
/// first reducer open below and the last open above. When the sample holds
/// fewer distinct keys than requested reducers, the raw quantiles repeat; a
/// repeated boundary describes an *empty* range, so duplicates are removed
/// and the result may carry fewer than `num_reducers - 1` boundaries. The
/// achievable reducer count is `boundaries.len() + 1`; callers that want to
/// know a collapse happened compare that against what they asked for (the
/// engine surfaces it as a typed `ReducersCollapsed` note instead of running
/// silently empty reducers).
pub fn boundaries_from_samples(per_node: &[Vec<Value>], num_reducers: usize) -> Result<Vec<Value>> {
    let mut all: Vec<Value> = per_node.iter().flatten().cloned().collect();
    if num_reducers <= 1 || all.is_empty() {
        return Ok(Vec::new());
    }
    all.sort();
    let n = all.len();
    let mut out = Vec::with_capacity(num_reducers - 1);
    for i in 1..num_reducers {
        let idx = (i * n / num_reducers).min(n - 1);
        out.push(all[idx].clone());
    }
    out.dedup();
    Ok(out)
}

/// A partitioner that routes keys by sampled range boundaries.
///
/// Each boundary's order-preserving key prefix (`papar_record::prefix`) is
/// precomputed at construction, so the per-key binary search compares raw
/// `u128`s and falls back to `Value::cmp` only on a prefix tie where either
/// side is inexact — the map hot path pays one prefix extraction per key
/// instead of `log(boundaries)` structural comparisons.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    boundaries: Vec<Value>,
    /// `(packed66, exact)` per boundary, parallel to `boundaries`.
    prefixes: Vec<(u128, bool)>,
}

impl RangePartitioner {
    /// Build from precomputed boundaries (ascending).
    pub fn new(boundaries: Vec<Value>) -> Self {
        debug_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        let prefixes = boundaries
            .iter()
            .map(|b| {
                let p = prefix::of_value(b);
                (p.packed66(), p.exact)
            })
            .collect();
        RangePartitioner {
            boundaries,
            prefixes,
        }
    }

    /// Build by sampling per-node key sets.
    pub fn from_samples(per_node: &[Vec<Value>], num_reducers: usize) -> Result<Self> {
        Ok(Self::new(boundaries_from_samples(per_node, num_reducers)?))
    }

    /// The boundaries (for tests and diagnostics).
    pub fn boundaries(&self) -> &[Value] {
        &self.boundaries
    }
}

impl Partitioner for RangePartitioner {
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> Result<usize> {
        // First range whose boundary exceeds the key. With the right
        // number of boundaries (`num_reducers - 1`) this is always in
        // range; boundaries built for a *different* reducer count used
        // to be silently clamped onto the last reducer, mis-routing
        // keys instead of surfacing the mismatch.
        let kp = prefix::of_value(key);
        let (k66, k_exact) = (kp.packed66(), kp.exact);
        // Manual partition point over `b <= key`, resolved from the
        // precomputed prefixes: strict prefix inequality is always
        // truthful, and a tie with both sides exact means equal keys
        // (see `papar_record::prefix`); only the remaining ties touch
        // the boundary `Value`s.
        let (mut lo, mut hi) = (0usize, self.boundaries.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (b66, b_exact) = self.prefixes[mid];
            let le = if b66 != k66 {
                b66 < k66
            } else if b_exact && k_exact {
                true // equal keys: `b <= key` holds
            } else {
                self.boundaries[mid] <= *key
            };
            if le {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let r = lo;
        if r >= num_reducers {
            return Err(crate::MrError::PartitionOutOfRange {
                id: r as i64,
                num_reducers,
            });
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i32]) -> Vec<Value> {
        v.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn local_sample_strides() {
        let keys = ints(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(local_sample(&keys, 3), ints(&[1, 4, 7]));
        assert_eq!(local_sample(&keys, 1).len(), 7);
        assert_eq!(local_sample(&keys, 100), ints(&[1]));
        assert!(local_sample(&[], 4).is_empty());
    }

    #[test]
    fn boundaries_split_uniform_data_evenly() {
        let samples = vec![ints(&(0..100).collect::<Vec<_>>())];
        let b = boundaries_from_samples(&samples, 4).unwrap();
        assert_eq!(b, ints(&[25, 50, 75]));
    }

    #[test]
    fn single_reducer_needs_no_boundaries() {
        let samples = vec![ints(&[5, 1, 9])];
        assert!(boundaries_from_samples(&samples, 1).unwrap().is_empty());
        assert!(boundaries_from_samples(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn few_distinct_keys_collapse_to_achievable_reducers() {
        // Two distinct sample keys cannot feed eight reducers: the raw
        // quantiles repeat, which used to leave provably empty ranges.
        // Dedup collapses to the achievable boundary set.
        let samples = vec![ints(&[3, 3, 3, 3, 9, 9, 9, 9])];
        let b = boundaries_from_samples(&samples, 8).unwrap();
        assert_eq!(b, ints(&[3, 9]), "expected collapse, got {b:?}");
        let p = RangePartitioner::new(b);
        assert_eq!(p.reducer_for(&Value::Int(2), 3).unwrap(), 0);
        assert_eq!(p.reducer_for(&Value::Int(3), 3).unwrap(), 1);
        assert_eq!(p.reducer_for(&Value::Int(9), 3).unwrap(), 2);

        // One distinct key collapses all the way to a single boundary.
        let one = vec![ints(&[7; 16])];
        let b = boundaries_from_samples(&one, 8).unwrap();
        assert_eq!(b, ints(&[7]));
    }

    #[test]
    fn range_partitioner_routes_monotonically() {
        let p = RangePartitioner::new(ints(&[10, 20]));
        assert_eq!(p.reducer_for(&Value::Int(-5), 3).unwrap(), 0);
        assert_eq!(p.reducer_for(&Value::Int(9), 3).unwrap(), 0);
        assert_eq!(p.reducer_for(&Value::Int(10), 3).unwrap(), 1);
        assert_eq!(p.reducer_for(&Value::Int(19), 3).unwrap(), 1);
        assert_eq!(p.reducer_for(&Value::Int(20), 3).unwrap(), 2);
        assert_eq!(p.reducer_for(&Value::Int(1000), 3).unwrap(), 2);
    }

    #[test]
    fn mismatched_boundaries_error_instead_of_clamping() {
        // Three boundaries imply four reducers; asking for two must
        // surface the mismatch for high keys, not pile them onto the
        // last reducer.
        let p = RangePartitioner::new(ints(&[10, 20, 30]));
        assert_eq!(p.reducer_for(&Value::Int(5), 2).unwrap(), 0);
        assert!(matches!(
            p.reducer_for(&Value::Int(25), 2),
            Err(crate::MrError::PartitionOutOfRange {
                id: 2,
                num_reducers: 2
            })
        ));
    }

    #[test]
    fn skewed_samples_balance_better_than_uniform_ranges() {
        // 90% of keys are < 10, the rest spread to 1000. A uniform split of
        // the domain would put ~90% of keys in reducer 0; sampled quantiles
        // must spread them.
        let mut keys = Vec::new();
        for i in 0..900 {
            keys.push(Value::Int(i % 10));
        }
        for i in 0..100 {
            keys.push(Value::Int(10 + i * 10));
        }
        let p = RangePartitioner::from_samples(&[keys.clone()], 4).unwrap();
        let mut counts = [0usize; 4];
        for k in &keys {
            counts[p.reducer_for(k, 4).unwrap()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max < 600,
            "sampled ranges should break up the skew, got {counts:?}"
        );
    }

    #[test]
    fn duplicate_boundaries_stay_deterministic() {
        let p = RangePartitioner::new(ints(&[7, 7, 7]));
        assert_eq!(p.reducer_for(&Value::Int(6), 4).unwrap(), 0);
        assert_eq!(p.reducer_for(&Value::Int(7), 4).unwrap(), 3);
    }

    #[test]
    fn prefix_fast_path_matches_plain_comparison_on_ties() {
        // Boundaries engineered to tie on their 8-byte prefix: long strings
        // sharing a prefix, and Longs beyond f64's 2^53 integer range. The
        // fast path must fall back to Value::cmp and agree with a plain
        // partition_point for every probe.
        let cases: Vec<(Vec<Value>, Vec<Value>)> = vec![
            (
                vec![
                    Value::Str("prefix-aaaa".into()),
                    Value::Str("prefix-bbbb".into()),
                ],
                vec![
                    Value::Str("prefix-a".into()),
                    Value::Str("prefix-aaaa".into()),
                    Value::Str("prefix-abzz".into()),
                    Value::Str("prefix-bbbb".into()),
                    Value::Str("prefix-zzzz".into()),
                    Value::Str("a".into()),
                ],
            ),
            (
                vec![Value::Long((1 << 53) + 2), Value::Long((1 << 53) + 100)],
                vec![
                    Value::Long(1 << 53),
                    Value::Long((1 << 53) + 1),
                    Value::Long((1 << 53) + 2),
                    Value::Long((1 << 53) + 3),
                    Value::Long((1 << 53) + 100),
                    Value::Long(i64::MAX),
                ],
            ),
        ];
        for (bounds, probes) in cases {
            let p = RangePartitioner::new(bounds.clone());
            let n = bounds.len() + 1;
            for key in &probes {
                let expect = bounds.partition_point(|b| b <= key);
                assert_eq!(
                    p.reducer_for(key, n).unwrap(),
                    expect,
                    "key {key:?} against {bounds:?}"
                );
            }
        }
    }

    #[test]
    fn multi_node_samples_combine() {
        let a = ints(&[1, 2, 3]);
        let b = ints(&[100, 200, 300]);
        let bounds = boundaries_from_samples(&[a, b], 2).unwrap();
        assert_eq!(bounds.len(), 1);
        // The median of the combined sample separates the two nodes' data.
        assert!(bounds[0] >= Value::Int(3) && bounds[0] <= Value::Int(200));
    }
}
