//! Crash-consistent workflow checkpointing: a durable run directory that
//! `papar run --checkpoint <dir>` writes and `--resume <dir>` recovers
//! from, byte-identically to an uninterrupted run.
//!
//! ## Run-directory layout
//!
//! ```text
//! <dir>/
//!   MANIFEST                                   write-ahead commit log
//!   frag-<stage>-<dshash>-<node>-<ord>.bin     one published fragment
//!   *.quarantine                               corrupt data renamed aside
//! ```
//!
//! The MANIFEST is a sequence of [`papar_record::wire::encode_frame`]
//! frames — the same `[len u32][fnv1a u64][payload]` framing shuffle
//! transfers use — so a torn tail (the process was killed mid-append) is
//! detected by the frame checksum and the intact prefix stays usable.
//! Frame payloads:
//!
//! * tag 1, **header**: format version and the run's plan/input/config
//!   fingerprint. Resume refuses a manifest whose fingerprint differs.
//! * tag 2, **stage commit**: the stage index and id, the stage's
//!   [`JobStats`], and one entry per published fragment (dataset, node,
//!   ordinal, file name, payload FNV-1a, payload length).
//!
//! ## Commit protocol
//!
//! A stage's fragments are published write-ahead: each payload is framed,
//! written to a `.tmp` file, fsynced, renamed into place, and the
//! directory fsynced; only then is the stage-commit record appended to the
//! MANIFEST and fsynced. A crash at any point leaves either a manifest
//! without the commit (the stage re-executes; orphan fragment files are
//! overwritten) or a complete committed stage — never a half-trusted one.
//!
//! ## Verify-on-load and quarantine
//!
//! [`CheckpointSession::resume`] re-reads and re-checksums every committed
//! fragment before the run starts. The first corrupt or missing file
//! quarantines the evidence (renamed to `*.quarantine`), truncates the
//! committed prefix to the stages before it, and rewrites the MANIFEST to
//! that intact prefix — the affected stages recompute from the nearest
//! intact upstream stage instead of silently reusing bad bytes. Each
//! quarantine is surfaced as a typed [`MrError::CheckpointCorrupt`] in
//! [`CheckpointSession::corruption_events`].

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use papar_record::wire::{self, Reader};

use crate::stats::{ExchangeStats, HotPathStats, JobStats, RecoveryStats};
use crate::{MrError, Result};

/// Name of the write-ahead commit log inside a checkpoint directory.
pub const MANIFEST: &str = "MANIFEST";

const VERSION: u32 = 2;
const TAG_HEADER: u8 = 1;
const TAG_STAGE: u8 = 2;

/// One fragment published by a committed stage.
#[derive(Debug, Clone)]
pub struct FragmentEntry {
    /// Workflow dataset the fragment belongs to.
    pub dataset: String,
    /// Node the fragment lives on (primary placement).
    pub node: u32,
    /// Fragment ordinal within the dataset.
    pub ordinal: u32,
    /// File name inside the checkpoint directory.
    pub file: String,
    /// FNV-1a of the payload, as stored in the manifest.
    pub checksum: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// The verified payload, loaded by [`CheckpointSession::resume`];
    /// `None` on the writing side.
    pub payload: Option<Vec<u8>>,
}

/// One committed stage, as recorded in the manifest.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Position of the stage in the physical plan.
    pub index: u32,
    /// The stage's id (diagnostic only; the fingerprint already pins the
    /// plan).
    pub stage_id: String,
    /// The stats the stage reported when it first ran, replayed into the
    /// resumed run's report so totals match a cold run.
    pub stats: JobStats,
    /// Published fragments, in publication order.
    pub fragments: Vec<FragmentEntry>,
}

/// A checkpoint run directory, open for writing (`create`) or validated
/// for reuse (`resume`).
#[derive(Debug)]
pub struct CheckpointSession {
    dir: PathBuf,
    fingerprint: u64,
    completed: Vec<StageRecord>,
    /// Fragments staged for the next [`commit_stage`] call.
    ///
    /// [`commit_stage`]: CheckpointSession::commit_stage
    pending: Vec<(String, u32, u32, Vec<u8>)>,
    corruption: Vec<MrError>,
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> MrError {
    MrError::msg(format!("checkpoint {what} '{}': {e}", path.display()))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_duration(buf: &mut Vec<u8>, d: Duration) {
    put_u64(buf, d.as_nanos().min(u64::MAX as u128) as u64);
}

fn read_str(r: &mut Reader<'_>) -> Result<String> {
    let len = r.read_u32()? as usize;
    let bytes = r.read_bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| MrError::msg("manifest string is not UTF-8"))
}

fn read_duration(r: &mut Reader<'_>) -> Result<Duration> {
    Ok(Duration::from_nanos(r.read_u64()?))
}

fn put_u64_vec(buf: &mut Vec<u8>, v: &[u64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_u64(buf, x);
    }
}

fn read_u64_vec(r: &mut Reader<'_>) -> Result<Vec<u64>> {
    let n = r.read_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.read_u64()?);
    }
    Ok(out)
}

fn put_duration_vec(buf: &mut Vec<u8>, v: &[Duration]) {
    put_u32(buf, v.len() as u32);
    for &d in v {
        put_duration(buf, d);
    }
}

fn read_duration_vec(r: &mut Reader<'_>) -> Result<Vec<Duration>> {
    let n = r.read_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_duration(r)?);
    }
    Ok(out)
}

/// Serialize a stage's [`JobStats`] into a manifest payload. Durations are
/// stored as u64 nanoseconds; the replayed stats of a resumed run thus
/// reproduce the original run's report exactly (to the nanosecond).
fn encode_stats(stats: &JobStats, buf: &mut Vec<u8>) {
    put_str(buf, &stats.name);
    put_duration_vec(buf, &stats.map_time_by_node);
    put_duration_vec(buf, &stats.reduce_time_by_node);
    put_u64(buf, stats.exchange.remote_bytes);
    put_u64(buf, stats.exchange.remote_messages);
    put_u64_vec(buf, &stats.exchange.sent_by_node);
    put_u64_vec(buf, &stats.exchange.recv_by_node);
    put_duration(buf, stats.comm_time);
    put_u64(buf, stats.records_in);
    put_u64(buf, stats.pairs_shuffled);
    put_u64(buf, stats.records_out);
    let rec = &stats.recovery;
    put_u32(buf, rec.faults_injected);
    put_u32(buf, rec.tasks_retried);
    put_duration(buf, rec.reexec_task_time);
    put_duration(buf, rec.backoff_time);
    put_u64(buf, rec.replication_bytes);
    put_u64(buf, rec.replication_messages);
    put_u64(buf, rec.restore_bytes);
    put_u64(buf, rec.restore_messages);
    put_u64(buf, rec.retransmit_bytes);
    put_u64(buf, rec.retransmit_messages);
    put_duration(buf, rec.comm_time);
    put_u64(buf, stats.hot.staged_bytes);
    put_u64(buf, stats.hot.staged_allocs);
    put_u64(buf, stats.hot.materialized_bytes);
    put_u64(buf, stats.hot.tie_pairs);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<JobStats> {
    Ok(JobStats {
        name: read_str(r)?,
        map_time_by_node: read_duration_vec(r)?,
        reduce_time_by_node: read_duration_vec(r)?,
        exchange: ExchangeStats {
            remote_bytes: r.read_u64()?,
            remote_messages: r.read_u64()?,
            sent_by_node: read_u64_vec(r)?,
            recv_by_node: read_u64_vec(r)?,
        },
        comm_time: read_duration(r)?,
        records_in: r.read_u64()?,
        pairs_shuffled: r.read_u64()?,
        records_out: r.read_u64()?,
        recovery: RecoveryStats {
            faults_injected: r.read_u32()?,
            tasks_retried: r.read_u32()?,
            reexec_task_time: read_duration(r)?,
            backoff_time: read_duration(r)?,
            replication_bytes: r.read_u64()?,
            replication_messages: r.read_u64()?,
            restore_bytes: r.read_u64()?,
            restore_messages: r.read_u64()?,
            retransmit_bytes: r.read_u64()?,
            retransmit_messages: r.read_u64()?,
            comm_time: read_duration(r)?,
        },
        hot: HotPathStats {
            staged_bytes: r.read_u64()?,
            staged_allocs: r.read_u64()?,
            materialized_bytes: r.read_u64()?,
            tie_pairs: r.read_u64()?,
        },
    })
}

/// Dataset names contain `/`; fragment files flatten them to an FNV-1a
/// hash so every (stage, dataset, node, ordinal) gets a distinct flat
/// file name.
fn fragment_file(stage: u32, dataset: &str, node: u32, ordinal: u32) -> String {
    format!(
        "frag-{stage:04}-{:016x}-{node:04}-{ordinal:04}.bin",
        wire::checksum(dataset.as_bytes())
    )
}

fn fsync_dir(dir: &Path) -> Result<()> {
    // Durability of a rename needs the directory entry flushed too.
    let d = File::open(dir).map_err(|e| io_err(dir, "open dir", e))?;
    d.sync_all().map_err(|e| io_err(dir, "fsync dir", e))
}

fn write_durable(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, "write", e))?;
    f.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename into", e))?;
    fsync_dir(path.parent().unwrap_or(Path::new(".")))
}

impl CheckpointSession {
    /// Start a fresh checkpoint: create the directory, drop any stale
    /// manifest or fragment files from a previous run, and durably write
    /// the header frame.
    pub fn create(dir: &Path, fingerprint: u64) -> Result<Self> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create dir", e))?;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name == MANIFEST || name.starts_with("frag-") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let mut buf = Vec::new();
        let mut payload = vec![TAG_HEADER];
        put_u32(&mut payload, VERSION);
        put_u64(&mut payload, fingerprint);
        wire::encode_frame(&payload, &mut buf);
        write_durable(&dir.join(MANIFEST), &buf)?;
        Ok(CheckpointSession {
            dir: dir.to_path_buf(),
            fingerprint,
            completed: Vec::new(),
            pending: Vec::new(),
            corruption: Vec::new(),
        })
    }

    /// Open an existing checkpoint for resumption: parse the manifest up
    /// to its last intact frame, refuse on a fingerprint mismatch, then
    /// verify every committed fragment's checksum. Corrupt or missing
    /// data is quarantined and the committed prefix truncated (the run
    /// recomputes from there); each incident lands in
    /// [`corruption_events`](CheckpointSession::corruption_events).
    pub fn resume(dir: &Path, fingerprint: u64) -> Result<Self> {
        let manifest_path = dir.join(MANIFEST);
        let bytes = fs::read(&manifest_path).map_err(|e| io_err(&manifest_path, "read", e))?;
        let mut r = Reader::new(&bytes);

        // Header frame: anything wrong here means no stage can be trusted.
        let header = wire::decode_frame(&mut r)
            .map_err(|e| MrError::msg(format!("checkpoint manifest header unreadable: {e}")))?;
        let mut hr = Reader::new(header);
        if hr.read_u8().ok() != Some(TAG_HEADER) {
            return Err(MrError::msg(
                "checkpoint manifest does not start with a header record",
            ));
        }
        let version = hr.read_u32().map_err(MrError::Codec)?;
        if version != VERSION {
            return Err(MrError::msg(format!(
                "checkpoint format version {version} is not supported (expected {VERSION})"
            )));
        }
        let found = hr.read_u64().map_err(MrError::Codec)?;
        if found != fingerprint {
            return Err(MrError::ResumeMismatch {
                expected: fingerprint,
                found,
            });
        }

        // Stage-commit frames: stop at the first torn or corrupt frame —
        // everything after a bad frame is untrustworthy by construction.
        let mut completed: Vec<StageRecord> = Vec::new();
        let mut corruption: Vec<MrError> = Vec::new();
        let mut tail_torn = false;
        while r.remaining() > 0 {
            let payload = match wire::decode_frame(&mut r) {
                Ok(p) => p,
                Err(e) => {
                    corruption.push(MrError::CheckpointCorrupt {
                        path: manifest_path.display().to_string(),
                        detail: format!("manifest tail discarded: {e}"),
                    });
                    tail_torn = true;
                    break;
                }
            };
            match decode_stage_record(payload) {
                Ok(rec) if rec.index as usize == completed.len() => completed.push(rec),
                Ok(rec) => {
                    corruption.push(MrError::CheckpointCorrupt {
                        path: manifest_path.display().to_string(),
                        detail: format!(
                            "stage commit out of order: expected index {}, found {}",
                            completed.len(),
                            rec.index
                        ),
                    });
                    tail_torn = true;
                    break;
                }
                Err(e) => {
                    corruption.push(MrError::CheckpointCorrupt {
                        path: manifest_path.display().to_string(),
                        detail: format!("undecodable stage commit: {e}"),
                    });
                    tail_torn = true;
                    break;
                }
            }
        }

        // Verify-on-load: re-read and re-checksum every committed
        // fragment in stage order. The first failure quarantines the
        // file and invalidates its stage and everything downstream.
        'verify: for s in 0..completed.len() {
            for f in 0..completed[s].fragments.len() {
                let entry = &completed[s].fragments[f];
                let path = dir.join(&entry.file);
                let payload = match verify_fragment(&path, entry) {
                    Ok(p) => p,
                    Err(e) => {
                        quarantine(&path);
                        corruption.push(e);
                        completed.truncate(s);
                        tail_torn = true;
                        break 'verify;
                    }
                };
                completed[s].fragments[f].payload = Some(payload);
            }
        }

        let session = CheckpointSession {
            dir: dir.to_path_buf(),
            fingerprint,
            completed,
            pending: Vec::new(),
            corruption,
        };
        if tail_torn {
            // Rewrite the manifest to the intact prefix so the commits
            // this resumed run appends land right after it.
            session.rewrite_manifest()?;
        }
        Ok(session)
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fingerprint this session was opened with.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Committed stages, in plan order (a contiguous, verified prefix).
    pub fn completed(&self) -> &[StageRecord] {
        &self.completed
    }

    /// Whether the stage at `index` is committed and verified.
    pub fn is_complete(&self, index: usize) -> bool {
        index < self.completed.len()
    }

    /// Corruption incidents observed while loading (empty on a clean
    /// resume). Each describes a quarantined file or discarded manifest
    /// tail; the affected stages recompute.
    pub fn corruption_events(&self) -> &[MrError] {
        &self.corruption
    }

    /// Stage a fragment payload for the next [`commit_stage`] call.
    ///
    /// [`commit_stage`]: CheckpointSession::commit_stage
    pub fn stage_fragment(&mut self, dataset: &str, node: u32, ordinal: u32, payload: Vec<u8>) {
        self.pending
            .push((dataset.to_string(), node, ordinal, payload));
    }

    /// Durably publish the staged fragments and append the stage-commit
    /// record: fragments are framed, written to temp files, fsynced and
    /// renamed into place, the directory fsynced, and only then the
    /// commit appended to the manifest and fsynced. Returns the bytes
    /// written (fragment files plus manifest record). A kill at any
    /// point leaves the previous commit as the recoverable frontier.
    pub fn commit_stage(&mut self, index: u32, stage_id: &str, stats: &JobStats) -> Result<u64> {
        let pending = std::mem::take(&mut self.pending);
        let mut bytes_written = 0u64;
        let mut fragments = Vec::with_capacity(pending.len());
        for (dataset, node, ordinal, payload) in &pending {
            let file = fragment_file(index, dataset, *node, *ordinal);
            let mut framed = Vec::with_capacity(payload.len() + 12);
            wire::encode_frame(payload, &mut framed);
            let path = self.dir.join(&file);
            write_durable(&path, &framed)?;
            bytes_written += framed.len() as u64;
            fragments.push(FragmentEntry {
                dataset: dataset.clone(),
                node: *node,
                ordinal: *ordinal,
                file,
                checksum: wire::checksum(payload),
                len: payload.len() as u64,
                payload: None,
            });
        }

        // Test hook: hold the window between fragment publication and the
        // manifest commit open so an external kill harness can SIGKILL the
        // process inside it deterministically.
        if let Ok(ms) = std::env::var("PAPAR_CHECKPOINT_STALL_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }

        let record = StageRecord {
            index,
            stage_id: stage_id.to_string(),
            stats: stats.clone(),
            fragments,
        };
        let mut framed = Vec::new();
        wire::encode_frame(&encode_stage_record(&record), &mut framed);
        bytes_written += framed.len() as u64;
        let manifest_path = self.dir.join(MANIFEST);
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .map_err(|e| io_err(&manifest_path, "open for append", e))?;
        f.write_all(&framed)
            .map_err(|e| io_err(&manifest_path, "append to", e))?;
        f.sync_all()
            .map_err(|e| io_err(&manifest_path, "fsync", e))?;
        self.completed.push(record);
        Ok(bytes_written)
    }

    /// Rewrite the manifest to exactly the current committed prefix
    /// (header + intact stage commits), atomically.
    fn rewrite_manifest(&self) -> Result<()> {
        let mut buf = Vec::new();
        let mut payload = vec![TAG_HEADER];
        put_u32(&mut payload, VERSION);
        put_u64(&mut payload, self.fingerprint);
        wire::encode_frame(&payload, &mut buf);
        for rec in &self.completed {
            wire::encode_frame(&encode_stage_record(rec), &mut buf);
        }
        write_durable(&self.dir.join(MANIFEST), &buf)
    }
}

/// Rename a corrupt file aside as evidence instead of deleting it.
fn quarantine(path: &Path) {
    let mut q = path.as_os_str().to_owned();
    q.push(".quarantine");
    let _ = fs::rename(path, PathBuf::from(q));
}

/// Read one fragment file and verify its frame and manifest checksums.
fn verify_fragment(path: &Path, entry: &FragmentEntry) -> Result<Vec<u8>> {
    let corrupt = |detail: String| MrError::CheckpointCorrupt {
        path: path.display().to_string(),
        detail,
    };
    let bytes = fs::read(path).map_err(|e| corrupt(format!("unreadable: {e}")))?;
    let mut r = Reader::new(&bytes);
    let payload = wire::decode_frame(&mut r).map_err(|e| corrupt(e.to_string()))?;
    if payload.len() as u64 != entry.len {
        return Err(corrupt(format!(
            "length {} does not match the manifest's {}",
            payload.len(),
            entry.len
        )));
    }
    let got = wire::checksum(payload);
    if got != entry.checksum {
        return Err(corrupt(format!(
            "payload checksum {got:#018x} does not match the manifest's {:#018x}",
            entry.checksum
        )));
    }
    if r.remaining() > 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the frame",
            r.remaining()
        )));
    }
    Ok(payload.to_vec())
}

fn encode_stage_record(rec: &StageRecord) -> Vec<u8> {
    let mut buf = vec![TAG_STAGE];
    put_u32(&mut buf, rec.index);
    put_str(&mut buf, &rec.stage_id);
    encode_stats(&rec.stats, &mut buf);
    put_u32(&mut buf, rec.fragments.len() as u32);
    for f in &rec.fragments {
        put_str(&mut buf, &f.dataset);
        put_u32(&mut buf, f.node);
        put_u32(&mut buf, f.ordinal);
        put_str(&mut buf, &f.file);
        put_u64(&mut buf, f.checksum);
        put_u64(&mut buf, f.len);
    }
    buf
}

fn decode_stage_record(payload: &[u8]) -> Result<StageRecord> {
    let mut r = Reader::new(payload);
    if r.read_u8()? != TAG_STAGE {
        return Err(MrError::msg("expected a stage-commit record"));
    }
    let index = r.read_u32()?;
    let stage_id = read_str(&mut r)?;
    let stats = decode_stats(&mut r)?;
    let n = r.read_u32()? as usize;
    let mut fragments = Vec::with_capacity(n);
    for _ in 0..n {
        fragments.push(FragmentEntry {
            dataset: read_str(&mut r)?,
            node: r.read_u32()?,
            ordinal: r.read_u32()?,
            file: read_str(&mut r)?,
            checksum: r.read_u64()?,
            len: r.read_u64()?,
            payload: None,
        });
    }
    Ok(StageRecord {
        index,
        stage_id,
        stats,
        fragments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("papar-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_stats(name: &str) -> JobStats {
        JobStats {
            name: name.into(),
            map_time_by_node: vec![Duration::from_nanos(7), Duration::from_nanos(9)],
            reduce_time_by_node: vec![Duration::from_nanos(3)],
            comm_time: Duration::from_nanos(11),
            records_in: 100,
            pairs_shuffled: 90,
            records_out: 80,
            exchange: ExchangeStats {
                remote_bytes: 4096,
                remote_messages: 6,
                sent_by_node: vec![2048, 2048],
                recv_by_node: vec![1024, 3072],
            },
            recovery: RecoveryStats {
                faults_injected: 1,
                tasks_retried: 1,
                restore_bytes: 256,
                restore_messages: 2,
                ..Default::default()
            },
            hot: HotPathStats {
                staged_bytes: 512,
                staged_allocs: 12,
                materialized_bytes: 400,
                tie_pairs: 3,
            },
        }
    }

    fn assert_stats_eq(a: &JobStats, b: &JobStats) {
        // JobStats has no PartialEq; its Debug output covers every field.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn stats_roundtrip_through_manifest_encoding() {
        let stats = sample_stats("sort");
        let mut buf = Vec::new();
        encode_stats(&stats, &mut buf);
        let back = decode_stats(&mut Reader::new(&buf)).unwrap();
        assert_stats_eq(&stats, &back);
    }

    #[test]
    fn commit_then_resume_replays_the_committed_prefix() {
        let dir = tmpdir("roundtrip");
        let mut s = CheckpointSession::create(&dir, 0xFEED).unwrap();
        s.stage_fragment("/tmp/sorted", 0, 0, b"alpha".to_vec());
        s.stage_fragment("/tmp/sorted", 1, 1, b"bravo".to_vec());
        let wrote = s.commit_stage(0, "sort", &sample_stats("sort")).unwrap();
        assert!(wrote > 0);
        s.stage_fragment("/tmp/out", 0, 0, b"charlie".to_vec());
        s.commit_stage(1, "distr", &sample_stats("distr")).unwrap();

        let r = CheckpointSession::resume(&dir, 0xFEED).unwrap();
        assert!(r.corruption_events().is_empty());
        assert_eq!(r.completed().len(), 2);
        assert!(r.is_complete(0) && r.is_complete(1) && !r.is_complete(2));
        let st = &r.completed()[0];
        assert_eq!(st.stage_id, "sort");
        assert_eq!(st.fragments.len(), 2);
        assert_eq!(st.fragments[0].payload.as_deref(), Some(&b"alpha"[..]));
        assert_eq!(st.fragments[1].payload.as_deref(), Some(&b"bravo"[..]));
        assert_stats_eq(&st.stats, &sample_stats("sort"));
        assert_eq!(
            r.completed()[1].fragments[0].payload.as_deref(),
            Some(&b"charlie"[..])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_refusal() {
        let dir = tmpdir("mismatch");
        CheckpointSession::create(&dir, 0xAA).unwrap();
        let err = CheckpointSession::resume(&dir, 0xBB).unwrap_err();
        assert_eq!(
            err,
            MrError::ResumeMismatch {
                expected: 0xBB,
                found: 0xAA
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fragment_is_quarantined_and_its_stage_recomputes() {
        let dir = tmpdir("corrupt");
        let mut s = CheckpointSession::create(&dir, 1).unwrap();
        s.stage_fragment("/a", 0, 0, b"stage zero".to_vec());
        s.commit_stage(0, "s0", &sample_stats("s0")).unwrap();
        s.stage_fragment("/b", 0, 0, b"stage one".to_vec());
        s.commit_stage(1, "s1", &sample_stats("s1")).unwrap();

        // Flip one payload byte of stage 1's fragment on disk.
        let file = s.completed()[1].fragments[0].file.clone();
        let path = dir.join(&file);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let r = CheckpointSession::resume(&dir, 1).unwrap();
        // Stage 0 survives; stage 1 is invalidated, its file quarantined.
        assert_eq!(r.completed().len(), 1);
        assert!(!path.exists(), "corrupt file should be renamed aside");
        assert!(dir.join(format!("{file}.quarantine")).exists());
        let events = r.corruption_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], MrError::CheckpointCorrupt { .. }));
        assert!(
            events[0].to_string().contains("quarantined"),
            "{}",
            events[0]
        );

        // The rewritten manifest resumes cleanly with only stage 0.
        let r2 = CheckpointSession::resume(&dir, 1).unwrap();
        assert!(r2.corruption_events().is_empty());
        assert_eq!(r2.completed().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_tail_keeps_the_intact_prefix() {
        let dir = tmpdir("torn");
        let mut s = CheckpointSession::create(&dir, 2).unwrap();
        s.stage_fragment("/a", 0, 0, b"committed".to_vec());
        s.commit_stage(0, "s0", &sample_stats("s0")).unwrap();
        s.stage_fragment("/b", 0, 0, b"torn".to_vec());
        s.commit_stage(1, "s1", &sample_stats("s1")).unwrap();

        // Simulate a kill mid-append: truncate the last commit halfway.
        let path = dir.join(MANIFEST);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();

        let r = CheckpointSession::resume(&dir, 2).unwrap();
        assert_eq!(r.completed().len(), 1);
        assert_eq!(r.corruption_events().len(), 1);
        assert!(r.corruption_events()[0]
            .to_string()
            .contains("manifest tail discarded"));
        // And the rewrite made the next resume clean.
        let r2 = CheckpointSession::resume(&dir, 2).unwrap();
        assert!(r2.corruption_events().is_empty());
        assert_eq!(r2.completed().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_wipes_stale_state_from_a_previous_run() {
        let dir = tmpdir("wipe");
        let mut s = CheckpointSession::create(&dir, 3).unwrap();
        s.stage_fragment("/a", 0, 0, b"old".to_vec());
        s.commit_stage(0, "s0", &sample_stats("s0")).unwrap();
        // A fresh --checkpoint run over the same dir starts from nothing.
        let s2 = CheckpointSession::create(&dir, 4).unwrap();
        assert!(s2.completed().is_empty());
        let r = CheckpointSession::resume(&dir, 4).unwrap();
        assert!(r.completed().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_fragment_file_invalidates_its_stage() {
        let dir = tmpdir("missing");
        let mut s = CheckpointSession::create(&dir, 5).unwrap();
        s.stage_fragment("/a", 0, 0, b"here today".to_vec());
        s.commit_stage(0, "s0", &sample_stats("s0")).unwrap();
        let file = s.completed()[0].fragments[0].file.clone();
        fs::remove_file(dir.join(&file)).unwrap();
        let r = CheckpointSession::resume(&dir, 5).unwrap();
        assert!(r.completed().is_empty());
        assert_eq!(r.corruption_events().len(), 1);
        assert!(r.corruption_events()[0].to_string().contains("unreadable"));
        let _ = fs::remove_dir_all(&dir);
    }
}
