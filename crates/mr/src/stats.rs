//! Virtual-clock timing and network modeling.

use std::time::Duration;

/// A simple α–β model of the interconnect: each message costs a fixed
/// latency (α) and each byte costs `1/bandwidth` (β).
///
/// Two presets match the paper's testbed: QDR InfiniBand with RDMA (what
/// MVAPICH2 gives the PaPar/MR-MPI stack) and 10 Gbps Ethernet sockets
/// (what PowerLyra's GraphLab shuffle uses) — the contrast the paper calls
/// out when explaining Figure 15.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bytes_per_s: f64,
}

impl NetModel {
    /// QDR InfiniBand with RDMA: ~2 µs latency, 32 Gbit/s effective.
    pub fn infiniband_qdr() -> Self {
        NetModel {
            latency_s: 2e-6,
            bytes_per_s: 32e9 / 8.0,
        }
    }

    /// 10 Gbps Ethernet over sockets: ~50 µs latency, 10 Gbit/s nominal
    /// (socket stacks rarely exceed ~70% of line rate; use 7 Gbit/s).
    pub fn ethernet_10g() -> Self {
        NetModel {
            latency_s: 50e-6,
            bytes_per_s: 7e9 / 8.0,
        }
    }

    /// An infinitely fast network (useful to isolate compute effects in
    /// ablation experiments).
    pub fn instant() -> Self {
        NetModel {
            latency_s: 0.0,
            bytes_per_s: f64::INFINITY,
        }
    }

    /// Time to deliver `messages` messages totalling `bytes` bytes.
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        let secs = self.latency_s * messages as f64 + bytes as f64 / self.bytes_per_s;
        Duration::from_secs_f64(secs)
    }
}

impl Default for NetModel {
    /// The default models the paper's primary configuration (InfiniBand).
    fn default() -> Self {
        NetModel::infiniband_qdr()
    }
}

/// Byte/message accounting of one all-to-all exchange.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Total bytes moved between distinct nodes (self-sends are free, as
    /// MR-MPI keeps rank-local data in memory).
    pub remote_bytes: u64,
    /// Number of non-empty remote (sender, receiver) transfers.
    pub remote_messages: u64,
    /// Per-node bytes sent to other nodes.
    pub sent_by_node: Vec<u64>,
    /// Per-node bytes received from other nodes.
    pub recv_by_node: Vec<u64>,
}

impl ExchangeStats {
    /// The communication makespan under `net`: the busiest node's traffic
    /// (max of its send and receive volume, as links are full duplex) plus
    /// its message latencies.
    pub fn comm_time(&self, net: &NetModel) -> Duration {
        let nodes = self.sent_by_node.len().max(1);
        let per_node_msgs = if self.remote_messages == 0 {
            0
        } else {
            self.remote_messages.div_ceil(nodes as u64)
        };
        let busiest = self
            .sent_by_node
            .iter()
            .zip(&self.recv_by_node)
            .map(|(&s, &r)| s.max(r))
            .max()
            .unwrap_or(0);
        net.transfer_time(per_node_msgs, busiest)
    }
}

/// Timing and volume summary of one MapReduce job under the virtual clock.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Job name (the workflow operator id).
    pub name: String,
    /// Measured compute time of each node's map phase.
    pub map_time_by_node: Vec<Duration>,
    /// Measured compute time of each node's reduce phase.
    pub reduce_time_by_node: Vec<Duration>,
    /// Shuffle accounting.
    pub exchange: ExchangeStats,
    /// Modeled communication time of the shuffle.
    pub comm_time: Duration,
    /// Records entering the map phase.
    pub records_in: u64,
    /// Key-value pairs emitted by mappers.
    pub pairs_shuffled: u64,
    /// Records in the reduce output.
    pub records_out: u64,
}

impl JobStats {
    /// Critical-path map time (the slowest node).
    pub fn map_time(&self) -> Duration {
        self.map_time_by_node.iter().max().copied().unwrap_or_default()
    }

    /// Critical-path reduce time (the slowest node).
    pub fn reduce_time(&self) -> Duration {
        self.reduce_time_by_node
            .iter()
            .max()
            .copied()
            .unwrap_or_default()
    }

    /// The job's simulated makespan: BSP phases joined by barriers, like a
    /// MapReduce round — `max(map) + comm + max(reduce)`.
    pub fn sim_time(&self) -> Duration {
        self.map_time() + self.comm_time + self.reduce_time()
    }
}

/// Sum of the simulated times of a sequence of jobs (a whole workflow, which
/// launches its jobs one by one).
pub fn total_sim_time(jobs: &[JobStats]) -> Duration {
    jobs.iter().map(JobStats::sim_time).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_volume() {
        let net = NetModel {
            latency_s: 1e-3,
            bytes_per_s: 1e6,
        };
        let t = net.transfer_time(2, 1_000_000);
        assert!((t.as_secs_f64() - (0.002 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn instant_network_is_free() {
        let t = NetModel::instant().transfer_time(1000, u64::MAX / 2);
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn infiniband_beats_ethernet() {
        let msg = 1_000;
        let bytes = 100_000_000;
        assert!(
            NetModel::infiniband_qdr().transfer_time(msg, bytes)
                < NetModel::ethernet_10g().transfer_time(msg, bytes)
        );
    }

    #[test]
    fn comm_time_uses_busiest_node() {
        let ex = ExchangeStats {
            remote_bytes: 300,
            remote_messages: 3,
            sent_by_node: vec![100, 200, 0],
            recv_by_node: vec![50, 0, 250],
        };
        let net = NetModel {
            latency_s: 0.0,
            bytes_per_s: 1000.0,
        };
        // Busiest node is node 2 with max(0, 250) = 250 bytes.
        assert!((ex.comm_time(&net).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sim_time_is_bsp_sum() {
        let st = JobStats {
            map_time_by_node: vec![Duration::from_millis(5), Duration::from_millis(9)],
            reduce_time_by_node: vec![Duration::from_millis(4)],
            comm_time: Duration::from_millis(2),
            ..Default::default()
        };
        assert_eq!(st.map_time(), Duration::from_millis(9));
        assert_eq!(st.sim_time(), Duration::from_millis(15));
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = JobStats::default();
        assert_eq!(st.sim_time(), Duration::ZERO);
        assert_eq!(
            ExchangeStats::default().comm_time(&NetModel::default()),
            Duration::ZERO
        );
    }
}
