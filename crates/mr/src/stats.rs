//! Virtual-clock timing and network modeling.

use std::time::Duration;

/// A simple α–β model of the interconnect: each message costs a fixed
/// latency (α) and each byte costs `1/bandwidth` (β).
///
/// Two presets match the paper's testbed: QDR InfiniBand with RDMA (what
/// MVAPICH2 gives the PaPar/MR-MPI stack) and 10 Gbps Ethernet sockets
/// (what PowerLyra's GraphLab shuffle uses) — the contrast the paper calls
/// out when explaining Figure 15.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bytes_per_s: f64,
}

impl NetModel {
    /// QDR InfiniBand with RDMA: ~2 µs latency, 32 Gbit/s effective.
    pub fn infiniband_qdr() -> Self {
        NetModel {
            latency_s: 2e-6,
            bytes_per_s: 32e9 / 8.0,
        }
    }

    /// 10 Gbps Ethernet over sockets: ~50 µs latency, 10 Gbit/s nominal
    /// (socket stacks rarely exceed ~70% of line rate; use 7 Gbit/s).
    pub fn ethernet_10g() -> Self {
        NetModel {
            latency_s: 50e-6,
            bytes_per_s: 7e9 / 8.0,
        }
    }

    /// An infinitely fast network (useful to isolate compute effects in
    /// ablation experiments).
    pub fn instant() -> Self {
        NetModel {
            latency_s: 0.0,
            bytes_per_s: f64::INFINITY,
        }
    }

    /// Time to deliver `messages` messages totalling `bytes` bytes.
    ///
    /// Zero work is free on *every* model: without the fast path a
    /// degenerate zero-bandwidth model turned `0/0` into NaN and
    /// reported an eternity for doing nothing, and finite models paid a
    /// float round-trip to compute zero. Otherwise saturates instead of
    /// panicking: byte counts near `u64::MAX` (or a degenerate
    /// zero-bandwidth model) yield `Duration::MAX` rather than tripping
    /// `Duration::from_secs_f64`'s overflow panic.
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        if messages == 0 && bytes == 0 {
            return Duration::ZERO;
        }
        let secs = self.latency_s * messages as f64 + bytes as f64 / self.bytes_per_s;
        if !secs.is_finite() || secs >= Duration::MAX.as_secs_f64() {
            Duration::MAX
        } else {
            Duration::from_secs_f64(secs)
        }
    }
}

impl Default for NetModel {
    /// The default models the paper's primary configuration (InfiniBand).
    fn default() -> Self {
        NetModel::infiniband_qdr()
    }
}

/// Byte/message accounting of one all-to-all exchange.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Total bytes moved between distinct nodes (self-sends are free, as
    /// MR-MPI keeps rank-local data in memory).
    pub remote_bytes: u64,
    /// Number of non-empty remote (sender, receiver) transfers.
    pub remote_messages: u64,
    /// Per-node bytes sent to other nodes.
    pub sent_by_node: Vec<u64>,
    /// Per-node bytes received from other nodes.
    pub recv_by_node: Vec<u64>,
}

impl ExchangeStats {
    /// The communication makespan under `net`: the busiest node's traffic
    /// (max of its send and receive volume, as links are full duplex) plus
    /// its message latencies.
    pub fn comm_time(&self, net: &NetModel) -> Duration {
        let nodes = self.sent_by_node.len().max(1);
        let per_node_msgs = if self.remote_messages == 0 {
            0
        } else {
            self.remote_messages.div_ceil(nodes as u64)
        };
        let busiest = self
            .sent_by_node
            .iter()
            .zip(&self.recv_by_node)
            .map(|(&s, &r)| s.max(r))
            .max()
            .unwrap_or(0);
        net.transfer_time(per_node_msgs, busiest)
    }
}

/// Recovery-side accounting of one job: everything the cluster spent
/// surviving injected faults, on top of the fault-free work. All of it is
/// *also* charged to the regular phase/communication times (the virtual
/// clock pays for recovery), so these fields answer "how much of the
/// makespan was overhead" without changing how `sim_time` composes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Faults that fired during the job.
    pub faults_injected: u32,
    /// Task executions lost to crashes (each implies one re-execution).
    pub tasks_retried: u32,
    /// Compute time of task executions whose results were lost and had to
    /// be redone (the extra compute caused by crashes).
    pub reexec_task_time: Duration,
    /// Virtual time spent in retry backoff waits.
    pub backoff_time: Duration,
    /// Bytes moved to place fragment replicas (checkpoint cost).
    pub replication_bytes: u64,
    /// Replica placement transfers.
    pub replication_messages: u64,
    /// Bytes re-fetched from replicas to restore a crashed node's store.
    pub restore_bytes: u64,
    /// Restore transfers.
    pub restore_messages: u64,
    /// Bytes resent after dropped/corrupted transfers or reducer crashes.
    pub retransmit_bytes: u64,
    /// Retransmitted transfers.
    pub retransmit_messages: u64,
    /// Modeled time of all recovery traffic (replication + restore +
    /// retransmit) under the job's network model; already folded into the
    /// job's `comm_time`.
    pub comm_time: Duration,
}

impl RecoveryStats {
    /// True when the job saw no fault and did no recovery work.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryStats::default()
    }

    /// All recovery-traffic bytes.
    pub fn total_bytes(&self) -> u64 {
        self.replication_bytes + self.restore_bytes + self.retransmit_bytes
    }

    /// All recovery-traffic transfers.
    pub fn total_messages(&self) -> u64 {
        self.replication_messages + self.restore_messages + self.retransmit_messages
    }

    /// Fold another job's recovery accounting into this one (workflow-level
    /// totals).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.faults_injected += other.faults_injected;
        self.tasks_retried += other.tasks_retried;
        self.reexec_task_time += other.reexec_task_time;
        self.backoff_time += other.backoff_time;
        self.replication_bytes += other.replication_bytes;
        self.replication_messages += other.replication_messages;
        self.restore_bytes += other.restore_bytes;
        self.restore_messages += other.restore_messages;
        self.retransmit_bytes += other.retransmit_bytes;
        self.retransmit_messages += other.retransmit_messages;
        self.comm_time += other.comm_time;
    }
}

/// Reduce-side hot-path accounting: how many bytes and heap allocations
/// the shuffle→reduce hop *staged* through intermediate representations
/// that exist only to be sorted, versus the bytes it *materialized* into
/// reducer-visible owned values.
///
/// On the legacy (owned) path every pair is eagerly decoded into a
/// `ShuffledPair` before the sort: the struct shell is staged per pair and
/// every decoded key/entry heap allocation is live across the sort. On the
/// zero-copy path the sort operates on a 16-byte location index plus a
/// 16-byte packed `(reducer, key-prefix, scan-index)` integer per pair;
/// only prefix-tie runs re-decode their keys. Both paths materialize the
/// same owned values for the (unchanged) `Reducer` API, so
/// `materialized_bytes` is mode-invariant and reported for transparency.
///
/// All four counters are computed analytically from the data and the mode
/// — never from sort internals — so they are identical at every thread
/// count (the Chrome trace export byte-compares across thread counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPathStats {
    /// Bytes written into sort-side staging that is discarded after the
    /// sort (pair structs on the owned path; location + packed-key indexes
    /// and tie-run key re-decodes on the zero-copy path).
    pub staged_bytes: u64,
    /// Heap allocations live across the reduce-side sort (eagerly decoded
    /// keys/entries on the owned path; tie-run key decodes on the
    /// zero-copy path). Per-vector container allocations are O(1) per task
    /// in both modes and not counted.
    pub staged_allocs: u64,
    /// Wire bytes decoded into reducer-visible owned values (keys +
    /// entries); equal in both modes.
    pub materialized_bytes: u64,
    /// Pairs that landed in a key-prefix tie run (≥ 2 pairs sharing
    /// `(reducer, prefix)`) during a zero-copy keyed sort; 0 on the owned
    /// path, where no prefixes exist.
    pub tie_pairs: u64,
}

impl HotPathStats {
    /// Fold another task's hot-path accounting into this one.
    pub fn merge(&mut self, other: &HotPathStats) {
        self.staged_bytes += other.staged_bytes;
        self.staged_allocs += other.staged_allocs;
        self.materialized_bytes += other.materialized_bytes;
        self.tie_pairs += other.tie_pairs;
    }
}

/// Timing and volume summary of one MapReduce job under the virtual clock.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Job name (the workflow operator id).
    pub name: String,
    /// Measured compute time of each node's map phase.
    pub map_time_by_node: Vec<Duration>,
    /// Measured compute time of each node's reduce phase.
    pub reduce_time_by_node: Vec<Duration>,
    /// Shuffle accounting.
    pub exchange: ExchangeStats,
    /// Modeled communication time of the shuffle.
    pub comm_time: Duration,
    /// Records entering the map phase.
    pub records_in: u64,
    /// Key-value pairs emitted by mappers.
    pub pairs_shuffled: u64,
    /// Records in the reduce output.
    pub records_out: u64,
    /// Fault-recovery accounting (all zero on a fault-free run without
    /// replication).
    pub recovery: RecoveryStats,
    /// Reduce-side hot-path staging/allocation accounting (summed over
    /// nodes; zero for jobs that bypass the engine's reduce path).
    pub hot: HotPathStats,
}

impl JobStats {
    /// Critical-path map time (the slowest node).
    pub fn map_time(&self) -> Duration {
        self.map_time_by_node
            .iter()
            .max()
            .copied()
            .unwrap_or_default()
    }

    /// Critical-path reduce time (the slowest node).
    pub fn reduce_time(&self) -> Duration {
        self.reduce_time_by_node
            .iter()
            .max()
            .copied()
            .unwrap_or_default()
    }

    /// The job's simulated makespan: BSP phases joined by barriers, like a
    /// MapReduce round — `max(map) + comm + max(reduce)`.
    pub fn sim_time(&self) -> Duration {
        self.map_time() + self.comm_time + self.reduce_time()
    }

    /// Attach the recovery accounting accumulated while the job ran and
    /// charge its traffic to the modeled communication time. Compute-side
    /// recovery (re-execution, backoff) is already inside the per-node phase
    /// times; this adds the wire side so `sim_time` pays for everything.
    pub fn absorb_recovery(&mut self, mut recovery: RecoveryStats, net: &NetModel) {
        if !recovery.is_zero() {
            let t = net.transfer_time(recovery.total_messages(), recovery.total_bytes());
            recovery.comm_time = t;
            self.comm_time += t;
        }
        self.recovery = recovery;
    }

    /// Cross-check the engine's counters against static `[lo, hi]` bounds
    /// (the executor's debug-mode bounds verifier feeds intervals from the
    /// abstract interpretation in `papar_core::bounds`). Shuffle bytes are
    /// the nominal exchange only — retransmits live in the recovery ledger
    /// and are bounded separately. Returns the first violation, rendered.
    pub fn counters_within(
        &self,
        records_in: (u64, u64),
        pairs: (u64, u64),
        records_out: (u64, u64),
        shuffle_bytes_hi: u64,
    ) -> std::result::Result<(), String> {
        let checks = [
            ("records_in", self.records_in, records_in),
            ("pairs_shuffled", self.pairs_shuffled, pairs),
            ("records_out", self.records_out, records_out),
            (
                "exchange.remote_bytes",
                self.exchange.remote_bytes,
                (0, shuffle_bytes_hi),
            ),
        ];
        for (what, observed, (lo, hi)) in checks {
            if observed < lo || observed > hi {
                return Err(format!(
                    "job '{}': observed {what} = {observed} escapes its static bound \
                     [{lo}, {hi}]",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// Sum of the simulated times of a sequence of jobs (a whole workflow, which
/// launches its jobs one by one).
pub fn total_sim_time(jobs: &[JobStats]) -> Duration {
    jobs.iter().map(JobStats::sim_time).sum()
}

/// Build a coarse [`papar_trace::JobTrace`] from finished [`JobStats`] —
/// the fallback for jobs that bypass the engine's instrumented path
/// (custom operators). Phase virtual times come straight from the stats
/// (so they still sum to the job's makespan), deterministic times are
/// modeled from the stats' record/byte counters, and there are no
/// per-task spans; recovery counters land on the shuffle phase.
pub fn job_trace_from_stats(
    stats: &JobStats,
    net: &NetModel,
    cost: &papar_trace::CostModel,
) -> papar_trace::JobTrace {
    use papar_trace::{duration_ns, Counters, PhaseKind, PhaseTrace};

    let rec = &stats.recovery;
    let map = PhaseTrace::solo(
        PhaseKind::Map,
        stats.map_time(),
        cost.compute_ns(stats.records_in, stats.pairs_shuffled, 0),
        Counters {
            records_in: stats.records_in,
            pairs: stats.pairs_shuffled,
            ..Counters::default()
        },
    );
    let shuffle = PhaseTrace::solo(
        PhaseKind::Shuffle,
        stats.comm_time,
        duration_ns(stats.exchange.comm_time(net)).saturating_add(duration_ns(
            net.transfer_time(rec.total_messages(), rec.total_bytes()),
        )),
        Counters {
            shuffle_bytes: stats.exchange.remote_bytes,
            messages: stats.exchange.remote_messages,
            frames_checksummed: stats.exchange.remote_messages + rec.retransmit_messages,
            retries: rec.tasks_retried as u64,
            crashes: rec.faults_injected as u64,
            restore_bytes: rec.restore_bytes,
            restore_messages: rec.restore_messages,
            retransmit_bytes: rec.retransmit_bytes,
            retransmit_messages: rec.retransmit_messages,
            replication_bytes: rec.replication_bytes,
            backoff_ns: duration_ns(rec.backoff_time),
            ..Counters::default()
        },
    );
    let reduce = PhaseTrace::solo(
        PhaseKind::Reduce,
        stats.reduce_time(),
        cost.compute_ns(stats.records_out, stats.pairs_shuffled, 0),
        Counters {
            records_out: stats.records_out,
            ..Counters::default()
        },
    );
    papar_trace::JobTrace {
        name: stats.name.clone(),
        phases: vec![map, shuffle, reduce],
        skew: None,
        covers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_within_reports_the_first_escape() {
        let stats = JobStats {
            name: "sort".to_string(),
            records_in: 100,
            pairs_shuffled: 100,
            records_out: 100,
            exchange: ExchangeStats {
                remote_bytes: 2048,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(stats
            .counters_within((100, 100), (0, 100), (100, 100), 4096)
            .is_ok());
        // A violated interval names the counter and the bound.
        let err = stats
            .counters_within((100, 100), (0, 99), (100, 100), 4096)
            .unwrap_err();
        assert!(err.contains("pairs_shuffled"), "{err}");
        assert!(err.contains("[0, 99]"), "{err}");
        let err = stats
            .counters_within((100, 100), (0, 100), (100, 100), 1024)
            .unwrap_err();
        assert!(err.contains("remote_bytes"), "{err}");
    }

    #[test]
    fn transfer_time_scales_with_volume() {
        let net = NetModel {
            latency_s: 1e-3,
            bytes_per_s: 1e6,
        };
        let t = net.transfer_time(2, 1_000_000);
        assert!((t.as_secs_f64() - (0.002 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn instant_network_is_free() {
        let t = NetModel::instant().transfer_time(1000, u64::MAX / 2);
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn infiniband_beats_ethernet() {
        let msg = 1_000;
        let bytes = 100_000_000;
        assert!(
            NetModel::infiniband_qdr().transfer_time(msg, bytes)
                < NetModel::ethernet_10g().transfer_time(msg, bytes)
        );
    }

    #[test]
    fn comm_time_uses_busiest_node() {
        let ex = ExchangeStats {
            remote_bytes: 300,
            remote_messages: 3,
            sent_by_node: vec![100, 200, 0],
            recv_by_node: vec![50, 0, 250],
        };
        let net = NetModel {
            latency_s: 0.0,
            bytes_per_s: 1000.0,
        };
        // Busiest node is node 2 with max(0, 250) = 250 bytes.
        assert!((ex.comm_time(&net).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sim_time_is_bsp_sum() {
        let st = JobStats {
            map_time_by_node: vec![Duration::from_millis(5), Duration::from_millis(9)],
            reduce_time_by_node: vec![Duration::from_millis(4)],
            comm_time: Duration::from_millis(2),
            ..Default::default()
        };
        assert_eq!(st.map_time(), Duration::from_millis(9));
        assert_eq!(st.sim_time(), Duration::from_millis(15));
    }

    #[test]
    fn transfer_time_zero_volume_is_zero() {
        for net in [
            NetModel::infiniband_qdr(),
            NetModel::ethernet_10g(),
            NetModel::instant(),
        ] {
            assert_eq!(net.transfer_time(0, 0), Duration::ZERO);
        }
        // Zero bytes still pay per-message latency.
        let t = NetModel {
            latency_s: 1e-3,
            bytes_per_s: 1e6,
        }
        .transfer_time(5, 0);
        assert!((t.as_secs_f64() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_saturates_instead_of_panicking() {
        // u64::MAX bytes over a slow link would overflow Duration.
        let slow = NetModel {
            latency_s: 0.0,
            bytes_per_s: 1.0,
        };
        assert_eq!(slow.transfer_time(0, u64::MAX), Duration::MAX);
        assert_eq!(slow.transfer_time(u64::MAX, u64::MAX), Duration::MAX);
        // Latency alone can also saturate: infinite per-message cost.
        let laggy = NetModel {
            latency_s: f64::INFINITY,
            bytes_per_s: 1e9,
        };
        assert_eq!(laggy.transfer_time(1, 0), Duration::MAX);
        // A degenerate zero-bandwidth model divides by zero (inf or NaN),
        // but zero work is still free rather than an eternity.
        let dead = NetModel {
            latency_s: 0.0,
            bytes_per_s: 0.0,
        };
        assert_eq!(dead.transfer_time(0, 1), Duration::MAX);
        assert_eq!(dead.transfer_time(0, 0), Duration::ZERO);
        // The instant network stays free even for huge volumes.
        assert_eq!(
            NetModel::instant().transfer_time(u64::MAX, u64::MAX),
            Duration::ZERO
        );
    }

    #[test]
    fn recovery_stats_merge_and_charge() {
        let mut a = RecoveryStats {
            faults_injected: 1,
            tasks_retried: 1,
            reexec_task_time: Duration::from_millis(5),
            restore_bytes: 100,
            restore_messages: 2,
            ..Default::default()
        };
        assert!(!a.is_zero());
        let b = RecoveryStats {
            retransmit_bytes: 50,
            retransmit_messages: 1,
            backoff_time: Duration::from_millis(10),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.faults_injected, 1);
        assert_eq!(a.total_bytes(), 150);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.backoff_time, Duration::from_millis(10));

        let mut st = JobStats::default();
        let net = NetModel {
            latency_s: 0.0,
            bytes_per_s: 1000.0,
        };
        st.absorb_recovery(a.clone(), &net);
        // 150 bytes at 1000 B/s -> 0.15 s of recovery traffic on the clock.
        assert!((st.comm_time.as_secs_f64() - 0.15).abs() < 1e-12);
        assert_eq!(st.recovery.comm_time, st.comm_time);

        let mut clean = JobStats::default();
        clean.absorb_recovery(RecoveryStats::default(), &net);
        assert_eq!(clean.comm_time, Duration::ZERO);
        assert!(clean.recovery.is_zero());
    }

    #[test]
    fn job_trace_from_stats_sums_to_makespan() {
        let st = JobStats {
            name: "custom".into(),
            map_time_by_node: vec![Duration::from_millis(3), Duration::from_millis(7)],
            reduce_time_by_node: vec![Duration::from_millis(2)],
            comm_time: Duration::from_millis(5),
            records_in: 10,
            pairs_shuffled: 10,
            records_out: 10,
            exchange: ExchangeStats {
                remote_bytes: 1024,
                remote_messages: 2,
                sent_by_node: vec![1024, 0],
                recv_by_node: vec![0, 1024],
            },
            ..Default::default()
        };
        let trace = job_trace_from_stats(
            &st,
            &NetModel::default(),
            &papar_trace::CostModel::default(),
        );
        assert_eq!(trace.name, "custom");
        assert_eq!(trace.phases.len(), 3);
        assert_eq!(trace.virt(), st.sim_time());
        assert!(trace.det_ns() > 0);
        assert_eq!(trace.counters().shuffle_bytes, 1024);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = JobStats::default();
        assert_eq!(st.sim_time(), Duration::ZERO);
        assert_eq!(
            ExchangeStats::default().comm_time(&NetModel::default()),
            Duration::ZERO
        );
    }
}
