//! The simulated cluster: nodes, dataset placement, and the all-to-all
//! exchange primitive.

use papar_record::batch::{Batch, Dataset};
use papar_record::Schema;
use std::sync::Arc;

use crate::stats::{ExchangeStats, NetModel};
use crate::store::DataStore;
use crate::{MrError, Result};

/// `N` simulated compute nodes with private storage and a modeled
/// interconnect.
///
/// Node tasks execute sequentially under a virtual clock (see the crate
/// docs); the cluster's job is data placement, the exchange primitive, and
/// accounting.
pub struct Cluster {
    nodes: Vec<DataStore>,
    net: NetModel,
}

impl Cluster {
    /// A cluster of `num_nodes` nodes with the default (InfiniBand) network
    /// model.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_net(num_nodes, NetModel::default())
    }

    /// A cluster with an explicit network model.
    pub fn with_net(num_nodes: usize, net: NetModel) -> Self {
        assert!(num_nodes > 0, "a cluster needs at least one node");
        Cluster {
            nodes: (0..num_nodes).map(|_| DataStore::new()).collect(),
            net,
        }
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The interconnect model.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Immutable view of one node's store.
    pub fn node(&self, id: usize) -> &DataStore {
        &self.nodes[id]
    }

    /// Mutable view of one node's store.
    pub fn node_mut(&mut self, id: usize) -> &mut DataStore {
        &mut self.nodes[id]
    }

    /// Split a dataset into contiguous blocks, one per node — how an input
    /// file's splits land on the mappers (`InputFormat.getSplits`).
    ///
    /// Flat batches split by records, packed batches by groups. Fragment
    /// ordinals record the block order so `collect` restores input order.
    pub fn scatter(&mut self, name: &str, dataset: Dataset) -> Result<()> {
        let n = self.num_nodes();
        let schema = dataset.schema.clone();
        match dataset.batch {
            Batch::Flat(records) => {
                for (i, chunk) in split_evenly(records, n).into_iter().enumerate() {
                    self.nodes[i].put(name, i as u32, Dataset::new(schema.clone(), Batch::Flat(chunk)));
                }
            }
            Batch::Packed(groups) => {
                for (i, chunk) in split_evenly(groups, n).into_iter().enumerate() {
                    self.nodes[i].put(
                        name,
                        i as u32,
                        Dataset::new(schema.clone(), Batch::Packed(chunk)),
                    );
                }
            }
        }
        Ok(())
    }

    /// Place explicit fragments: `fragments[i]` goes to node `i % N` with
    /// ordinal `i` (how a previous job's reducer outputs are already laid
    /// out, or how pre-partitioned data is loaded).
    pub fn scatter_fragments(&mut self, name: &str, fragments: Vec<Dataset>) {
        let n = self.num_nodes();
        for (i, frag) in fragments.into_iter().enumerate() {
            self.nodes[i % n].put(name, i as u32, frag);
        }
    }

    /// Gather every fragment of a dataset across all nodes, in global
    /// ordinal order. For a job output this is reducer order — i.e. the
    /// output partitions in partition order.
    pub fn collect(&self, name: &str) -> Result<Vec<Dataset>> {
        let mut frags: Vec<(u32, Dataset)> = Vec::new();
        let mut found = false;
        for node in &self.nodes {
            if let Some(local) = node.get(name) {
                found = true;
                for f in local {
                    frags.push((f.ordinal, (*f.data).clone()));
                }
            }
        }
        if !found {
            return Err(MrError(format!("dataset '{name}' not found on any node")));
        }
        frags.sort_by_key(|(ord, _)| *ord);
        Ok(frags.into_iter().map(|(_, d)| d).collect())
    }

    /// Gather and concatenate a dataset into one flat-ordered `Dataset`.
    pub fn collect_concat(&self, name: &str) -> Result<Dataset> {
        let frags = self.collect(name)?;
        let schema: Arc<Schema> = frags
            .first()
            .map(|d| d.schema.clone())
            .ok_or_else(|| MrError(format!("dataset '{name}' has no fragments")))?;
        // Preserve the format: concatenating packed fragments keeps groups.
        let all_packed = frags
            .iter()
            .all(|d| matches!(d.batch, Batch::Packed(_)));
        if all_packed {
            let mut groups = Vec::new();
            for f in frags {
                groups.extend(f.batch.into_packed().map_err(MrError::from_codec)?);
            }
            Ok(Dataset::new(schema, Batch::Packed(groups)))
        } else {
            let mut records = Vec::new();
            for f in frags {
                records.extend(f.batch.flatten());
            }
            Ok(Dataset::new(schema, Batch::Flat(records)))
        }
    }

    /// Drop a dataset everywhere; returns how many nodes held it.
    pub fn drop_dataset(&mut self, name: &str) -> usize {
        self.nodes.iter_mut().map(|n| n.remove(name)).filter(|&r| r).count()
    }

    /// All-to-all exchange of byte buffers: `outboxes[from][to]` is the
    /// buffer node `from` sends to node `to`. Returns the inboxes (for each
    /// receiver, the `(sender, buffer)` list in sender order) plus the
    /// exchange accounting. Self-sends are delivered but cost nothing, like
    /// MR-MPI's in-memory rank-local aggregation.
    pub fn exchange(&self, outboxes: Vec<Vec<Vec<u8>>>) -> Result<(Inboxes, ExchangeStats)> {
        let n = self.num_nodes();
        if outboxes.len() != n || outboxes.iter().any(|row| row.len() != n) {
            return Err(MrError(format!(
                "exchange wants an {n}x{n} outbox matrix, got {}x{:?}",
                outboxes.len(),
                outboxes.first().map(Vec::len)
            )));
        }
        let mut stats = ExchangeStats {
            sent_by_node: vec![0; n],
            recv_by_node: vec![0; n],
            ..Default::default()
        };
        let mut inboxes: Vec<Vec<(usize, Vec<u8>)>> = (0..n).map(|_| Vec::new()).collect();
        for (from, row) in outboxes.into_iter().enumerate() {
            for (to, buf) in row.into_iter().enumerate() {
                if from != to && !buf.is_empty() {
                    stats.remote_bytes += buf.len() as u64;
                    stats.remote_messages += 1;
                    stats.sent_by_node[from] += buf.len() as u64;
                    stats.recv_by_node[to] += buf.len() as u64;
                }
                if !buf.is_empty() {
                    inboxes[to].push((from, buf));
                }
            }
        }
        Ok((inboxes, stats))
    }
}

/// Per-receiver `(sender, buffer)` lists produced by [`Cluster::exchange`].
pub type Inboxes = Vec<Vec<(usize, Vec<u8>)>>;

impl MrError {
    fn from_codec(e: papar_record::CodecError) -> Self {
        MrError(e.to_string())
    }
}

/// Split a vector into `n` contiguous chunks of near-equal length (the
/// earlier chunks take the remainder, like HDFS block assignment).
pub fn split_evenly<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let n = n.max(1);
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    // Take chunks from the back to avoid repeated shifting, then reverse.
    let mut sizes: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    sizes.reverse();
    for sz in sizes {
        let tail = items.split_off(items.len() - sz);
        out.push(tail);
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use papar_config::input::FieldType;
    use papar_record::rec;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![("a", FieldType::Integer)]))
    }

    fn flat(vals: std::ops::Range<i32>) -> Dataset {
        Dataset::new(schema(), Batch::Flat(vals.map(|v| rec![v]).collect()))
    }

    #[test]
    fn split_evenly_covers_and_orders() {
        let chunks = split_evenly((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let empty = split_evenly(Vec::<i32>::new(), 4);
        assert_eq!(empty.len(), 4);
        assert!(empty.iter().all(Vec::is_empty));
        let more_nodes = split_evenly(vec![1, 2], 5);
        assert_eq!(more_nodes.iter().filter(|c| !c.is_empty()).count(), 2);
    }

    #[test]
    fn scatter_collect_roundtrip() {
        let mut c = Cluster::new(4);
        c.scatter("in", flat(0..10)).unwrap();
        let back = c.collect_concat("in").unwrap();
        assert_eq!(back.batch.record_count(), 10);
        let flat_records = back.batch.into_flat().unwrap();
        let vals: Vec<i32> = flat_records
            .iter()
            .map(|r| match r.value(0).unwrap() {
                papar_record::Value::Int(v) => *v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_fragments_round_robin() {
        let mut c = Cluster::new(2);
        let frags: Vec<Dataset> = (0..5).map(|i| flat(i..i + 1)).collect();
        c.scatter_fragments("p", frags);
        assert_eq!(c.node(0).get("p").unwrap().len(), 3); // ordinals 0, 2, 4
        assert_eq!(c.node(1).get("p").unwrap().len(), 2); // ordinals 1, 3
        let collected = c.collect("p").unwrap();
        assert_eq!(collected.len(), 5);
    }

    #[test]
    fn collect_missing_dataset_errors() {
        let c = Cluster::new(2);
        assert!(c.collect("ghost").is_err());
    }

    #[test]
    fn drop_dataset_removes_everywhere() {
        let mut c = Cluster::new(3);
        c.scatter("x", flat(0..9)).unwrap();
        assert_eq!(c.drop_dataset("x"), 3);
        assert!(c.collect("x").is_err());
    }

    #[test]
    fn exchange_accounts_remote_bytes_only() {
        let c = Cluster::new(2);
        let outboxes = vec![
            vec![vec![1, 2, 3], vec![4, 5]], // node 0: to self (3B), to 1 (2B)
            vec![vec![], vec![9; 10]],       // node 1: nothing to 0, self 10B
        ];
        let (inboxes, stats) = c.exchange(outboxes).unwrap();
        assert_eq!(stats.remote_bytes, 2);
        assert_eq!(stats.remote_messages, 1);
        assert_eq!(stats.sent_by_node, vec![2, 0]);
        assert_eq!(stats.recv_by_node, vec![0, 2]);
        assert_eq!(inboxes[0].len(), 1); // self-send delivered
        assert_eq!(inboxes[1].len(), 2);
    }

    #[test]
    fn exchange_rejects_malformed_matrix() {
        let c = Cluster::new(2);
        assert!(c.exchange(vec![vec![vec![]]]).is_err());
        assert!(c.exchange(vec![vec![vec![]], vec![vec![]]]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_panics() {
        let _ = Cluster::new(0);
    }

    #[test]
    fn packed_scatter_splits_groups() {
        let schema = schema();
        let packed = Batch::Flat(vec![rec![1], rec![1], rec![2], rec![3]])
            .pack_by(0)
            .unwrap();
        let mut c = Cluster::new(2);
        c.scatter("g", Dataset::new(schema, packed)).unwrap();
        let back = c.collect_concat("g").unwrap();
        assert_eq!(back.batch.entry_count(), 3);
        assert_eq!(back.batch.record_count(), 4);
    }
}
