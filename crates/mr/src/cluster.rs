//! The simulated cluster: nodes, dataset placement, and the all-to-all
//! exchange primitive.

use papar_record::batch::{Batch, Dataset};
use papar_record::{wire, Schema};
use papar_trace::{CostModel, JobTrace, NoopSink, PhaseTrace, TraceSink, WorkflowTrace};
use std::sync::Arc;

use crate::fault::{ExchangeFaultKind, Fault, FaultPlan, RecoveryAction, RetryPolicy};
use crate::stats::{ExchangeStats, NetModel, RecoveryStats};
use crate::store::DataStore;
use crate::{MrError, Result, TaskPhase};

/// `N` simulated compute nodes with private storage and a modeled
/// interconnect.
///
/// Node tasks within a phase execute concurrently on up to
/// [`Cluster::threads`] OS threads under a virtual clock (see the crate
/// docs); the cluster's job is data placement, the exchange primitive, and
/// accounting.
///
/// A cluster can also be configured for chaos: a replication factor (each
/// materialized fragment gets `r` replicas on the following nodes), a
/// [`FaultPlan`] of scheduled failures, and a [`RetryPolicy`] governing how
/// failed tasks re-execute. Recovery costs accumulate in an internal
/// [`RecoveryStats`] drained into the next job's stats, and every injected
/// fault plus the action taken is appended to an event log (see
/// [`Cluster::drain_events`]).
pub struct Cluster {
    nodes: Vec<DataStore>,
    net: NetModel,
    /// Replicas kept per fragment beyond the primary.
    replication: usize,
    retry: RetryPolicy,
    fault_plan: Option<FaultPlan>,
    /// Jobs launched so far; fault schedules address jobs by this index.
    jobs_run: usize,
    /// Recovery accounting since the last drain (scatter-time replication
    /// lands on the first job that runs afterwards).
    pending_recovery: RecoveryStats,
    events: Vec<RecoveryAction>,
    /// OS threads the engine may use per phase (node tasks run concurrently
    /// up to this budget; leftover threads parallelize reduce-side sorts).
    threads: usize,
    /// `hints[from][to]`: the previous map phase's outbox sizes, used to
    /// pre-size the next phase's shuffle buffers.
    shuffle_hints: Vec<Vec<usize>>,
    /// Reduce tasks sort borrowed references into their inbox buffers
    /// (key-prefix packed sort) instead of eagerly decoded owned pairs.
    /// Output bytes are identical either way; off is the escape hatch.
    zerocopy: bool,
    /// Where the engine reports spans. Defaults to the disabled
    /// [`NoopSink`]; `Send + Sync` because phase workers share
    /// `&Cluster`, though all sink calls happen on the driver thread.
    tracer: Box<dyn TraceSink>,
    /// Cost model behind the trace's deterministic clock.
    cost: CostModel,
}

impl Cluster {
    /// A cluster of `num_nodes` nodes with the default (InfiniBand) network
    /// model.
    ///
    /// Panics when `num_nodes` is zero; use [`Cluster::try_new`] to get an
    /// error instead.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_net(num_nodes, NetModel::default())
    }

    /// A cluster with an explicit network model.
    ///
    /// Panics when `num_nodes` is zero; use [`Cluster::try_with_net`] to
    /// get an error instead.
    pub fn with_net(num_nodes: usize, net: NetModel) -> Self {
        Self::try_with_net(num_nodes, net).expect("a cluster needs at least one node")
    }

    /// Fallible constructor with the default network model.
    pub fn try_new(num_nodes: usize) -> Result<Self> {
        Self::try_with_net(num_nodes, NetModel::default())
    }

    /// Fallible constructor with an explicit network model; rejects
    /// zero-node clusters and a malformed `PAPAR_THREADS` budget
    /// ([`MrError::BadThreadBudget`]) instead of panicking, so callers
    /// validating external input (e.g. a CLI `--nodes` flag or a daemon's
    /// startup environment) can report the error.
    pub fn try_with_net(num_nodes: usize, net: NetModel) -> Result<Self> {
        if num_nodes == 0 {
            return Err(MrError::msg("a cluster needs at least one node"));
        }
        Ok(Cluster {
            nodes: (0..num_nodes).map(|_| DataStore::new()).collect(),
            net,
            replication: 0,
            retry: RetryPolicy::default(),
            fault_plan: None,
            jobs_run: 0,
            pending_recovery: RecoveryStats::default(),
            events: Vec::new(),
            threads: default_threads()?,
            shuffle_hints: Vec::new(),
            zerocopy: true,
            tracer: Box::new(NoopSink),
            cost: CostModel::default(),
        })
    }

    /// Install a trace sink (builder form). See [`Cluster::set_tracer`].
    pub fn with_tracer(mut self, tracer: Box<dyn TraceSink>) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Install a trace sink. The engine reports one [`JobTrace`] per
    /// finished job to it; install a [`papar_trace::Collector`] and
    /// call [`Cluster::take_trace`] afterwards to obtain the assembled
    /// [`WorkflowTrace`]. The default [`NoopSink`] reports itself
    /// disabled, which makes the engine skip all trace bookkeeping.
    pub fn set_tracer(&mut self, tracer: Box<dyn TraceSink>) {
        self.tracer = tracer;
    }

    /// Whether the installed sink wants trace records.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Finish the installed sink and take its assembled trace (`None`
    /// for non-collecting sinks).
    pub fn take_trace(&mut self) -> Option<WorkflowTrace> {
        self.tracer.finish()
    }

    /// The cost model behind the trace's deterministic clock.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Report a finished job's trace to the installed sink. Called by
    /// the engine at the job boundary; runners with jobs that bypass
    /// the engine (map-only split, custom operators) report their own.
    pub fn record_job_trace(&mut self, job: JobTrace) {
        self.tracer.record_job(job);
    }

    /// Report a pre-job sampling pass to the installed sink; it becomes
    /// the `sample` phase of the next recorded job.
    pub fn record_sample_trace(&mut self, sample: PhaseTrace) {
        self.tracer.record_sample(sample);
    }

    /// Annotate the most recently recorded job trace with the logical
    /// workflow jobs it covers. Fused physical stages call this right
    /// after the engine records the stage's job, so `--profile` and
    /// `--trace` can show which operators a single fused span stands
    /// for.
    pub fn annotate_last_job_trace(&mut self, covers: Vec<String>) {
        self.tracer.annotate_last_job(covers);
    }

    /// Set the engine's OS-thread budget (builder form). See
    /// [`Cluster::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Set how many OS threads the engine may use per phase. `1` runs node
    /// tasks sequentially (the pre-parallel behavior); higher counts run up
    /// to that many node tasks concurrently and hand leftover threads to
    /// the reduce-side sort. Output bytes and recovery accounting are
    /// identical for every value; only wall-clock time changes. Clamped to
    /// at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The engine's OS-thread budget (defaults to the `PAPAR_THREADS`
    /// environment variable, else the host's available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enable/disable the zero-copy reduce path (builder form). See
    /// [`Cluster::set_zerocopy`].
    pub fn with_zerocopy(mut self, on: bool) -> Self {
        self.set_zerocopy(on);
        self
    }

    /// Toggle the zero-copy reduce path: on (the default), reduce tasks
    /// sort packed `(reducer, key-prefix, scan-index)` integers referencing
    /// their inbox buffers and materialize owned values only at group
    /// build; off, they eagerly decode every pair before sorting (the
    /// pre-zero-copy behavior, kept as an escape hatch and ablation
    /// baseline). Output bytes, stats and the deterministic trace clock
    /// are identical for both settings; only wall time and the hot-path
    /// staging counters change.
    pub fn set_zerocopy(&mut self, on: bool) {
        self.zerocopy = on;
    }

    /// Whether reduce tasks use the zero-copy sort path.
    pub fn zerocopy(&self) -> bool {
        self.zerocopy
    }

    /// Keep `r` replicas of every materialized fragment on the `r` nodes
    /// after its primary (wrapping). `r = 0` (the default) disables
    /// checkpointing: a node crash then loses data unrecoverably.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.replication = r;
        self
    }

    /// Install a fault schedule for this run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the task retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The task retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Take the recovery log accumulated so far (injected faults and the
    /// recovery actions they triggered, in order).
    pub fn drain_events(&mut self) -> Vec<RecoveryAction> {
        std::mem::take(&mut self.events)
    }

    /// Drain the recovery accounting accumulated since the last drain.
    /// [`Cluster::run_job`] calls this at every job boundary; runners with
    /// jobs that bypass the engine (map-only local jobs) drain it
    /// themselves.
    pub fn take_recovery(&mut self) -> RecoveryStats {
        std::mem::take(&mut self.pending_recovery)
    }

    /// Return the cluster to its post-construction state for the next
    /// resident run: every node's fragments and replicas are dropped, the
    /// job counter, recovery ledger, event log, shuffle hints and fault
    /// plan are cleared, and the trace sink reverts to the disabled
    /// [`NoopSink`]. The thread budget, network model, replication
    /// factor, retry policy and zero-copy toggle are *kept* — they are
    /// deployment configuration, not run state. This is what lets a
    /// long-running `papar serve` daemon reuse one cluster across
    /// requests instead of paying construction per job.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.wipe();
        }
        self.fault_plan = None;
        self.jobs_run = 0;
        self.pending_recovery = RecoveryStats::default();
        self.events.clear();
        self.shuffle_hints.clear();
        self.tracer = Box::new(NoopSink);
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The interconnect model.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Immutable view of one node's store.
    pub fn node(&self, id: usize) -> &DataStore {
        &self.nodes[id]
    }

    /// Mutable view of one node's store.
    pub fn node_mut(&mut self, id: usize) -> &mut DataStore {
        &mut self.nodes[id]
    }

    /// Split a dataset into contiguous blocks, one per node — how an input
    /// file's splits land on the mappers (`InputFormat.getSplits`).
    ///
    /// Flat batches split by records, packed batches by groups. Fragment
    /// ordinals record the block order so `collect` restores input order.
    pub fn scatter(&mut self, name: &str, dataset: Dataset) -> Result<()> {
        let n = self.num_nodes();
        let schema = dataset.schema.clone();
        match dataset.batch {
            Batch::Flat(records) => {
                for (i, chunk) in split_evenly(records, n).into_iter().enumerate() {
                    self.put_fragment(
                        i,
                        name,
                        i as u32,
                        Dataset::new(schema.clone(), Batch::Flat(chunk)),
                    )?;
                }
            }
            Batch::Packed(groups) => {
                for (i, chunk) in split_evenly(groups, n).into_iter().enumerate() {
                    self.put_fragment(
                        i,
                        name,
                        i as u32,
                        Dataset::new(schema.clone(), Batch::Packed(chunk)),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Place explicit fragments: `fragments[i]` goes to node `i % N` with
    /// ordinal `i` (how a previous job's reducer outputs are already laid
    /// out, or how pre-partitioned data is loaded).
    pub fn scatter_fragments(&mut self, name: &str, fragments: Vec<Dataset>) -> Result<()> {
        let n = self.num_nodes();
        for (i, frag) in fragments.into_iter().enumerate() {
            self.put_fragment(i % n, name, i as u32, frag)?;
        }
        Ok(())
    }

    /// Materialize a fragment on `node` and replicate it per the cluster's
    /// replication factor: copy `i` lands on node `(node + i) % N`, and each
    /// copy's wire size is charged as checkpoint traffic. This is how job
    /// outputs, scattered inputs and map-only job outputs enter a store.
    /// Errors when the fragment cannot be wire-encoded (its replication
    /// traffic would otherwise be unaccountable).
    pub fn put_fragment(
        &mut self,
        node: usize,
        name: &str,
        ordinal: u32,
        data: Dataset,
    ) -> Result<()> {
        let arc = Arc::new(data);
        self.nodes[node].put_arc(name, ordinal, Arc::clone(&arc));
        self.replicate_fragment(node, name, ordinal, &arc)
    }

    /// Materialize a fragment from a checkpoint on `--resume`: placed and
    /// replicated exactly like [`Cluster::put_fragment`], but the replica
    /// copies charge *nothing* to the recovery accounting — the bytes were
    /// already paid for (and reported) by the run that wrote the
    /// checkpoint, and a resumed run's stats must match a cold run's.
    pub fn restore_fragment(&mut self, node: usize, name: &str, ordinal: u32, data: Dataset) {
        let arc = Arc::new(data);
        self.nodes[node].put_arc(name, ordinal, Arc::clone(&arc));
        let n = self.num_nodes();
        if self.replication == 0 || n < 2 {
            return;
        }
        for i in 1..=self.replication.min(n - 1) {
            let target = (node + i) % n;
            self.nodes[target].put_replica(name, ordinal, Arc::clone(&arc));
        }
    }

    /// Append an extra phase (checkpoint publication, resume restore) to
    /// the most recently recorded job trace.
    pub fn append_phase_to_last_job(&mut self, phase: PhaseTrace) {
        self.tracer.append_phase_last_job(phase);
    }

    /// Place the replicas of an already-stored fragment.
    fn replicate_fragment(
        &mut self,
        primary: usize,
        name: &str,
        ordinal: u32,
        data: &Arc<Dataset>,
    ) -> Result<()> {
        let n = self.num_nodes();
        if self.replication == 0 || n < 2 {
            return Ok(());
        }
        let bytes = fragment_bytes(data)?;
        for i in 1..=self.replication.min(n - 1) {
            let target = (primary + i) % n;
            self.nodes[target].put_replica(name, ordinal, Arc::clone(data));
            self.pending_recovery.replication_bytes += bytes;
            self.pending_recovery.replication_messages += 1;
        }
        Ok(())
    }

    /// Gather every fragment of a dataset across all nodes, in global
    /// ordinal order. For a job output this is reducer order — i.e. the
    /// output partitions in partition order.
    pub fn collect(&self, name: &str) -> Result<Vec<Dataset>> {
        let mut frags: Vec<(u32, Dataset)> = Vec::new();
        let mut found = false;
        for node in &self.nodes {
            if let Some(local) = node.get(name) {
                found = true;
                for f in local {
                    frags.push((f.ordinal, (*f.data).clone()));
                }
            }
        }
        if !found {
            return Err(MrError::msg(format!(
                "dataset '{name}' not found on any node"
            )));
        }
        frags.sort_by_key(|(ord, _)| *ord);
        Ok(frags.into_iter().map(|(_, d)| d).collect())
    }

    /// Gather and concatenate a dataset into one flat-ordered `Dataset`.
    pub fn collect_concat(&self, name: &str) -> Result<Dataset> {
        let frags = self.collect(name)?;
        let schema: Arc<Schema> = frags
            .first()
            .map(|d| d.schema.clone())
            .ok_or_else(|| MrError::msg(format!("dataset '{name}' has no fragments")))?;
        // Preserve the format: concatenating packed fragments keeps groups.
        let all_packed = frags.iter().all(|d| matches!(d.batch, Batch::Packed(_)));
        if all_packed {
            let mut groups = Vec::new();
            for f in frags {
                groups.extend(f.batch.into_packed().map_err(MrError::from)?);
            }
            Ok(Dataset::new(schema, Batch::Packed(groups)))
        } else {
            let mut records = Vec::new();
            for f in frags {
                records.extend(f.batch.flatten());
            }
            Ok(Dataset::new(schema, Batch::Flat(records)))
        }
    }

    /// Drop a dataset everywhere; returns how many nodes held it.
    pub fn drop_dataset(&mut self, name: &str) -> usize {
        self.nodes
            .iter_mut()
            .map(|n| n.remove(name))
            .filter(|&r| r)
            .count()
    }

    /// All-to-all exchange of byte buffers: `outboxes[from][to]` is the
    /// buffer node `from` sends to node `to`. Returns the inboxes (for each
    /// receiver, the `(sender, buffer)` list in sender order) plus the
    /// exchange accounting. Self-sends are delivered but cost nothing, like
    /// MR-MPI's in-memory rank-local aggregation.
    pub fn exchange(&self, outboxes: Vec<Vec<Vec<u8>>>) -> Result<(Inboxes, ExchangeStats)> {
        let n = self.num_nodes();
        if outboxes.len() != n || outboxes.iter().any(|row| row.len() != n) {
            return Err(MrError::msg(format!(
                "exchange wants an {n}x{n} outbox matrix, got {}x{:?}",
                outboxes.len(),
                outboxes.first().map(Vec::len)
            )));
        }
        let mut stats = ExchangeStats {
            sent_by_node: vec![0; n],
            recv_by_node: vec![0; n],
            ..Default::default()
        };
        let mut inboxes: Vec<Vec<(usize, Vec<u8>)>> = (0..n).map(|_| Vec::new()).collect();
        for (from, row) in outboxes.into_iter().enumerate() {
            for (to, buf) in row.into_iter().enumerate() {
                if from != to && !buf.is_empty() {
                    stats.remote_bytes += buf.len() as u64;
                    stats.remote_messages += 1;
                    stats.sent_by_node[from] += buf.len() as u64;
                    stats.recv_by_node[to] += buf.len() as u64;
                }
                if !buf.is_empty() {
                    inboxes[to].push((from, buf));
                }
            }
        }
        Ok((inboxes, stats))
    }

    // ---- Fault injection and recovery (used by `run_job` and by
    // map-only jobs that bypass the engine: split and custom operators
    // must also reserve a job index so fault schedules address jobs by
    // workflow position). ----

    /// Reserve the next job index (what fault schedules address).
    pub fn next_job_index(&mut self) -> usize {
        let idx = self.jobs_run;
        self.jobs_run += 1;
        idx
    }

    /// The compute slowdown of `node` under the installed fault plan.
    pub fn straggler_factor(&self, node: usize) -> f64 {
        self.fault_plan
            .as_ref()
            .map(|p| p.straggler_factor(node))
            .unwrap_or(1.0)
    }

    /// Check for (and consume) a crash scheduled at this task boundary. On
    /// a hit the node loses its entire store and is immediately restored
    /// from replicas, with the traffic charged; returns `Ok(true)` so the
    /// caller re-executes the task. Without a live replica for some lost
    /// primary fragment the crash is unrecoverable ([`MrError::DataLoss`]).
    pub fn take_crash_fault(
        &mut self,
        job_idx: usize,
        job_name: &str,
        phase: TaskPhase,
        node: usize,
    ) -> Result<bool> {
        let fired = match self.fault_plan.as_mut() {
            Some(plan) => plan.take_crash(job_idx, phase, node),
            None => false,
        };
        if !fired {
            return Ok(false);
        }
        self.pending_recovery.faults_injected += 1;
        self.events.push(RecoveryAction::FaultInjected {
            job: job_name.to_string(),
            fault: Fault::NodeCrash {
                node,
                job: job_idx,
                phase,
            },
        });
        self.crash_and_restore(job_name, node)?;
        Ok(true)
    }

    /// Pre-draw every crash scheduled for `(job_idx, phase)` as per-node
    /// counts — the parallel engine consumes faults at the phase barrier so
    /// worker threads never need `&mut` access to the plan.
    pub(crate) fn take_phase_crashes(&mut self, job_idx: usize, phase: TaskPhase) -> Vec<u32> {
        let n = self.num_nodes();
        match self.fault_plan.as_mut() {
            Some(plan) => plan.take_crashes(job_idx, phase, n),
            None => vec![0; n],
        }
    }

    /// The previous map phase's outbox sizes (`hints[from][to]`), used to
    /// pre-size shuffle buffers; empty before the first job.
    pub(crate) fn shuffle_hints(&self) -> &[Vec<usize>] {
        &self.shuffle_hints
    }

    /// Record a map phase's outbox sizes as the pre-sizing hint for the
    /// next one.
    pub(crate) fn set_shuffle_hints(&mut self, hints: Vec<Vec<usize>>) {
        self.shuffle_hints = hints;
    }

    /// Fold a worker thread's locally-accumulated recovery accounting and
    /// event log into the cluster's. The engine calls this at the phase
    /// barrier in node order, so the merged log matches sequential
    /// execution.
    pub(crate) fn absorb_worker_recovery(
        &mut self,
        recovery: RecoveryStats,
        events: Vec<RecoveryAction>,
    ) {
        self.pending_recovery.merge(&recovery);
        self.events.extend(events);
    }

    /// Read-only twin of [`Cluster::crash_and_restore`]: compute what
    /// restoring `node` from replicas would move, without touching any
    /// store.
    ///
    /// A successful restore puts back exactly the `Arc`s the node already
    /// holds (primaries from other nodes' replica areas, replica holdings
    /// from their surviving primaries), so when recovery succeeds the store
    /// contents afterwards equal the contents before the crash — worker
    /// threads can therefore simulate the crash against `&self` and only
    /// the accounting `(fragments, bytes)` needs to reach the barrier.
    /// Returns [`MrError::DataLoss`] when some primary has no live replica,
    /// exactly like the mutating version.
    pub(crate) fn plan_crash_restore(&self, node: usize) -> Result<(usize, u64)> {
        let mut fragments = 0usize;
        let mut bytes = 0u64;
        for (name, ordinal) in self.nodes[node].fragment_ids() {
            let source = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != node)
                .find_map(|(_, other)| other.replica(&name, ordinal));
            let arc = source.ok_or_else(|| MrError::DataLoss {
                dataset: name.clone(),
                node,
                detail: format!(
                    "fragment {ordinal} has no replica; run with a replication factor >= 1"
                ),
            })?;
            bytes += fragment_bytes(&arc)?;
            fragments += 1;
        }
        for (name, ordinal) in self.nodes[node].replica_ids() {
            let source = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != node)
                .find_map(|(_, other)| other.primary(&name, ordinal));
            if let Some(arc) = source {
                bytes += fragment_bytes(&arc)?;
                fragments += 1;
            }
        }
        Ok((fragments, bytes))
    }

    /// Record a retry (backoff already charged to the phase by the caller).
    pub fn note_retry(
        &mut self,
        job_name: &str,
        node: usize,
        phase: TaskPhase,
        attempt: u32,
        backoff: std::time::Duration,
    ) {
        self.pending_recovery.tasks_retried += 1;
        self.pending_recovery.backoff_time += backoff;
        self.events.push(RecoveryAction::TaskRetried {
            job: job_name.to_string(),
            node,
            phase,
            attempt,
            backoff,
        });
    }

    /// Record compute time whose results were lost to a crash.
    pub fn note_lost_compute(&mut self, elapsed: std::time::Duration) {
        self.pending_recovery.reexec_task_time += elapsed;
    }

    /// Wipe a crashed node and re-fetch everything it held from replicas
    /// (primaries from other nodes' replica areas, its replica holdings
    /// from their surviving primaries).
    fn crash_and_restore(&mut self, job_name: &str, node: usize) -> Result<()> {
        let lost_primaries = self.nodes[node].fragment_ids();
        let lost_replicas = self.nodes[node].replica_ids();
        self.nodes[node].wipe();

        let mut fragments = 0usize;
        let mut total_bytes = 0u64;
        for (name, ordinal) in lost_primaries {
            let source = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != node)
                .find_map(|(_, other)| other.replica(&name, ordinal));
            let arc = source.ok_or_else(|| MrError::DataLoss {
                dataset: name.clone(),
                node,
                detail: format!(
                    "fragment {ordinal} has no replica; run with a replication factor >= 1"
                ),
            })?;
            let bytes = fragment_bytes(&arc)?;
            self.nodes[node].put_arc(&name, ordinal, arc);
            self.pending_recovery.restore_bytes += bytes;
            self.pending_recovery.restore_messages += 1;
            fragments += 1;
            total_bytes += bytes;
        }
        // Re-establish the node's replica holdings so a later crash of a
        // *different* node still finds its copies. A replica whose primary
        // is gone too cannot be rebuilt, but that only happens when the
        // primary's own crash already failed.
        for (name, ordinal) in lost_replicas {
            let source = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != node)
                .find_map(|(_, other)| other.primary(&name, ordinal));
            if let Some(arc) = source {
                let bytes = fragment_bytes(&arc)?;
                self.nodes[node].put_replica(&name, ordinal, arc);
                self.pending_recovery.restore_bytes += bytes;
                self.pending_recovery.restore_messages += 1;
                fragments += 1;
                total_bytes += bytes;
            }
        }
        self.events.push(RecoveryAction::FragmentsRestored {
            job: job_name.to_string(),
            node,
            fragments,
            bytes: total_bytes,
        });
        Ok(())
    }

    /// [`Cluster::exchange`] plus injection of this job's scheduled
    /// drop/corrupt faults. Each faulted transfer is checked the way a real
    /// receiver would notice it — a checksum mismatch on a corrupted copy, a
    /// timeout on a dropped one — then the sender retransmits its (held)
    /// buffer, so receivers always end up with pristine bytes and only the
    /// accounting changes. Faults addressing empty or local transfers are
    /// no-ops.
    pub(crate) fn exchange_with_faults(
        &mut self,
        job_idx: usize,
        job_name: &str,
        outboxes: Vec<Vec<Vec<u8>>>,
    ) -> Result<(Inboxes, ExchangeStats)> {
        let fired = match self.fault_plan.as_mut() {
            Some(plan) => plan.take_exchange_faults(job_idx),
            None => Vec::new(),
        };
        let (inboxes, stats) = self.exchange(outboxes)?;
        for (from, to, kind) in fired {
            if from == to || to >= inboxes.len() {
                continue;
            }
            let Some(buf) = inboxes[to]
                .iter()
                .find(|(sender, _)| *sender == from)
                .map(|(_, b)| b)
            else {
                continue;
            };
            self.pending_recovery.faults_injected += 1;
            self.events.push(RecoveryAction::FaultInjected {
                job: job_name.to_string(),
                fault: match kind {
                    ExchangeFaultKind::Drop => Fault::ExchangeDrop {
                        from,
                        to,
                        job: job_idx,
                    },
                    ExchangeFaultKind::Corrupt => Fault::ExchangeCorrupt {
                        from,
                        to,
                        job: job_idx,
                    },
                },
            });
            if kind == ExchangeFaultKind::Corrupt {
                // The receiver really verifies: flip a payload byte and
                // check the sender's checksum exposes it.
                let sent_sum = wire::checksum(buf);
                let mut damaged = buf.clone();
                let mid = damaged.len() / 2;
                damaged[mid] ^= 0xFF;
                if wire::checksum(&damaged) == sent_sum {
                    return Err(MrError::msg(
                        "transfer checksum failed to expose injected corruption",
                    ));
                }
            }
            // Drop: the receiver times out on the missing message. Either
            // way the sender retransmits the held buffer.
            self.pending_recovery.retransmit_bytes += buf.len() as u64;
            self.pending_recovery.retransmit_messages += 1;
            self.events.push(RecoveryAction::Retransmitted {
                job: job_name.to_string(),
                from,
                to,
                bytes: buf.len() as u64,
            });
        }
        Ok((inboxes, stats))
    }
}

/// Wire size of a fragment — what replication and restore transfers cost.
/// An unencodable fragment is an error, not zero bytes: `unwrap_or(0)`
/// here used to under-report replication traffic in `JobStats` and the
/// trace counters instead of failing.
fn fragment_bytes(data: &Dataset) -> Result<u64> {
    Ok(wire::encoded_size(&data.batch, &data.schema)? as u64)
}

/// The default engine thread budget: the `PAPAR_THREADS` environment
/// variable when set to a positive integer (how CI pins both extremes of
/// the determinism matrix), else the host's available parallelism. A set
/// but malformed or zero value is a typed [`MrError::BadThreadBudget`] —
/// silently falling back to host parallelism would mis-size a resident
/// daemon's every request with no signal. The effective budget is printed
/// to stderr once per process so the sizing is never a mystery.
///
/// This is the public face of the internal resolution, so a long-running
/// daemon can validate `PAPAR_THREADS` once at startup (and report the
/// typed [`MrError::BadThreadBudget`]) before accepting any request.
pub fn default_thread_budget() -> Result<usize> {
    default_threads()
}

fn default_threads() -> Result<usize> {
    static ANNOUNCE: std::sync::Once = std::sync::Once::new();
    let (threads, source) = match std::env::var("PAPAR_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(t) if t >= 1 => (t, "PAPAR_THREADS"),
            _ => return Err(MrError::BadThreadBudget { value: v }),
        },
        Err(_) => (
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            "host parallelism",
        ),
    };
    ANNOUNCE.call_once(|| {
        eprintln!("papar: engine thread budget: {threads} ({source})");
    });
    Ok(threads)
}

/// Per-receiver `(sender, buffer)` lists produced by [`Cluster::exchange`].
pub type Inboxes = Vec<Vec<(usize, Vec<u8>)>>;

/// Split a vector into `n` contiguous chunks of near-equal length (the
/// earlier chunks take the remainder, like HDFS block assignment).
pub fn split_evenly<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let n = n.max(1);
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    // Take chunks from the back to avoid repeated shifting, then reverse.
    let mut sizes: Vec<usize> = (0..n).map(|i| base + usize::from(i < extra)).collect();
    sizes.reverse();
    for sz in sizes {
        let tail = items.split_off(items.len() - sz);
        out.push(tail);
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use papar_config::input::FieldType;
    use papar_record::rec;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![("a", FieldType::Integer)]))
    }

    fn flat(vals: std::ops::Range<i32>) -> Dataset {
        Dataset::new(schema(), Batch::Flat(vals.map(|v| rec![v]).collect()))
    }

    #[test]
    fn split_evenly_covers_and_orders() {
        let chunks = split_evenly((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        let empty = split_evenly(Vec::<i32>::new(), 4);
        assert_eq!(empty.len(), 4);
        assert!(empty.iter().all(Vec::is_empty));
        let more_nodes = split_evenly(vec![1, 2], 5);
        assert_eq!(more_nodes.iter().filter(|c| !c.is_empty()).count(), 2);
    }

    #[test]
    fn scatter_collect_roundtrip() {
        let mut c = Cluster::new(4);
        c.scatter("in", flat(0..10)).unwrap();
        let back = c.collect_concat("in").unwrap();
        assert_eq!(back.batch.record_count(), 10);
        let flat_records = back.batch.into_flat().unwrap();
        let vals: Vec<i32> = flat_records
            .iter()
            .map(|r| match r.value(0).unwrap() {
                papar_record::Value::Int(v) => *v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_fragments_round_robin() {
        let mut c = Cluster::new(2);
        let frags: Vec<Dataset> = (0..5).map(|i| flat(i..i + 1)).collect();
        c.scatter_fragments("p", frags).unwrap();
        assert_eq!(c.node(0).get("p").unwrap().len(), 3); // ordinals 0, 2, 4
        assert_eq!(c.node(1).get("p").unwrap().len(), 2); // ordinals 1, 3
        let collected = c.collect("p").unwrap();
        assert_eq!(collected.len(), 5);
    }

    #[test]
    fn collect_missing_dataset_errors() {
        let c = Cluster::new(2);
        assert!(c.collect("ghost").is_err());
    }

    #[test]
    fn drop_dataset_removes_everywhere() {
        let mut c = Cluster::new(3);
        c.scatter("x", flat(0..9)).unwrap();
        assert_eq!(c.drop_dataset("x"), 3);
        assert!(c.collect("x").is_err());
    }

    #[test]
    fn exchange_accounts_remote_bytes_only() {
        let c = Cluster::new(2);
        let outboxes = vec![
            vec![vec![1, 2, 3], vec![4, 5]], // node 0: to self (3B), to 1 (2B)
            vec![vec![], vec![9; 10]],       // node 1: nothing to 0, self 10B
        ];
        let (inboxes, stats) = c.exchange(outboxes).unwrap();
        assert_eq!(stats.remote_bytes, 2);
        assert_eq!(stats.remote_messages, 1);
        assert_eq!(stats.sent_by_node, vec![2, 0]);
        assert_eq!(stats.recv_by_node, vec![0, 2]);
        assert_eq!(inboxes[0].len(), 1); // self-send delivered
        assert_eq!(inboxes[1].len(), 2);
    }

    #[test]
    fn exchange_rejects_malformed_matrix() {
        let c = Cluster::new(2);
        assert!(c.exchange(vec![vec![vec![]]]).is_err());
        assert!(c.exchange(vec![vec![vec![]], vec![vec![]]]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_panics() {
        let _ = Cluster::new(0);
    }

    #[test]
    fn packed_scatter_splits_groups() {
        let schema = schema();
        let packed = Batch::Flat(vec![rec![1], rec![1], rec![2], rec![3]])
            .pack_by(0)
            .unwrap();
        let mut c = Cluster::new(2);
        c.scatter("g", Dataset::new(schema, packed)).unwrap();
        let back = c.collect_concat("g").unwrap();
        assert_eq!(back.batch.entry_count(), 3);
        assert_eq!(back.batch.record_count(), 4);
    }
}
