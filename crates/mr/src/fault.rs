//! Deterministic fault injection and the recovery policy.
//!
//! The simulated cluster can run under a [`FaultPlan`]: a finite schedule of
//! faults — node crashes at task boundaries, dropped or corrupted exchange
//! transfers, and stragglers — injected at well-defined points of
//! [`Cluster::run_job`](crate::Cluster::run_job). Plans are either built
//! explicitly (tests pin exact faults) or *realized* from a [`ChaosSpec`]
//! with a seed, in which case the same seed always yields the same schedule:
//! fault placement uses a private SplitMix64 stream, never the system RNG or
//! the clock.
//!
//! Recovery is classic MapReduce: only the failed task re-executes, lost
//! fragments are re-fetched from replicas (see
//! [`Cluster::with_replication`](crate::Cluster::with_replication)), and
//! lost shuffle transfers are retransmitted after checksum or timeout
//! detection. All recovery work is charged to the virtual clock and
//! reported in [`RecoveryStats`](crate::stats::RecoveryStats); for any plan
//! recovery survives, the final partitions are byte-identical to the
//! fault-free run.

use std::fmt;
use std::time::Duration;

use crate::{MrError, Result, TaskPhase};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Node `node` dies at the end of its `phase` task of the `job`-th
    /// MapReduce job (0-based launch order): the task's uncommitted output
    /// and the node's entire store are lost. The node reboots immediately;
    /// recovery restores its fragments from replicas and re-executes the
    /// task.
    NodeCrash {
        /// The crashing node.
        node: usize,
        /// 0-based index of the job (in `run_job` launch order).
        job: usize,
        /// Which task boundary the crash hits.
        phase: TaskPhase,
    },
    /// The shuffle transfer `from → to` of job `job` is lost in flight; the
    /// receiver times out on the missing message and the sender retransmits.
    ExchangeDrop {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// 0-based job index.
        job: usize,
    },
    /// The shuffle transfer `from → to` of job `job` arrives with flipped
    /// bytes; the per-transfer checksum exposes the damage and the sender
    /// retransmits.
    ExchangeCorrupt {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// 0-based job index.
        job: usize,
    },
    /// Node `node` computes `slowdown`× slower for the whole run (a
    /// persistent straggler, not a one-shot event).
    Straggler {
        /// The slow node.
        node: usize,
        /// Compute-time multiplier, > 1.
        slowdown: f64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NodeCrash { node, job, phase } => {
                write!(
                    f,
                    "crash of node {node} at the {phase} boundary of job {job}"
                )
            }
            Fault::ExchangeDrop { from, to, job } => {
                write!(f, "dropped transfer {from} -> {to} in job {job}")
            }
            Fault::ExchangeCorrupt { from, to, job } => {
                write!(f, "corrupted transfer {from} -> {to} in job {job}")
            }
            Fault::Straggler { node, slowdown } => {
                write!(f, "straggler node {node} ({slowdown:.2}x slower)")
            }
        }
    }
}

/// The two ways an exchange transfer can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeFaultKind {
    /// The message never arrives (detected by timeout).
    Drop,
    /// The message arrives damaged (detected by checksum mismatch).
    Corrupt,
}

/// A finite, ordered schedule of faults consumed as the run hits their
/// injection points. One-shot faults (crashes, exchange faults) are removed
/// when they fire; stragglers persist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed this plan was realized from (0 for hand-built plans).
    pub seed: u64,
    pending: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with an explicit fault list (tests pin exact scenarios).
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan {
            seed: 0,
            pending: faults,
        }
    }

    /// True when no fault remains to fire.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The faults still scheduled, in order.
    pub fn pending(&self) -> &[Fault] {
        &self.pending
    }

    /// Consume the first pending crash matching `(job, phase, node)`.
    pub fn take_crash(&mut self, job: usize, phase: TaskPhase, node: usize) -> bool {
        let hit = self.pending.iter().position(|f| {
            matches!(f, Fault::NodeCrash { node: n, job: j, phase: p }
                if *n == node && *j == job && *p == phase)
        });
        match hit {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    /// Drain every crash scheduled for `(job, phase)` into per-node counts.
    ///
    /// The parallel engine pre-draws crashes at the phase barrier so worker
    /// threads never touch the shared plan: a node with count `c` crashes on
    /// its first `c` attempts, which is exactly the order the sequential
    /// engine consumed matching faults via [`FaultPlan::take_crash`]. Crashes
    /// addressing nodes outside `0..num_nodes` stay pending (they could
    /// never fire in this phase).
    pub fn take_crashes(&mut self, job: usize, phase: TaskPhase, num_nodes: usize) -> Vec<u32> {
        let mut counts = vec![0u32; num_nodes];
        self.pending.retain(|f| match f {
            Fault::NodeCrash {
                node,
                job: j,
                phase: p,
            } if *j == job && *p == phase && *node < num_nodes => {
                counts[*node] += 1;
                false
            }
            _ => true,
        });
        counts
    }

    /// Consume every pending exchange fault of job `job`, in schedule order.
    pub fn take_exchange_faults(&mut self, job: usize) -> Vec<(usize, usize, ExchangeFaultKind)> {
        let mut fired = Vec::new();
        self.pending.retain(|f| match f {
            Fault::ExchangeDrop { from, to, job: j } if *j == job => {
                fired.push((*from, *to, ExchangeFaultKind::Drop));
                false
            }
            Fault::ExchangeCorrupt { from, to, job: j } if *j == job => {
                fired.push((*from, *to, ExchangeFaultKind::Corrupt));
                false
            }
            _ => true,
        });
        fired
    }

    /// Combined slowdown factor of `node` (1.0 when it is healthy).
    /// Stragglers are persistent, so this never consumes anything.
    pub fn straggler_factor(&self, node: usize) -> f64 {
        self.pending
            .iter()
            .filter_map(|f| match f {
                Fault::Straggler { node: n, slowdown } if *n == node => Some(*slowdown),
                _ => None,
            })
            .product()
    }

    /// True when job `job` still has exchange faults scheduled.
    pub fn has_exchange_faults(&self, job: usize) -> bool {
        self.pending.iter().any(|f| {
            matches!(f,
                Fault::ExchangeDrop { job: j, .. } | Fault::ExchangeCorrupt { job: j, .. }
                if *j == job)
        })
    }
}

/// How many faults of each kind to inject; realized into a concrete
/// [`FaultPlan`] with a seed. This is what the CLI `--faults` flag parses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Node crashes at task boundaries.
    pub crashes: u32,
    /// Dropped exchange transfers.
    pub drops: u32,
    /// Corrupted exchange transfers.
    pub corrupts: u32,
    /// Persistent stragglers.
    pub stragglers: u32,
}

impl ChaosSpec {
    /// Parse a `kind=count` list, e.g. `"crash=1,drop=2,corrupt=1,straggler=1"`.
    ///
    /// Each kind may appear at most once: `crash=1,crash=2` used to sum
    /// silently into three crashes, which is never what either entry
    /// meant, so repeats now fail with
    /// [`MrError::DuplicateFaultKind`].
    pub fn parse(spec: &str) -> Result<Self> {
        let mut out = ChaosSpec::default();
        let mut seen = [false; 4];
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, count) = part.split_once('=').ok_or_else(|| {
                MrError::msg(format!(
                    "fault spec entry '{part}' is not kind=count (e.g. crash=1)"
                ))
            })?;
            let count: u32 = count.trim().parse().map_err(|_| {
                MrError::msg(format!("fault spec entry '{part}' has a non-numeric count"))
            })?;
            let kind = kind.trim();
            let slot = match kind {
                "crash" => {
                    out.crashes = count;
                    0
                }
                "drop" => {
                    out.drops = count;
                    1
                }
                "corrupt" => {
                    out.corrupts = count;
                    2
                }
                "straggler" => {
                    out.stragglers = count;
                    3
                }
                other => {
                    return Err(MrError::msg(format!(
                        "unknown fault kind '{other}' (want crash, drop, corrupt or straggler)"
                    )))
                }
            };
            if seen[slot] {
                return Err(MrError::DuplicateFaultKind {
                    kind: kind.to_string(),
                });
            }
            seen[slot] = true;
        }
        Ok(out)
    }

    /// Realize the spec into a concrete schedule. The same
    /// `(seed, num_nodes, num_jobs)` always yields the same plan. Exchange
    /// faults need at least two nodes (a one-node cluster has no remote
    /// transfers) and are skipped otherwise.
    pub fn realize(&self, seed: u64, num_nodes: usize, num_jobs: usize) -> FaultPlan {
        let nodes = num_nodes.max(1) as u64;
        let jobs = num_jobs.max(1) as u64;
        let mut rng = DetRng::new(seed);
        let mut pending = Vec::new();
        for _ in 0..self.crashes {
            pending.push(Fault::NodeCrash {
                node: rng.below(nodes) as usize,
                job: rng.below(jobs) as usize,
                phase: if rng.next_u64() & 1 == 0 {
                    TaskPhase::Map
                } else {
                    TaskPhase::Reduce
                },
            });
        }
        if nodes >= 2 {
            for _ in 0..self.drops {
                let (from, to) = rng.distinct_pair(nodes);
                pending.push(Fault::ExchangeDrop {
                    from,
                    to,
                    job: rng.below(jobs) as usize,
                });
            }
            for _ in 0..self.corrupts {
                let (from, to) = rng.distinct_pair(nodes);
                pending.push(Fault::ExchangeCorrupt {
                    from,
                    to,
                    job: rng.below(jobs) as usize,
                });
            }
        }
        for _ in 0..self.stragglers {
            pending.push(Fault::Straggler {
                node: rng.below(nodes) as usize,
                slowdown: 1.5 + rng.unit_f64() * 2.5,
            });
        }
        FaultPlan { seed, pending }
    }
}

/// How failed tasks are retried: up to `max_attempts` executions per task,
/// with exponential backoff charged to the virtual clock between attempts
/// (`backoff_base * 2^(attempt-1)` after the `attempt`-th failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions allowed per task (>= 1); the job aborts with
    /// [`MrError::TaskAborted`] when a task exhausts them.
    pub max_attempts: u32,
    /// Virtual wait before the first retry; doubles per further retry.
    pub backoff_base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// The virtual wait after the `failed_attempts`-th failed execution.
    pub fn backoff_for(&self, failed_attempts: u32) -> Duration {
        let shift = failed_attempts.saturating_sub(1).min(16);
        self.backoff_base.saturating_mul(1u32 << shift)
    }
}

/// One entry of the recovery log: what was injected and what the cluster
/// did about it, in order. Workflow reports surface this list.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// A scheduled fault fired during `job`.
    FaultInjected {
        /// Name of the job running when the fault fired.
        job: String,
        /// The fault.
        fault: Fault,
    },
    /// A crashed node's lost fragments were re-fetched from replicas.
    FragmentsRestored {
        /// Job during which the restore happened.
        job: String,
        /// The rebooted node.
        node: usize,
        /// Fragments copied back.
        fragments: usize,
        /// Bytes moved over the interconnect to restore them.
        bytes: u64,
    },
    /// A task is being re-executed after a crash.
    TaskRetried {
        /// Job name.
        job: String,
        /// Node re-running the task.
        node: usize,
        /// Which phase's task.
        phase: TaskPhase,
        /// The upcoming execution number (2 = first retry).
        attempt: u32,
        /// Virtual backoff waited before this retry.
        backoff: Duration,
    },
    /// A single dropped/corrupted exchange transfer was retransmitted.
    Retransmitted {
        /// Job name.
        job: String,
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Payload size.
        bytes: u64,
    },
    /// A crashed reducer's whole inbox was re-fetched from the mappers.
    InboxRefetched {
        /// Job name.
        job: String,
        /// The reducer node.
        node: usize,
        /// Bytes resent by remote mappers.
        bytes: u64,
        /// Number of resent transfers.
        messages: u64,
    },
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::FaultInjected { job, fault } => {
                write!(f, "[{job}] injected: {fault}")
            }
            RecoveryAction::FragmentsRestored {
                job,
                node,
                fragments,
                bytes,
            } => write!(
                f,
                "[{job}] restored {fragments} fragment(s) onto node {node} from replicas ({bytes} B)"
            ),
            RecoveryAction::TaskRetried {
                job,
                node,
                phase,
                attempt,
                backoff,
            } => write!(
                f,
                "[{job}] retrying {phase} task on node {node} (attempt {attempt}, waited {backoff:?})"
            ),
            RecoveryAction::Retransmitted {
                job,
                from,
                to,
                bytes,
            } => write!(f, "[{job}] retransmitted {from} -> {to} ({bytes} B)"),
            RecoveryAction::InboxRefetched {
                job,
                node,
                bytes,
                messages,
            } => write!(
                f,
                "[{job}] re-fetched node {node}'s inbox ({messages} transfer(s), {bytes} B)"
            ),
        }
    }
}

/// A tiny deterministic SplitMix64 stream. Fault placement must never touch
/// the system RNG or the clock, or seeded plans would stop being
/// reproducible.
#[derive(Debug, Clone)]
pub(crate) struct DetRng(u64);

impl DetRng {
    pub(crate) fn new(seed: u64) -> Self {
        DetRng(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Two distinct node ids out of `nodes` (>= 2).
    fn distinct_pair(&mut self, nodes: u64) -> (usize, usize) {
        let from = self.below(nodes);
        let to = (from + 1 + self.below(nodes - 1)) % nodes;
        (from as usize, to as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        let spec = ChaosSpec::parse("crash=2, drop=1,corrupt=3,straggler=1").unwrap();
        assert_eq!(
            spec,
            ChaosSpec {
                crashes: 2,
                drops: 1,
                corrupts: 3,
                stragglers: 1
            }
        );
        assert_eq!(ChaosSpec::parse("").unwrap(), ChaosSpec::default());
        assert!(ChaosSpec::parse("crash")
            .unwrap_err()
            .to_string()
            .contains("kind=count"));
        assert!(ChaosSpec::parse("crash=x")
            .unwrap_err()
            .to_string()
            .contains("non-numeric"));
        assert!(ChaosSpec::parse("meteor=1")
            .unwrap_err()
            .to_string()
            .contains("unknown fault kind"));
    }

    #[test]
    fn duplicate_fault_kinds_are_rejected_not_summed() {
        let err = ChaosSpec::parse("crash=1,crash=2").unwrap_err();
        assert!(
            matches!(&err, MrError::DuplicateFaultKind { kind } if kind == "crash"),
            "expected DuplicateFaultKind, got {err:?}"
        );
        assert!(err.to_string().contains("more than once"), "{err}");
        // Whitespace around the kind does not disguise the repeat, and
        // every kind is policed, not just crashes.
        for spec in [
            "drop=1, drop=1",
            "corrupt=0,corrupt=0",
            "straggler=2,crash=1,straggler=1",
            "crash=1,  crash =2",
        ] {
            assert!(
                matches!(
                    ChaosSpec::parse(spec),
                    Err(MrError::DuplicateFaultKind { .. })
                ),
                "spec {spec:?} should be rejected"
            );
        }
        // Distinct kinds still parse fine in any order.
        let ok = ChaosSpec::parse("straggler=1,crash=2").unwrap();
        assert_eq!(ok.crashes, 2);
        assert_eq!(ok.stragglers, 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = ChaosSpec::parse("crash=3,drop=2,corrupt=2,straggler=2").unwrap();
        let a = spec.realize(42, 4, 3);
        let b = spec.realize(42, 4, 3);
        assert_eq!(a, b);
        let c = spec.realize(43, 4, 3);
        assert_ne!(a, c, "a different seed should move at least one fault");
        assert_eq!(a.pending().len(), 9);
    }

    #[test]
    fn realize_bounds_targets() {
        let spec = ChaosSpec::parse("crash=50,drop=50,corrupt=50,straggler=50").unwrap();
        let plan = spec.realize(7, 3, 2);
        for f in plan.pending() {
            match f {
                Fault::NodeCrash { node, job, .. } => {
                    assert!(*node < 3 && *job < 2);
                }
                Fault::ExchangeDrop { from, to, job }
                | Fault::ExchangeCorrupt { from, to, job } => {
                    assert!(*from < 3 && *to < 3 && from != to && *job < 2);
                }
                Fault::Straggler { node, slowdown } => {
                    assert!(*node < 3 && *slowdown > 1.0 && *slowdown <= 4.0);
                }
            }
        }
    }

    #[test]
    fn single_node_clusters_get_no_exchange_faults() {
        let spec = ChaosSpec::parse("drop=5,corrupt=5").unwrap();
        assert!(spec.realize(1, 1, 2).is_empty());
    }

    #[test]
    fn crashes_fire_once() {
        let mut plan = FaultPlan::new(vec![Fault::NodeCrash {
            node: 1,
            job: 0,
            phase: TaskPhase::Map,
        }]);
        assert!(!plan.take_crash(0, TaskPhase::Reduce, 1));
        assert!(!plan.take_crash(0, TaskPhase::Map, 0));
        assert!(plan.take_crash(0, TaskPhase::Map, 1));
        assert!(!plan.take_crash(0, TaskPhase::Map, 1), "one-shot");
        assert!(plan.is_empty());
    }

    #[test]
    fn take_crashes_counts_per_node_and_leaves_the_rest() {
        let mut plan = FaultPlan::new(vec![
            Fault::NodeCrash {
                node: 1,
                job: 0,
                phase: TaskPhase::Map,
            },
            Fault::NodeCrash {
                node: 1,
                job: 0,
                phase: TaskPhase::Map,
            },
            Fault::NodeCrash {
                node: 0,
                job: 0,
                phase: TaskPhase::Reduce,
            },
            Fault::NodeCrash {
                node: 2,
                job: 1,
                phase: TaskPhase::Map,
            },
            // Addresses a node the cluster does not have: must stay pending.
            Fault::NodeCrash {
                node: 9,
                job: 0,
                phase: TaskPhase::Map,
            },
        ]);
        assert_eq!(plan.take_crashes(0, TaskPhase::Map, 3), vec![0, 2, 0]);
        assert_eq!(plan.take_crashes(0, TaskPhase::Map, 3), vec![0, 0, 0]);
        assert_eq!(plan.take_crashes(0, TaskPhase::Reduce, 3), vec![1, 0, 0]);
        assert_eq!(plan.take_crashes(1, TaskPhase::Map, 3), vec![0, 0, 1]);
        assert_eq!(plan.pending().len(), 1, "out-of-range crash stays");
    }

    #[test]
    fn exchange_faults_drain_per_job() {
        let mut plan = FaultPlan::new(vec![
            Fault::ExchangeDrop {
                from: 0,
                to: 1,
                job: 1,
            },
            Fault::ExchangeCorrupt {
                from: 1,
                to: 0,
                job: 0,
            },
        ]);
        assert!(plan.has_exchange_faults(0));
        let fired = plan.take_exchange_faults(0);
        assert_eq!(fired, vec![(1, 0, ExchangeFaultKind::Corrupt)]);
        assert!(!plan.has_exchange_faults(0));
        assert!(plan.has_exchange_faults(1));
    }

    #[test]
    fn stragglers_persist_and_compound() {
        let plan = FaultPlan::new(vec![
            Fault::Straggler {
                node: 0,
                slowdown: 2.0,
            },
            Fault::Straggler {
                node: 0,
                slowdown: 1.5,
            },
            Fault::Straggler {
                node: 2,
                slowdown: 3.0,
            },
        ]);
        assert!((plan.straggler_factor(0) - 3.0).abs() < 1e-12);
        assert!((plan.straggler_factor(1) - 1.0).abs() < 1e-12);
        assert!((plan.straggler_factor(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
        // Deep attempt counts must not overflow the shift.
        assert_eq!(p.backoff_for(u32::MAX), p.backoff_for(17));
    }
}
