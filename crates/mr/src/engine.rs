//! The MapReduce engine: map over node-local data, shuffle by reduce key,
//! reduce per reducer, under the virtual clock.
//!
//! The execution follows the paper's Figures 9 and 11 exactly:
//!
//! 1. every node runs one **mapper** over its local fragments of the input
//!    dataset(s) and emits `(reduce-key, entry)` pairs;
//! 2. a **partitioner** maps each reduce key to one of `num_reducers`
//!    reducers (range-sampled for sort, identity for distribute, hashed for
//!    group), and the pairs are serialized and shuffled all-to-all;
//! 3. every node runs the **reducer** for each reducer id it owns
//!    (`reducer % num_nodes`), receiving the pairs sorted deterministically,
//!    and writes its output fragment under the job's output name with the
//!    reducer id as the fragment ordinal.
//!
//! Determinism: each pair carries its emitting mapper id and emission index,
//! and the engine sorts each reducer's pairs by `(key, mapper, seq)` (or
//! `(mapper, seq)` when key-sorting is off), so results are independent of
//! arrival order — the property behind the paper's "same partitions"
//! correctness claim.

use papar_record::batch::{Batch, Dataset};
use papar_record::packed::PackedRecord;
use papar_record::wire::{self, Reader};
use papar_record::{Record, Schema, Value};
use std::sync::Arc;

use std::time::{Duration, Instant};

use crate::cluster::Cluster;
use crate::stats::JobStats;
use crate::{MrError, Result};

/// One shuffled unit: either a flat record or a whole packed group (the
/// hybrid-cut shuffles packed low-degree groups as single entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A flat record.
    Rec(Record),
    /// A packed group.
    Packed(PackedRecord),
}

impl Entry {
    /// Number of flat records this entry represents.
    pub fn record_count(&self) -> usize {
        match self {
            Entry::Rec(_) => 1,
            Entry::Packed(p) => p.records.len(),
        }
    }
}

/// Execution context handed to mappers and reducers.
#[derive(Debug, Clone)]
pub struct TaskCtx {
    /// The node this task runs on.
    pub node: usize,
    /// Cluster size.
    pub num_nodes: usize,
    /// Number of reducers of the running job.
    pub num_reducers: usize,
    /// For reduce tasks, the reducer id; `None` in map tasks.
    pub reducer: Option<usize>,
}

/// One local input fragment handed to a mapper.
#[derive(Debug, Clone)]
pub struct MapInput {
    /// Dataset name this fragment belongs to.
    pub name: String,
    /// Global fragment ordinal (scatter chunk or producing reducer id) —
    /// what distribute mappers use to compute global entry offsets.
    pub ordinal: u32,
    /// The records (shared with the node's store; reading is free).
    pub data: Arc<Dataset>,
}

/// A map task: local fragments in, `(reduce-key, entry)` pairs out.
pub trait Mapper {
    /// Transform this node's local input fragments into keyed entries.
    /// `inputs` holds the node's fragments in (dataset, ordinal) order;
    /// nodes without local fragments get an empty slice.
    fn map(&self, ctx: &TaskCtx, inputs: &[MapInput]) -> Result<Vec<(Value, Entry)>>;
}

/// Assignment of reduce keys to reducers.
pub trait Partitioner {
    /// The reducer (in `0..num_reducers`) that handles `key`.
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> usize;
}

/// A reduce task: a reducer's pairs in deterministic order in, an output
/// batch out.
pub trait Reducer {
    /// Produce the output fragment of one reducer.
    fn reduce(&self, ctx: &TaskCtx, pairs: Vec<(Value, Entry)>) -> Result<Batch>;
}

/// Blanket adapters so plain closures can serve as map/reduce tasks.
pub struct FnMapper<F>(pub F);

impl<F> Mapper for FnMapper<F>
where
    F: Fn(&TaskCtx, &[MapInput]) -> Result<Vec<(Value, Entry)>>,
{
    fn map(&self, ctx: &TaskCtx, inputs: &[MapInput]) -> Result<Vec<(Value, Entry)>> {
        (self.0)(ctx, inputs)
    }
}

/// Closure adapter for reducers.
pub struct FnReducer<F>(pub F);

impl<F> Reducer for FnReducer<F>
where
    F: Fn(&TaskCtx, Vec<(Value, Entry)>) -> Result<Batch>,
{
    fn reduce(&self, ctx: &TaskCtx, pairs: Vec<(Value, Entry)>) -> Result<Batch> {
        (self.0)(ctx, pairs)
    }
}

/// Hash partitioner (group-by-key jobs).
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> usize {
        (key.stable_hash() % num_reducers as u64) as usize
    }
}

/// Identity partitioner: the key *is* the reducer id (distribute jobs set
/// the temporary reduce-key to the target partition, paper Figure 9 step 4).
pub struct IdentityPartitioner;

impl Partitioner for IdentityPartitioner {
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> usize {
        let id = key.as_i64().unwrap_or(0).max(0) as usize;
        id.min(num_reducers.saturating_sub(1))
    }
}

/// A MapReduce job description.
pub struct MapReduceJob<'a> {
    /// Job name (the workflow operator id), used in stats.
    pub name: String,
    /// Input dataset names (usually one; the hybrid-cut distribute job
    /// reads both split outputs).
    pub inputs: Vec<String>,
    /// Output dataset name.
    pub output: String,
    /// Number of reducers (= output fragments).
    pub num_reducers: usize,
    /// Schema of the entries mappers emit (map may extend the input schema
    /// via add-ons before the shuffle).
    pub map_output_schema: Arc<Schema>,
    /// Schema of the reducer output (usually the same).
    pub output_schema: Arc<Schema>,
    /// The map task.
    pub mapper: &'a dyn Mapper,
    /// Reduce-key to reducer assignment.
    pub partitioner: &'a dyn Partitioner,
    /// The reduce task.
    pub reducer: &'a dyn Reducer,
    /// Sort each reducer's pairs by key before reducing (sort/group jobs);
    /// otherwise pairs arrive in `(mapper, seq)` order (distribute jobs).
    pub sort_by_key: bool,
    /// Reverse the key order in the reduce-side sort (Table I's descending
    /// sort flag). Only meaningful with `sort_by_key`.
    pub descending: bool,
    /// CSC-compress packed entries on the wire, factoring the key column at
    /// this index out of group members (paper Section III-D); `None` sends
    /// packed groups uncompressed.
    pub compress_key: Option<usize>,
}

const ENTRY_REC: u8 = 0;
const ENTRY_PACKED: u8 = 1;
const ENTRY_PACKED_CSC: u8 = 2;

fn encode_entry(
    entry: &Entry,
    schema: &Schema,
    compress_key: Option<usize>,
    buf: &mut Vec<u8>,
) -> Result<()> {
    match entry {
        Entry::Rec(r) => {
            buf.push(ENTRY_REC);
            wire::encode_record(r, schema, buf)?;
        }
        Entry::Packed(p) => match compress_key {
            Some(key_idx) => {
                buf.push(ENTRY_PACKED_CSC);
                wire::encode_value(&p.key, buf);
                buf.extend_from_slice(&(p.records.len() as u32).to_le_bytes());
                for (fi, field) in schema.fields().iter().enumerate() {
                    if fi == key_idx {
                        continue;
                    }
                    for rec in &p.records {
                        let v = rec.require(fi).map_err(MrError::from)?;
                        wire::encode_field(v, field.ty, buf)?;
                    }
                }
            }
            None => {
                buf.push(ENTRY_PACKED);
                wire::encode_value(&p.key, buf);
                buf.extend_from_slice(&(p.records.len() as u32).to_le_bytes());
                for rec in &p.records {
                    wire::encode_record(rec, schema, buf)?;
                }
            }
        },
    }
    Ok(())
}

/// Decode one entry, dispatching on its tag byte.
fn decode_entry(r: &mut Reader<'_>, schema: &Schema, compress_key: Option<usize>) -> Result<Entry> {
    let tag = r.read_u8()?;
    match tag {
        ENTRY_REC => Ok(Entry::Rec(wire::decode_record(r, schema)?)),
        ENTRY_PACKED => {
            let key = wire::decode_value(r)?;
            let count = r.read_u32()? as usize;
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(wire::decode_record(r, schema)?);
            }
            Ok(Entry::Packed(PackedRecord { key, records }))
        }
        ENTRY_PACKED_CSC => {
            let key_idx = compress_key.ok_or_else(|| {
                MrError("received CSC-compressed entry but job has no compress_key".into())
            })?;
            let key = wire::decode_value(r)?;
            let count = r.read_u32()? as usize;
            let mut columns: Vec<Vec<Value>> = Vec::new();
            for (fi, field) in schema.fields().iter().enumerate() {
                if fi == key_idx {
                    continue;
                }
                let mut col = Vec::with_capacity(count);
                for _ in 0..count {
                    col.push(wire::decode_field(r, field.ty)?);
                }
                columns.push(col);
            }
            let mut records = Vec::with_capacity(count);
            #[allow(clippy::needless_range_loop)] // ri walks several columns in lockstep
            for ri in 0..count {
                let mut values = Vec::with_capacity(schema.len());
                let mut ci = 0;
                for fi in 0..schema.len() {
                    if fi == key_idx {
                        values.push(key.clone());
                    } else {
                        values.push(columns[ci][ri].clone());
                        ci += 1;
                    }
                }
                records.push(Record::new(values));
            }
            Ok(Entry::Packed(PackedRecord { key, records }))
        }
        other => Err(MrError(format!("unknown entry tag {other}"))),
    }
}

/// A decoded shuffled pair with its determinism tag.
struct ShuffledPair {
    reducer: u32,
    mapper: u32,
    seq: u32,
    key: Value,
    entry: Entry,
}

impl Cluster {
    /// Run one MapReduce job under the virtual clock and return its stats.
    ///
    /// The output dataset is written fragment-per-reducer with the reducer
    /// id as ordinal; collect it with [`Cluster::collect`] to obtain the
    /// partitions in partition order.
    pub fn run_job(&mut self, job: &MapReduceJob<'_>) -> Result<JobStats> {
        if job.num_reducers == 0 {
            return Err(MrError(format!("job '{}' has zero reducers", job.name)));
        }
        let n = self.num_nodes();
        let mut stats = JobStats {
            name: job.name.clone(),
            map_time_by_node: vec![Duration::ZERO; n],
            reduce_time_by_node: vec![Duration::ZERO; n],
            ..Default::default()
        };

        // ---- Map phase (each node timed individually). ----
        let mut outboxes: Vec<Vec<Vec<u8>>> = (0..n).map(|_| vec![Vec::new(); n]).collect();
        #[allow(clippy::needless_range_loop)] // node indexes both stores and outboxes
        for node in 0..n {
            let t0 = Instant::now();
            let mut inputs: Vec<MapInput> = Vec::new();
            for name in &job.inputs {
                if let Some(frags) = self.node(node).get(name) {
                    for f in frags {
                        stats.records_in += f.data.batch.record_count() as u64;
                        inputs.push(MapInput {
                            name: name.clone(),
                            ordinal: f.ordinal,
                            data: Arc::clone(&f.data),
                        });
                    }
                }
            }
            let ctx = TaskCtx {
                node,
                num_nodes: n,
                num_reducers: job.num_reducers,
                reducer: None,
            };
            let pairs = job.mapper.map(&ctx, &inputs)?;
            stats.pairs_shuffled += pairs.len() as u64;
            for (seq, (key, entry)) in pairs.into_iter().enumerate() {
                let reducer = job.partitioner.reducer_for(&key, job.num_reducers);
                if reducer >= job.num_reducers {
                    return Err(MrError(format!(
                        "partitioner returned reducer {reducer} >= {}",
                        job.num_reducers
                    )));
                }
                let dest = reducer % n;
                let buf = &mut outboxes[node][dest];
                buf.extend_from_slice(&(reducer as u32).to_le_bytes());
                buf.extend_from_slice(&(seq as u32).to_le_bytes());
                wire::encode_value(&key, buf);
                encode_entry(&entry, &job.map_output_schema, job.compress_key, buf)?;
            }
            stats.map_time_by_node[node] = t0.elapsed();
        }

        // ---- Shuffle. ----
        let (inboxes, exchange) = self.exchange(outboxes)?;
        stats.comm_time = exchange.comm_time(self.net());
        stats.exchange = exchange;

        // ---- Reduce phase (each node timed individually). ----
        for (node, inbox) in inboxes.into_iter().enumerate() {
            let t0 = Instant::now();
            let mut pairs: Vec<ShuffledPair> = Vec::new();
            for (from, buf) in inbox {
                let mut r = Reader::new(&buf);
                while r.remaining() > 0 {
                    let reducer = r.read_u32().map_err(MrError::from)?;
                    let seq = r.read_u32().map_err(MrError::from)?;
                    let key = wire::decode_value(&mut r)?;
                    let entry = decode_entry(&mut r, &job.map_output_schema, job.compress_key)?;
                    pairs.push(ShuffledPair {
                        reducer,
                        mapper: from as u32,
                        seq,
                        key,
                        entry,
                    });
                }
            }
            // Group pairs per owned reducer.
            pairs.sort_by(|a, b| {
                a.reducer
                    .cmp(&b.reducer)
                    .then_with(|| {
                        if job.sort_by_key {
                            let ord = a.key.cmp(&b.key);
                            if job.descending {
                                ord.reverse()
                            } else {
                                ord
                            }
                        } else {
                            std::cmp::Ordering::Equal
                        }
                    })
                    .then_with(|| a.mapper.cmp(&b.mapper))
                    .then_with(|| a.seq.cmp(&b.seq))
            });
            let mut handled: Vec<bool> = vec![false; job.num_reducers];
            let mut iter = pairs.into_iter().peekable();
            while let Some(first) = iter.next() {
                let rid = first.reducer;
                let mut group: Vec<(Value, Entry)> = vec![(first.key, first.entry)];
                while iter.peek().is_some_and(|p| p.reducer == rid) {
                    let p = iter.next().expect("peeked");
                    group.push((p.key, p.entry));
                }
                let ctx = TaskCtx {
                    node,
                    num_nodes: n,
                    num_reducers: job.num_reducers,
                    reducer: Some(rid as usize),
                };
                let batch = job.reducer.reduce(&ctx, group)?;
                stats.records_out += batch.record_count() as u64;
                handled[rid as usize] = true;
                self.node_mut(node).put(
                    &job.output,
                    rid,
                    Dataset::new(job.output_schema.clone(), batch),
                );
            }
            // Reducers that received nothing still own an (empty) output
            // fragment, so a distribute job always materializes every
            // partition.
            for rid in (node..job.num_reducers).step_by(n) {
                if !handled[rid] {
                    let ctx = TaskCtx {
                        node,
                        num_nodes: n,
                        num_reducers: job.num_reducers,
                        reducer: Some(rid),
                    };
                    let batch = job.reducer.reduce(&ctx, Vec::new())?;
                    self.node_mut(node).put(
                        &job.output,
                        rid as u32,
                        Dataset::new(job.output_schema.clone(), batch),
                    );
                }
            }
            stats.reduce_time_by_node[node] = t0.elapsed();
        }
        Ok(stats)
    }
}
