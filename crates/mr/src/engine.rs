//! The MapReduce engine: map over node-local data, shuffle by reduce key,
//! reduce per reducer, under the virtual clock.
//!
//! The execution follows the paper's Figures 9 and 11 exactly:
//!
//! 1. every node runs one **mapper** over its local fragments of the input
//!    dataset(s) and emits `(reduce-key, entry)` pairs;
//! 2. a **partitioner** maps each reduce key to one of `num_reducers`
//!    reducers (range-sampled for sort, identity for distribute, hashed for
//!    group), and the pairs are serialized and shuffled all-to-all;
//! 3. every node runs the **reducer** for each reducer id it owns
//!    (`reducer % num_nodes`), receiving the pairs sorted deterministically,
//!    and writes its output fragment under the job's output name with the
//!    reducer id as the fragment ordinal.
//!
//! Determinism: each pair carries its emitting mapper id and emission index,
//! and the engine sorts each reducer's pairs by `(key, mapper, seq)` (or
//! `(mapper, seq)` when key-sorting is off), so results are independent of
//! arrival order — the property behind the paper's "same partitions"
//! correctness claim.
//!
//! Within a phase, node tasks execute concurrently on scoped OS threads up
//! to the cluster's [`Cluster::threads`] budget, joining at the existing
//! BSP barriers (map → shuffle → reduce). Determinism survives threading
//! because nothing a worker does depends on scheduling: fault decisions are
//! pre-drawn per `(job, phase, node, attempt)` at the phase barrier,
//! straggler factors are read up front, every worker only reads `&Cluster`
//! and writes its own pre-allocated result slot, and all cluster mutation
//! (stats, recovery log, output commits) happens on the driver thread in
//! node order after the join.

use papar_record::batch::{Batch, Dataset};
use papar_record::packed::PackedRecord;
use papar_record::prefix;
use papar_record::view::{EntryView, OwnedEntry, ENTRY_PACKED, ENTRY_PACKED_CSC, ENTRY_REC};
use papar_record::wire::{self, Reader};
use papar_record::{Record, Schema, Value};
use papar_trace::{
    duration_ns, CostModel, Counters, JobTrace, PhaseKind, PhaseTrace, SkewHistogram, TaskTrace,
};
use std::cmp::Ordering;
use std::sync::Arc;

use std::time::Duration;

use crate::cluster::Cluster;
use crate::fault::{Fault, RecoveryAction, RetryPolicy};
use crate::stats::{HotPathStats, JobStats, NetModel, RecoveryStats};
use crate::timer::TaskTimer;
use crate::{MrError, Result, TaskPhase};

/// One shuffled unit: either a flat record or a whole packed group (the
/// hybrid-cut shuffles packed low-degree groups as single entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A flat record.
    Rec(Record),
    /// A packed group.
    Packed(PackedRecord),
}

impl Entry {
    /// Number of flat records this entry represents.
    pub fn record_count(&self) -> usize {
        match self {
            Entry::Rec(_) => 1,
            Entry::Packed(p) => p.records.len(),
        }
    }
}

/// Execution context handed to mappers and reducers.
#[derive(Debug, Clone)]
pub struct TaskCtx {
    /// The node this task runs on.
    pub node: usize,
    /// Cluster size.
    pub num_nodes: usize,
    /// Number of reducers of the running job.
    pub num_reducers: usize,
    /// For reduce tasks, the reducer id; `None` in map tasks.
    pub reducer: Option<usize>,
}

/// One local input fragment handed to a mapper.
#[derive(Debug, Clone)]
pub struct MapInput {
    /// Dataset name this fragment belongs to.
    pub name: String,
    /// Global fragment ordinal (scatter chunk or producing reducer id) —
    /// what distribute mappers use to compute global entry offsets.
    pub ordinal: u32,
    /// The records (shared with the node's store; reading is free).
    pub data: Arc<Dataset>,
}

/// A map task: local fragments in, `(reduce-key, entry)` pairs out.
///
/// `Sync` because one task object is shared by all node workers of a phase
/// (tasks are stateless transforms; per-node state lives in the inputs).
pub trait Mapper: Sync {
    /// Transform this node's local input fragments into keyed entries.
    /// `inputs` holds the node's fragments in (dataset, ordinal) order;
    /// nodes without local fragments get an empty slice.
    fn map(&self, ctx: &TaskCtx, inputs: &[MapInput]) -> Result<Vec<(Value, Entry)>>;
}

/// Assignment of reduce keys to reducers (`Sync`: shared across node
/// workers, like [`Mapper`]).
pub trait Partitioner: Sync {
    /// The reducer (in `0..num_reducers`) that handles `key`, or
    /// [`MrError::PartitionOutOfRange`] when the key maps outside the
    /// job's reducer range (a buggy or mis-bound policy must fail
    /// loudly, not silently skew the last reducer).
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> Result<usize>;
}

/// A reduce task: a reducer's pairs in deterministic order in, an output
/// batch out (`Sync`: shared across node workers, like [`Mapper`]).
pub trait Reducer: Sync {
    /// Produce the output fragment of one reducer.
    fn reduce(&self, ctx: &TaskCtx, pairs: Vec<(Value, Entry)>) -> Result<Batch>;

    /// Produce one fragment per output dataset for jobs launched through
    /// [`Cluster::run_job_multi`]: slot 0 goes to the job's primary
    /// output, slot `j + 1` to the j-th extra output. Fused group→split
    /// stages use this to route grouped entries to the split's
    /// destination datasets in a single reduce pass; plain reducers keep
    /// the default single-slot behavior.
    fn reduce_multi(&self, ctx: &TaskCtx, pairs: Vec<(Value, Entry)>) -> Result<Vec<Batch>> {
        Ok(vec![self.reduce(ctx, pairs)?])
    }
}

/// Blanket adapters so plain closures can serve as map/reduce tasks.
pub struct FnMapper<F>(pub F);

impl<F> Mapper for FnMapper<F>
where
    F: Fn(&TaskCtx, &[MapInput]) -> Result<Vec<(Value, Entry)>> + Sync,
{
    fn map(&self, ctx: &TaskCtx, inputs: &[MapInput]) -> Result<Vec<(Value, Entry)>> {
        (self.0)(ctx, inputs)
    }
}

/// Closure adapter for reducers.
pub struct FnReducer<F>(pub F);

impl<F> Reducer for FnReducer<F>
where
    F: Fn(&TaskCtx, Vec<(Value, Entry)>) -> Result<Batch> + Sync,
{
    fn reduce(&self, ctx: &TaskCtx, pairs: Vec<(Value, Entry)>) -> Result<Batch> {
        (self.0)(ctx, pairs)
    }
}

/// Hash partitioner (group-by-key jobs).
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> Result<usize> {
        Ok((key.stable_hash() % num_reducers as u64) as usize)
    }
}

/// Identity partitioner: the key *is* the reducer id (distribute jobs set
/// the temporary reduce-key to the target partition, paper Figure 9 step 4).
/// A key outside `0..num_reducers` is a policy bug and errors; it used to
/// be silently clamped onto the edge reducers, skewing the output.
pub struct IdentityPartitioner;

impl Partitioner for IdentityPartitioner {
    fn reducer_for(&self, key: &Value, num_reducers: usize) -> Result<usize> {
        let id = key.as_i64().unwrap_or(0);
        if id < 0 || id as u64 >= num_reducers as u64 {
            return Err(MrError::PartitionOutOfRange { id, num_reducers });
        }
        Ok(id as usize)
    }
}

/// A MapReduce job description.
pub struct MapReduceJob<'a> {
    /// Job name (the workflow operator id), used in stats.
    pub name: String,
    /// Input dataset names (usually one; the hybrid-cut distribute job
    /// reads both split outputs).
    pub inputs: Vec<String>,
    /// Output dataset name.
    pub output: String,
    /// Number of reducers (= output fragments).
    pub num_reducers: usize,
    /// Schema of the entries mappers emit (map may extend the input schema
    /// via add-ons before the shuffle).
    pub map_output_schema: Arc<Schema>,
    /// Schema of the reducer output (usually the same).
    pub output_schema: Arc<Schema>,
    /// The map task.
    pub mapper: &'a dyn Mapper,
    /// Reduce-key to reducer assignment.
    pub partitioner: &'a dyn Partitioner,
    /// The reduce task.
    pub reducer: &'a dyn Reducer,
    /// Sort each reducer's pairs by key before reducing (sort/group jobs);
    /// otherwise pairs arrive in `(mapper, seq)` order (distribute jobs).
    pub sort_by_key: bool,
    /// Reverse the key order in the reduce-side sort (Table I's descending
    /// sort flag). Only meaningful with `sort_by_key`.
    pub descending: bool,
    /// CSC-compress packed entries on the wire, factoring the key column at
    /// this index out of group members (paper Section III-D); `None` sends
    /// packed groups uncompressed.
    pub compress_key: Option<usize>,
}

fn encode_entry(
    entry: &Entry,
    schema: &Schema,
    compress_key: Option<usize>,
    buf: &mut Vec<u8>,
) -> Result<()> {
    match entry {
        Entry::Rec(r) => {
            buf.push(ENTRY_REC);
            wire::encode_record(r, schema, buf)?;
        }
        Entry::Packed(p) => match compress_key {
            Some(key_idx) => {
                buf.push(ENTRY_PACKED_CSC);
                wire::encode_value(&p.key, buf);
                buf.extend_from_slice(&(p.records.len() as u32).to_le_bytes());
                for (fi, field) in schema.fields().iter().enumerate() {
                    if fi == key_idx {
                        continue;
                    }
                    for rec in &p.records {
                        let v = rec.require(fi).map_err(MrError::from)?;
                        wire::encode_field(v, field.ty, buf)?;
                    }
                }
            }
            None => {
                buf.push(ENTRY_PACKED);
                wire::encode_value(&p.key, buf);
                buf.extend_from_slice(&(p.records.len() as u32).to_le_bytes());
                for rec in &p.records {
                    wire::encode_record(rec, schema, buf)?;
                }
            }
        },
    }
    Ok(())
}

/// Decode one entry, dispatching on its tag byte.
fn decode_entry(r: &mut Reader<'_>, schema: &Schema, compress_key: Option<usize>) -> Result<Entry> {
    let tag = r.read_u8()?;
    match tag {
        ENTRY_REC => Ok(Entry::Rec(wire::decode_record(r, schema)?)),
        ENTRY_PACKED => {
            let key = wire::decode_value(r)?;
            let count = r.read_u32()? as usize;
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(wire::decode_record(r, schema)?);
            }
            Ok(Entry::Packed(PackedRecord { key, records }))
        }
        ENTRY_PACKED_CSC => {
            let key_idx = compress_key.ok_or_else(|| {
                MrError::msg("received CSC-compressed entry but job has no compress_key")
            })?;
            let key = wire::decode_value(r)?;
            let count = r.read_u32()? as usize;
            let mut columns: Vec<std::vec::IntoIter<Value>> = Vec::new();
            for (fi, field) in schema.fields().iter().enumerate() {
                if fi == key_idx {
                    continue;
                }
                let mut col = Vec::with_capacity(count);
                for _ in 0..count {
                    col.push(wire::decode_field(r, field.ty)?);
                }
                columns.push(col.into_iter());
            }
            // Rebuild rows by draining the columns — each decoded cell is
            // moved into its row exactly once; only the factored-out key is
            // cloned per row.
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                let mut values = Vec::with_capacity(schema.len());
                let mut ci = 0;
                for fi in 0..schema.len() {
                    if fi == key_idx {
                        values.push(key.clone());
                    } else {
                        values.push(columns[ci].next().expect("column has `count` cells"));
                        ci += 1;
                    }
                }
                records.push(Record::new(values));
            }
            Ok(Entry::Packed(PackedRecord { key, records }))
        }
        other => Err(MrError::msg(format!("unknown entry tag {other}"))),
    }
}

/// A decoded shuffled pair with its determinism tag (`Clone` because the
/// parallel samplesort's run partitioning copies elements).
#[derive(Clone)]
struct ShuffledPair {
    reducer: u32,
    mapper: u32,
    seq: u32,
    key: Value,
    entry: Entry,
}

/// The shuffle's reduce-side order: `(reducer, key?, mapper, seq)`.
/// `(mapper, seq)` is unique per pair, so this is a *total* order — any
/// correct sort, stable or not, sequential or parallel, produces the same
/// permutation. That is what lets the engine use the unstable parallel
/// samplesort without risking byte-level divergence.
fn shuffle_cmp(
    sort_by_key: bool,
    descending: bool,
    a: &ShuffledPair,
    b: &ShuffledPair,
) -> Ordering {
    a.reducer
        .cmp(&b.reducer)
        .then_with(|| {
            if sort_by_key {
                let ord = a.key.cmp(&b.key);
                if descending {
                    ord.reverse()
                } else {
                    ord
                }
            } else {
                Ordering::Equal
            }
        })
        .then_with(|| a.mapper.cmp(&b.mapper))
        .then_with(|| a.seq.cmp(&b.seq))
}

/// Checked narrowing for the shuffle wire format's u32 counters — a mapper
/// emitting past `u32::MAX` pairs must fail loudly, not wrap.
fn wire_u32(field: &'static str, value: usize) -> Result<u32> {
    u32::try_from(value).map_err(|_| MrError::WireOverflow { field, value })
}

// ---------------------------------------------------------------------------
// Zero-copy reduce path: borrowed views + packed 128-bit sort keys.
//
// Instead of decoding every shuffled pair into an owned `(Value, Entry)`
// before sorting, the zero-copy path scans each inbox buffer once, records a
// 16-byte [`PairLoc`] locating the pair's bytes, and packs the sort order
// into a single `u128`:
//
// ```text
//   bit 127..104   reducer id              (24 bits)
//   bit 103..38    key prefix `packed66`   (66 bits; 0 when !sort_by_key,
//                                           bitwise-NOT'd when descending)
//   bit  37..0     scan index              (38 bits)
// ```
//
// Inboxes are built sender-ascending and each sender's pairs arrive in
// emission order, so the scan index ascends exactly like `(mapper, seq)` —
// unsigned `u128` comparison therefore equals [`shuffle_cmp`] *except* where
// two pairs share a reducer and an inexact key prefix; those tie runs are
// re-sorted from decoded keys afterwards (see [`fixup_prefix_ties`]).
// ---------------------------------------------------------------------------

/// Reducer ids must fit the 24-bit field; wider jobs use the owned path.
const REDUCER_BITS: u32 = 24;
/// Scan-index width; inboxes holding ≥ 2^38 pairs fall back to the owned path.
const IDX_BITS: u32 = 38;
const IDX_MASK: u128 = (1 << IDX_BITS) - 1;
/// Mask of a 66-bit `packed66` key prefix (before shifting into position).
const KEY66_MASK: u128 = (1 << 66) - 1;

/// Where one shuffled pair's bytes live inside the reduce inboxes. Offsets
/// are u32 (buffers over `u32::MAX` bytes fall back to the owned path), so
/// the whole index entry is 16 bytes — sorting moves these and the packed
/// keys, never the record bytes.
#[derive(Clone, Copy)]
struct PairLoc {
    /// Index into the inbox slice (senders ascending).
    buf: u32,
    /// Offset of the tagged key.
    key_off: u32,
    /// Offset of the entry (tag byte); `entry_off - key_off` = key bytes.
    entry_off: u32,
    /// End of the entry; `end_off - key_off` = the pair's payload bytes.
    end_off: u32,
}

fn pack_pair(reducer: u32, key66: u128, idx: usize) -> u128 {
    ((reducer as u128) << (66 + IDX_BITS)) | (key66 << IDX_BITS) | idx as u128
}

/// Heap allocations needed to own one decoded `Value`.
fn value_allocs(v: &Value) -> u64 {
    matches!(v, Value::Str(_)) as u64
}

fn record_allocs(r: &Record) -> u64 {
    1 + r.values().iter().map(value_allocs).sum::<u64>()
}

/// Heap allocations needed to own one decoded `Entry` (the analytic count
/// behind `HotPathStats::staged_allocs` — a function of the data, not of
/// the allocator, so it is identical at every thread count).
fn entry_allocs(e: &Entry) -> u64 {
    match e {
        Entry::Rec(r) => record_allocs(r),
        Entry::Packed(p) => {
            1 + value_allocs(&p.key) + p.records.iter().map(record_allocs).sum::<u64>()
        }
    }
}

/// Count the pairs in a reduce inbox with an allocation-free skip scan so
/// decode buffers can be pre-sized exactly before the first attempt.
/// `None` when the bytes are malformed — the decode pass will surface the
/// error with full context.
fn count_inbox_pairs(
    inbox: &[(usize, Vec<u8>)],
    schema: &Schema,
    compress_key: Option<usize>,
) -> Option<usize> {
    let mut count = 0usize;
    for (_, buf) in inbox {
        let mut r = Reader::new(buf);
        while r.remaining() > 0 {
            r.read_bytes(8).ok()?; // reducer + seq
            wire::skip_value(&mut r).ok()?;
            EntryView::parse(&mut r, schema, compress_key).ok()?;
            count += 1;
        }
    }
    Some(count)
}

/// Re-sort runs of pairs whose packed keys tie on an *inexact* prefix.
///
/// A tie on `(reducer, key66)` means `Value::cmp` is `Equal` only when both
/// prefixes are exact (see `papar_record::prefix`); runs where every member
/// is exact are already correctly ordered (equal keys, ascending scan index)
/// and are skipped without decoding. Otherwise the run's keys are decoded
/// and stably re-sorted by the true key order — stability keeps truly-equal
/// keys in ascending scan order, preserving [`shuffle_cmp`]'s total order.
fn fixup_prefix_ties(
    descending: bool,
    inbox: &[(usize, Vec<u8>)],
    locs: &[PairLoc],
    packed: &mut [u128],
    hot: &mut HotPathStats,
) -> Result<()> {
    let key_bytes = |p: u128| {
        let loc = &locs[(p & IDX_MASK) as usize];
        &inbox[loc.buf as usize].1[loc.key_off as usize..loc.entry_off as usize]
    };
    let mut i = 0;
    while i < packed.len() {
        let run_key = packed[i] >> IDX_BITS;
        let mut j = i + 1;
        while j < packed.len() && packed[j] >> IDX_BITS == run_key {
            j += 1;
        }
        if j - i >= 2 {
            hot.tie_pairs += (j - i) as u64;
            let all_exact = packed[i..j].iter().try_fold(true, |acc, &p| {
                let kp = prefix::from_wire(&mut Reader::new(key_bytes(p)))?;
                Ok::<_, MrError>(acc && kp.exact)
            })?;
            if !all_exact {
                let mut keyed: Vec<(Value, u128)> = Vec::with_capacity(j - i);
                for &p in &packed[i..j] {
                    let bytes = key_bytes(p);
                    let key = wire::decode_value(&mut Reader::new(bytes))?;
                    hot.staged_bytes +=
                        bytes.len() as u64 + std::mem::size_of::<(Value, u128)>() as u64;
                    hot.staged_allocs += value_allocs(&key);
                    keyed.push((key, p));
                }
                // Stable sort: members arrive in ascending scan order, so
                // truly-equal keys keep that order after the re-sort.
                keyed.sort_by(|a, b| {
                    let ord = a.0.cmp(&b.0);
                    if descending {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                for (k, (_, p)) in keyed.into_iter().enumerate() {
                    packed[i + k] = p;
                }
            }
        }
        i = j;
    }
    Ok(())
}

/// What one reduce attempt (either decode path) hands back.
struct ReduceAttempt {
    outputs: Vec<(u32, Vec<Batch>)>,
    records_out: u64,
    pair_count: u64,
    hot: HotPathStats,
}

/// Everything a phase worker needs besides `&Cluster`: per-job constants
/// and the fault state pre-drawn at the phase barrier, so tasks never
/// touch `&mut Cluster`.
struct PhaseCtx<'a> {
    job: &'a MapReduceJob<'a>,
    job_idx: usize,
    n: usize,
    retry: RetryPolicy,
    /// Pre-drawn crash counts: node `i` crashes on its first `crashes[i]`
    /// attempts, matching the sequential engine's consumption order.
    crashes: Vec<u32>,
    /// Straggler slowdown factor per node (persistent, read up front).
    stragglers: &'a [f64],
    /// The whole phase's OS-thread budget.
    threads: usize,
    /// Whether the cluster's trace sink wants task spans; when false
    /// the tasks skip all trace bookkeeping.
    tracing: bool,
    /// Cost model behind the trace's deterministic clock.
    cost: CostModel,
    /// Network model, for modeling recovery traffic on that clock.
    net: NetModel,
    /// Extra output datasets (name, schema) beyond `job.output`, in
    /// `reduce_multi` slot order; empty for single-output jobs.
    extra_outputs: &'a [(String, Arc<Schema>)],
}

/// What one node's map task hands back at the barrier.
struct MapOutcome {
    /// Outbox row: encoded pairs destined to each node.
    row: Vec<Vec<u8>>,
    /// Compute of the successful attempt (what a reduce-side crash
    /// re-charges to regenerate the node's self-send).
    compute: Duration,
    /// Total virtual map time, including retried attempts and backoff.
    phase_time: Duration,
    records_in: u64,
    pairs: u64,
    /// Locally-accumulated recovery accounting, merged in node order.
    recovery: RecoveryStats,
    events: Vec<RecoveryAction>,
    /// The task's span, when tracing.
    trace: Option<TaskTrace>,
    /// Per-reducer records/bytes this mapper routed, when tracing.
    skew: Option<SkewHistogram>,
}

/// What one node's reduce task hands back at the barrier.
struct ReduceOutcome {
    /// Output batches per owned reducer id, one batch per output slot
    /// (primary first, then the job's extra outputs); committed by the
    /// driver thread in node order so replication accounting stays
    /// deterministic.
    outputs: Vec<(u32, Vec<Batch>)>,
    phase_time: Duration,
    records_out: u64,
    recovery: RecoveryStats,
    events: Vec<RecoveryAction>,
    /// Hot-path counters from the successful attempt.
    hot: HotPathStats,
    /// The task's span, when tracing.
    trace: Option<TaskTrace>,
}

/// Run `task(node)` for every node, filling a pre-allocated slot per node.
///
/// With more than one thread the nodes are split into contiguous chunks,
/// one scoped worker per chunk, so slot assignment never depends on
/// completion order; with one thread (or one node) the tasks run inline.
/// A worker panic propagates to the caller like a sequential panic would.
fn run_phase<T, F>(n: usize, threads: usize, task: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return (0..n).map(&task).collect();
    }
    let mut slots: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    let scope_result = crossbeam::thread::scope(|s| {
        for (ci, part) in slots.chunks_mut(chunk).enumerate() {
            let task = &task;
            s.spawn(move |_| {
                for (off, slot) in part.iter_mut().enumerate() {
                    *slot = Some(task(ci * chunk + off));
                }
            });
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("phase worker filled every slot"))
        .collect()
}

/// Invoke the job's reducer and check it produced exactly one batch per
/// output slot — a mismatch is a reducer bug and must fail the task, not
/// silently drop or misroute a dataset.
fn reduce_slots(
    job: &MapReduceJob<'_>,
    ctx: &TaskCtx,
    pairs: Vec<(Value, Entry)>,
    slots: usize,
) -> Result<Vec<Batch>> {
    let batches = job.reducer.reduce_multi(ctx, pairs)?;
    if batches.len() != slots {
        return Err(MrError::msg(format!(
            "job '{}': reducer produced {} batch(es) for {} output slot(s)",
            job.name,
            batches.len(),
            slots
        )));
    }
    Ok(batches)
}

/// Reducers that received nothing still own an (empty) output fragment, so
/// a distribute job always materializes every partition. Shared by both
/// reduce-attempt paths.
fn fill_empty_reducers(
    pc: &PhaseCtx<'_>,
    node: usize,
    handled: &[bool],
    slots: usize,
    outputs: &mut Vec<(u32, Vec<Batch>)>,
) -> Result<()> {
    let job = pc.job;
    for rid in (node..job.num_reducers).step_by(pc.n) {
        if !handled[rid] {
            let ctx = TaskCtx {
                node,
                num_nodes: pc.n,
                num_reducers: job.num_reducers,
                reducer: Some(rid),
            };
            let batches = reduce_slots(job, &ctx, Vec::new(), slots)?;
            outputs.push((rid as u32, batches));
        }
    }
    Ok(())
}

impl Cluster {
    /// Run one MapReduce job under the virtual clock and return its stats.
    ///
    /// The output dataset is written fragment-per-reducer with the reducer
    /// id as ordinal; collect it with [`Cluster::collect`] to obtain the
    /// partitions in partition order.
    /// When a fault plan is installed, the run is *chaos-aware*: scheduled
    /// node crashes fire at task boundaries (the task's work is lost and
    /// the task re-executes under the retry policy, with backoff, the lost
    /// compute and the replica-restore traffic charged to the virtual
    /// clock), scheduled drop/corrupt faults hit the shuffle (detected by
    /// timeout/checksum, then retransmitted), and stragglers scale a node's
    /// measured compute time. Recovery never changes the output: recovered
    /// runs are byte-identical to fault-free ones, for every thread count.
    pub fn run_job(&mut self, job: &MapReduceJob<'_>) -> Result<JobStats> {
        self.run_job_multi(job, &[])
    }

    /// Like [`Cluster::run_job`], but the reducer writes one batch per
    /// output dataset via [`Reducer::reduce_multi`]: slot 0 commits to
    /// `job.output` with `job.output_schema`, slot `j + 1` to
    /// `extra_outputs[j]`. Every output dataset gets one fragment per
    /// reducer (ordinal = reducer id), exactly like the primary output of
    /// a plain job.
    pub fn run_job_multi(
        &mut self,
        job: &MapReduceJob<'_>,
        extra_outputs: &[(String, Arc<Schema>)],
    ) -> Result<JobStats> {
        if job.num_reducers == 0 {
            return Err(MrError::msg(format!(
                "job '{}' has zero reducers",
                job.name
            )));
        }
        let job_idx = self.next_job_index();
        let n = self.num_nodes();
        let threads = self.threads();
        let retry = self.retry_policy();
        let tracing = self.tracing();
        let cost = self.cost_model();
        let net_model = *self.net();
        let stragglers: Vec<f64> = (0..n).map(|i| self.straggler_factor(i)).collect();
        let mut stats = JobStats {
            name: job.name.clone(),
            map_time_by_node: vec![Duration::ZERO; n],
            reduce_time_by_node: vec![Duration::ZERO; n],
            ..Default::default()
        };

        // ---- Map phase: all node tasks concurrently, each timed
        // individually, results in per-node slots. ----
        let map_pc = PhaseCtx {
            job,
            job_idx,
            n,
            retry,
            crashes: self.take_phase_crashes(job_idx, TaskPhase::Map),
            stragglers: &stragglers,
            threads,
            tracing,
            cost,
            net: net_model,
            extra_outputs,
        };
        let this: &Cluster = &*self;
        let map_results = run_phase(n, threads, |node| this.map_task(&map_pc, node));

        // Successful-attempt compute per node, kept apart from retry
        // charges: a reduce-side crash re-runs the node's map task to
        // regenerate its self-send data, at this cost.
        let mut map_compute: Vec<Duration> = vec![Duration::ZERO; n];
        let mut outboxes: Vec<Vec<Vec<u8>>> = Vec::with_capacity(n);
        let mut map_tasks: Vec<TaskTrace> = Vec::new();
        let mut job_skew: Option<SkewHistogram> = None;
        let mut first_err: Option<MrError> = None;
        for (node, res) in map_results.into_iter().enumerate() {
            match res {
                Ok(o) if first_err.is_none() => {
                    stats.map_time_by_node[node] += o.phase_time;
                    map_compute[node] = o.compute;
                    stats.records_in += o.records_in;
                    stats.pairs_shuffled += o.pairs;
                    self.absorb_worker_recovery(o.recovery, o.events);
                    if let Some(t) = o.trace {
                        map_tasks.push(t);
                    }
                    if let Some(s) = o.skew {
                        match job_skew.as_mut() {
                            Some(merged) => merged.merge(&s),
                            None => job_skew = Some(s),
                        }
                    }
                    outboxes.push(o.row);
                }
                Ok(_) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Remember the outbox sizes: the next map phase pre-sizes its
        // shuffle buffers from them instead of growing from empty.
        self.set_shuffle_hints(
            outboxes
                .iter()
                .map(|row| row.iter().map(Vec::len).collect())
                .collect(),
        );

        // ---- Shuffle. ----
        let (inboxes, exchange) = self.exchange_with_faults(job_idx, &job.name, outboxes)?;
        stats.comm_time = exchange.comm_time(self.net());
        stats.exchange = exchange;

        // ---- Reduce phase: same slot discipline; outputs commit on the
        // driver thread at the barrier, in node order. ----
        let reduce_pc = PhaseCtx {
            job,
            job_idx,
            n,
            retry,
            crashes: self.take_phase_crashes(job_idx, TaskPhase::Reduce),
            stragglers: &stragglers,
            threads,
            tracing,
            cost,
            net: net_model,
            extra_outputs,
        };
        let this: &Cluster = &*self;
        let reduce_results = run_phase(n, threads, |node| {
            this.reduce_task(&reduce_pc, node, &inboxes[node], map_compute[node])
        });

        let mut reduce_tasks: Vec<TaskTrace> = Vec::new();
        let mut first_err: Option<MrError> = None;
        for (node, res) in reduce_results.into_iter().enumerate() {
            match res {
                Ok(o) if first_err.is_none() => {
                    stats.reduce_time_by_node[node] += o.phase_time;
                    stats.records_out += o.records_out;
                    stats.hot.merge(&o.hot);
                    self.absorb_worker_recovery(o.recovery, o.events);
                    if let Some(t) = o.trace {
                        reduce_tasks.push(t);
                    }
                    for (rid, batches) in o.outputs {
                        for (slot, batch) in batches.into_iter().enumerate() {
                            let (name, schema) = if slot == 0 {
                                (job.output.as_str(), &job.output_schema)
                            } else {
                                let (n, s) = &extra_outputs[slot - 1];
                                (n.as_str(), s)
                            };
                            self.put_fragment(
                                node,
                                name,
                                rid,
                                Dataset::new(schema.clone(), batch),
                            )?;
                        }
                    }
                }
                Ok(_) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Recovery traffic (replication, restores, retransmits) joins the
        // job's modeled communication time; compute-side recovery is already
        // inside the per-node phase times.
        let recovery = self.take_recovery();
        let net = *self.net();
        stats.absorb_recovery(recovery, &net);

        if tracing {
            // Emitted only now, after recovery absorption, so the
            // shuffle span's virtual time is the *final* comm time and
            // the three phases sum exactly to the job's makespan.
            let trace = job_trace(&stats, &net_model, map_tasks, reduce_tasks, job_skew);
            self.record_job_trace(trace);
        }
        Ok(stats)
    }

    /// One node's map task: read local fragments, map, partition and encode
    /// into the outbox row, retrying under pre-drawn crash faults. Runs on
    /// a worker thread with only `&self`.
    fn map_task(&self, pc: &PhaseCtx<'_>, node: usize) -> Result<MapOutcome> {
        let job = pc.job;
        let hints = self.shuffle_hints().get(node);
        let mut out = MapOutcome {
            row: (0..pc.n)
                .map(|to| Vec::with_capacity(hints.and_then(|h| h.get(to)).copied().unwrap_or(0)))
                .collect(),
            compute: Duration::ZERO,
            phase_time: Duration::ZERO,
            records_in: 0,
            pairs: 0,
            recovery: RecoveryStats::default(),
            events: Vec::new(),
            trace: None,
            skew: None,
        };
        let mut crashes_left = pc.crashes[node];
        let mut attempt: u32 = 1;
        // Raw (unscaled) on-CPU time across attempts, for the trace.
        let mut cpu = Duration::ZERO;
        let mut skew = pc.tracing.then(|| SkewHistogram::new(job.num_reducers));
        loop {
            let t0 = TaskTimer::start();
            // Retries reuse the row buffers (cleared, capacity kept).
            for buf in &mut out.row {
                buf.clear();
            }
            if let Some(sk) = skew.as_mut() {
                sk.reset();
            }
            let mut inputs: Vec<MapInput> = Vec::new();
            let mut records_in: u64 = 0;
            for name in &job.inputs {
                if let Some(frags) = self.node(node).get(name) {
                    for f in frags {
                        records_in += f.data.batch.record_count() as u64;
                        inputs.push(MapInput {
                            name: name.clone(),
                            ordinal: f.ordinal,
                            data: Arc::clone(&f.data),
                        });
                    }
                }
            }
            let ctx = TaskCtx {
                node,
                num_nodes: pc.n,
                num_reducers: job.num_reducers,
                reducer: None,
            };
            let pairs = job.mapper.map(&ctx, &inputs)?;
            let pair_count = pairs.len() as u64;
            for (seq, (key, entry)) in pairs.into_iter().enumerate() {
                let reducer = job.partitioner.reducer_for(&key, job.num_reducers)?;
                if reducer >= job.num_reducers {
                    // Defensive re-check for third-party partitioners
                    // that return in-band instead of erroring.
                    return Err(MrError::PartitionOutOfRange {
                        id: reducer as i64,
                        num_reducers: job.num_reducers,
                    });
                }
                let buf = &mut out.row[reducer % pc.n];
                let len_before = buf.len();
                buf.extend_from_slice(&wire_u32("reducer", reducer)?.to_le_bytes());
                buf.extend_from_slice(&wire_u32("seq", seq)?.to_le_bytes());
                wire::encode_value(&key, buf);
                encode_entry(&entry, &job.map_output_schema, job.compress_key, buf)?;
                if let Some(sk) = skew.as_mut() {
                    sk.records[reducer] += entry.record_count() as u64;
                    sk.bytes[reducer] += (buf.len() - len_before) as u64;
                }
            }
            let raw = t0.elapsed();
            cpu += raw;
            let elapsed = scale_compute(raw, pc.stragglers[node]);
            out.phase_time += elapsed;

            if crashes_left > 0 {
                // The node died before committing its map output: the
                // attempt's compute is lost (charged above, and counted as
                // re-execution overhead). The replica restore is simulated
                // read-only — it would put back the very `Arc`s the store
                // holds — so only its accounting reaches the barrier.
                crashes_left -= 1;
                self.simulate_crash(pc, TaskPhase::Map, node, &mut out.recovery, &mut out.events)?;
                out.recovery.reexec_task_time += elapsed;
                if attempt >= pc.retry.max_attempts {
                    return Err(MrError::TaskAborted {
                        job: job.name.clone(),
                        node,
                        phase: TaskPhase::Map,
                        attempts: attempt,
                        source: Box::new(MrError::RetriesExhausted {
                            attempts: attempt,
                            stats: Box::new(out.recovery.clone()),
                        }),
                    });
                }
                let backoff = pc.retry.backoff_for(attempt);
                out.phase_time += backoff;
                out.recovery.tasks_retried += 1;
                out.recovery.backoff_time += backoff;
                out.events.push(RecoveryAction::TaskRetried {
                    job: job.name.clone(),
                    node,
                    phase: TaskPhase::Map,
                    attempt: attempt + 1,
                    backoff,
                });
                attempt += 1;
                continue;
            }

            out.compute = elapsed;
            out.records_in = records_in;
            out.pairs = pair_count;
            if pc.tracing {
                let encoded: u64 = out.row.iter().map(|b| b.len() as u64).sum();
                let counters = Counters {
                    records_in,
                    pairs: pair_count,
                    retries: out.recovery.tasks_retried as u64,
                    crashes: out.recovery.faults_injected as u64,
                    restore_bytes: out.recovery.restore_bytes,
                    restore_messages: out.recovery.restore_messages,
                    backoff_ns: duration_ns(out.recovery.backoff_time),
                    ..Counters::default()
                };
                out.trace = Some(TaskTrace {
                    node,
                    virt: out.phase_time,
                    cpu,
                    det_ns: task_det_ns(pc, attempt, records_in, pair_count, encoded, &counters),
                    counters,
                });
                out.skew = skew.take();
            }
            return Ok(out);
        }
    }

    /// One node's reduce task: decode its inbox, sort, reduce per owned
    /// reducer id, retrying under pre-drawn crash faults. Runs on a worker
    /// thread with only `&self`; outputs are committed by the driver.
    fn reduce_task(
        &self,
        pc: &PhaseCtx<'_>,
        node: usize,
        inbox: &[(usize, Vec<u8>)],
        map_compute: Duration,
    ) -> Result<ReduceOutcome> {
        let job = pc.job;
        let mut out = ReduceOutcome {
            outputs: Vec::new(),
            phase_time: Duration::ZERO,
            records_out: 0,
            recovery: RecoveryStats::default(),
            events: Vec::new(),
            hot: HotPathStats::default(),
            trace: None,
        };
        // Threads left over beyond one per node parallelize this node's
        // sort — the node's core budget, like papar-sort's contract wants.
        let sort_threads = (pc.threads / pc.n).max(1);
        let mut crashes_left = pc.crashes[node];
        let mut attempt: u32 = 1;
        // Raw (unscaled) on-CPU time across attempts, for the trace.
        let mut cpu = Duration::ZERO;
        // The exchange builds inboxes sender-ascending; the zero-copy scan
        // index stands in for `(mapper, seq)` only because of that.
        debug_assert!(inbox.windows(2).all(|w| w[0].0 < w[1].0));
        let use_zerocopy = self.zerocopy() && job.num_reducers < (1usize << REDUCER_BITS);
        // Decode buffers survive retry attempts (cleared, capacity kept)
        // and are pre-sized to the exact pair count by an allocation-free
        // skip scan, so the first attempt never grows from empty.
        let mut pairs: Vec<ShuffledPair> = Vec::new();
        let mut locs: Vec<PairLoc> = Vec::new();
        let mut packed: Vec<u128> = Vec::new();
        if let Some(count) = count_inbox_pairs(inbox, &job.map_output_schema, job.compress_key) {
            if use_zerocopy {
                locs.reserve_exact(count);
                packed.reserve_exact(count);
            } else {
                pairs.reserve_exact(count);
            }
        }
        loop {
            let t0 = TaskTimer::start();
            // Outputs are buffered and only committed if the task survives
            // its boundary — a crashed attempt leaves nothing. The
            // zero-copy path declines (`None`) on jobs exceeding its packed
            // index ranges; the owned path handles those attempts.
            let attempted = if use_zerocopy {
                self.reduce_attempt_zerocopy(pc, node, inbox, &mut locs, &mut packed, sort_threads)?
            } else {
                None
            };
            let ReduceAttempt {
                outputs,
                records_out,
                pair_count,
                hot,
            } = match attempted {
                Some(a) => a,
                None => self.reduce_attempt_owned(pc, node, inbox, &mut pairs, sort_threads)?,
            };
            let raw = t0.elapsed();
            cpu += raw;
            let elapsed = scale_compute(raw, pc.stragglers[node]);
            out.phase_time += elapsed;

            if crashes_left > 0 {
                // Crash mid-shuffle: the reduce attempt's work and the
                // node's in-memory inbox are gone. Remote mappers held
                // their send buffers and retransmit them; the node's own
                // map output is regenerated by re-running its map task
                // (same deterministic bytes, so the retry below reuses
                // `inbox` while the clock pays for the re-fetch).
                crashes_left -= 1;
                self.simulate_crash(
                    pc,
                    TaskPhase::Reduce,
                    node,
                    &mut out.recovery,
                    &mut out.events,
                )?;
                out.recovery.reexec_task_time += elapsed;
                let (rbytes, rmsgs) = inbox
                    .iter()
                    .filter(|(from, _)| *from != node)
                    .fold((0u64, 0u64), |(b, m), (_, buf)| {
                        (b + buf.len() as u64, m + 1)
                    });
                if rmsgs > 0 {
                    out.recovery.retransmit_bytes += rbytes;
                    out.recovery.retransmit_messages += rmsgs;
                    out.events.push(RecoveryAction::InboxRefetched {
                        job: job.name.clone(),
                        node,
                        bytes: rbytes,
                        messages: rmsgs,
                    });
                }
                if inbox.iter().any(|(from, _)| *from == node) {
                    // Re-running the local map task costs its compute.
                    out.phase_time += map_compute;
                    out.recovery.reexec_task_time += map_compute;
                }
                if attempt >= pc.retry.max_attempts {
                    return Err(MrError::TaskAborted {
                        job: job.name.clone(),
                        node,
                        phase: TaskPhase::Reduce,
                        attempts: attempt,
                        source: Box::new(MrError::RetriesExhausted {
                            attempts: attempt,
                            stats: Box::new(out.recovery.clone()),
                        }),
                    });
                }
                let backoff = pc.retry.backoff_for(attempt);
                out.phase_time += backoff;
                out.recovery.tasks_retried += 1;
                out.recovery.backoff_time += backoff;
                out.events.push(RecoveryAction::TaskRetried {
                    job: job.name.clone(),
                    node,
                    phase: TaskPhase::Reduce,
                    attempt: attempt + 1,
                    backoff,
                });
                attempt += 1;
                continue;
            }

            out.records_out = records_out;
            out.outputs = outputs;
            out.hot = hot;
            if pc.tracing {
                let inbox_bytes: u64 = inbox.iter().map(|(_, b)| b.len() as u64).sum();
                let counters = Counters {
                    records_out,
                    pairs: pair_count,
                    retries: out.recovery.tasks_retried as u64,
                    crashes: out.recovery.faults_injected as u64,
                    restore_bytes: out.recovery.restore_bytes,
                    restore_messages: out.recovery.restore_messages,
                    retransmit_bytes: out.recovery.retransmit_bytes,
                    retransmit_messages: out.recovery.retransmit_messages,
                    backoff_ns: duration_ns(out.recovery.backoff_time),
                    staged_bytes: out.hot.staged_bytes,
                    staged_allocs: out.hot.staged_allocs,
                    materialized_bytes: out.hot.materialized_bytes,
                    tie_pairs: out.hot.tie_pairs,
                    ..Counters::default()
                };
                out.trace = Some(TaskTrace {
                    node,
                    virt: out.phase_time,
                    cpu,
                    det_ns: task_det_ns(
                        pc,
                        attempt,
                        records_out,
                        pair_count,
                        inbox_bytes,
                        &counters,
                    ),
                    counters,
                });
            }
            return Ok(out);
        }
    }

    /// One owned-path reduce attempt: decode every pair into an owned
    /// `(Value, Entry)` before sorting. This is the baseline the zero-copy
    /// path is measured against, and the fallback for jobs exceeding the
    /// packed-index ranges.
    fn reduce_attempt_owned(
        &self,
        pc: &PhaseCtx<'_>,
        node: usize,
        inbox: &[(usize, Vec<u8>)],
        pairs: &mut Vec<ShuffledPair>,
        sort_threads: usize,
    ) -> Result<ReduceAttempt> {
        let job = pc.job;
        let mut hot = HotPathStats::default();
        pairs.clear();
        for (from, buf) in inbox {
            let mut r = Reader::new(buf);
            while r.remaining() > 0 {
                let reducer = r.read_u32().map_err(MrError::from)?;
                let seq = r.read_u32().map_err(MrError::from)?;
                let start = r.position();
                let key = wire::decode_value(&mut r)?;
                let entry = decode_entry(&mut r, &job.map_output_schema, job.compress_key)?;
                hot.materialized_bytes += (r.position() - start) as u64;
                hot.staged_bytes += std::mem::size_of::<ShuffledPair>() as u64;
                hot.staged_allocs += value_allocs(&key) + entry_allocs(&entry);
                pairs.push(ShuffledPair {
                    reducer,
                    mapper: *from as u32,
                    seq,
                    key,
                    entry,
                });
            }
        }
        // Group pairs per owned reducer. `shuffle_cmp` is a total
        // order, so the unstable parallel samplesort is deterministic.
        papar_sort::parallel::par_sort_unstable_by(pairs, sort_threads, |a, b| {
            shuffle_cmp(job.sort_by_key, job.descending, a, b) == Ordering::Less
        });
        let pair_count = pairs.len() as u64;
        let slots = 1 + pc.extra_outputs.len();
        let mut outputs: Vec<(u32, Vec<Batch>)> = Vec::new();
        let mut records_out: u64 = 0;
        let mut handled: Vec<bool> = vec![false; job.num_reducers];
        let mut iter = pairs.drain(..).peekable();
        while let Some(first) = iter.next() {
            let rid = first.reducer;
            let mut group: Vec<(Value, Entry)> = vec![(first.key, first.entry)];
            while iter.peek().is_some_and(|p| p.reducer == rid) {
                let p = iter.next().expect("peeked");
                group.push((p.key, p.entry));
            }
            let ctx = TaskCtx {
                node,
                num_nodes: pc.n,
                num_reducers: job.num_reducers,
                reducer: Some(rid as usize),
            };
            let batches = reduce_slots(job, &ctx, group, slots)?;
            records_out += batches.iter().map(|b| b.record_count() as u64).sum::<u64>();
            handled[rid as usize] = true;
            outputs.push((rid, batches));
        }
        drop(iter);
        fill_empty_reducers(pc, node, &handled, slots, &mut outputs)?;
        Ok(ReduceAttempt {
            outputs,
            records_out,
            pair_count,
            hot,
        })
    }

    /// One zero-copy reduce attempt: scan the inbox once into a 16-byte
    /// location index plus packed 128-bit sort keys, sort *those*, fix up
    /// inexact prefix ties, then materialize each pair exactly once — in
    /// final order, straight into its reduce group. Returns `Ok(None)` —
    /// caller falls back to the owned path — when a buffer or pair count
    /// exceeds the packed ranges.
    fn reduce_attempt_zerocopy(
        &self,
        pc: &PhaseCtx<'_>,
        node: usize,
        inbox: &[(usize, Vec<u8>)],
        locs: &mut Vec<PairLoc>,
        packed: &mut Vec<u128>,
        sort_threads: usize,
    ) -> Result<Option<ReduceAttempt>> {
        let job = pc.job;
        let schema: &Schema = &job.map_output_schema;
        let mut hot = HotPathStats::default();
        locs.clear();
        packed.clear();
        for (bi, (_from, buf)) in inbox.iter().enumerate() {
            if buf.len() > u32::MAX as usize {
                return Ok(None);
            }
            let mut r = Reader::new(buf);
            while r.remaining() > 0 {
                let reducer = r.read_u32().map_err(MrError::from)?;
                // `seq` is never read: senders ascend and each sender's
                // pairs arrive in emission order, so the scan index already
                // orders like `(mapper, seq)`.
                r.read_bytes(4).map_err(MrError::from)?;
                let key_off = r.position();
                let key66 = if job.sort_by_key {
                    let kp = prefix::from_wire(&mut r)?;
                    if job.descending {
                        // Inverting the 66-bit field reverses strict prefix
                        // order but preserves prefix equality, so tie runs
                        // are detected identically.
                        kp.packed66() ^ KEY66_MASK
                    } else {
                        kp.packed66()
                    }
                } else {
                    wire::skip_value(&mut r)?;
                    0
                };
                let entry_off = r.position();
                EntryView::parse(&mut r, schema, job.compress_key)?;
                let idx = locs.len();
                if idx >= (1usize << IDX_BITS) {
                    return Ok(None);
                }
                locs.push(PairLoc {
                    buf: bi as u32,
                    key_off: key_off as u32,
                    entry_off: entry_off as u32,
                    end_off: r.position() as u32,
                });
                packed.push(pack_pair(reducer, key66, idx));
            }
        }
        // What sorting moves: one PairLoc + one packed key per pair.
        hot.staged_bytes =
            (locs.len() * (std::mem::size_of::<PairLoc>() + std::mem::size_of::<u128>())) as u64;
        papar_sort::packed::par_sort_packed(packed, sort_threads);
        if job.sort_by_key {
            fixup_prefix_ties(job.descending, inbox, locs, packed, &mut hot)?;
        }
        // Group per owned reducer, materializing each pair exactly once.
        let slots = 1 + pc.extra_outputs.len();
        let mut outputs: Vec<(u32, Vec<Batch>)> = Vec::new();
        let mut records_out: u64 = 0;
        let mut handled: Vec<bool> = vec![false; job.num_reducers];
        let mut i = 0usize;
        while i < packed.len() {
            let rid = (packed[i] >> (66 + IDX_BITS)) as u32;
            let mut j = i + 1;
            while j < packed.len() && (packed[j] >> (66 + IDX_BITS)) as u32 == rid {
                j += 1;
            }
            let mut group: Vec<(Value, Entry)> = Vec::with_capacity(j - i);
            for &p in &packed[i..j] {
                let loc = &locs[(p & IDX_MASK) as usize];
                let buf = &inbox[loc.buf as usize].1;
                let mut r = Reader::new(&buf[loc.key_off as usize..loc.end_off as usize]);
                let key = wire::decode_value(&mut r)?;
                let entry =
                    match EntryView::parse(&mut r, schema, job.compress_key)?.materialize()? {
                        OwnedEntry::Rec(rec) => Entry::Rec(rec),
                        OwnedEntry::Packed(pk) => Entry::Packed(pk),
                    };
                hot.materialized_bytes += (loc.end_off - loc.key_off) as u64;
                group.push((key, entry));
            }
            let ctx = TaskCtx {
                node,
                num_nodes: pc.n,
                num_reducers: job.num_reducers,
                reducer: Some(rid as usize),
            };
            let batches = reduce_slots(job, &ctx, group, slots)?;
            records_out += batches.iter().map(|b| b.record_count() as u64).sum::<u64>();
            handled[rid as usize] = true;
            outputs.push((rid, batches));
            i = j;
        }
        let pair_count = locs.len() as u64;
        fill_empty_reducers(pc, node, &handled, slots, &mut outputs)?;
        Ok(Some(ReduceAttempt {
            outputs,
            records_out,
            pair_count,
            hot,
        }))
    }

    /// Simulate a node crash at a task boundary without mutating a store:
    /// account the fault and the replica restore into the worker's local
    /// recovery delta and event log, or fail with [`MrError::DataLoss`]
    /// when a fragment is unrecoverable — exactly like the mutating
    /// sequential path did (see [`Cluster::plan_crash_restore`]).
    fn simulate_crash(
        &self,
        pc: &PhaseCtx<'_>,
        phase: TaskPhase,
        node: usize,
        recovery: &mut RecoveryStats,
        events: &mut Vec<RecoveryAction>,
    ) -> Result<()> {
        recovery.faults_injected += 1;
        events.push(RecoveryAction::FaultInjected {
            job: pc.job.name.clone(),
            fault: Fault::NodeCrash {
                node,
                job: pc.job_idx,
                phase,
            },
        });
        let (fragments, bytes) = self.plan_crash_restore(node)?;
        recovery.restore_bytes += bytes;
        recovery.restore_messages += fragments as u64;
        events.push(RecoveryAction::FragmentsRestored {
            job: pc.job.name.clone(),
            node,
            fragments,
            bytes,
        });
        Ok(())
    }
}

/// Apply a straggler's slowdown to a measured compute time.
fn scale_compute(elapsed: Duration, factor: f64) -> Duration {
    if factor > 1.0 {
        elapsed.mul_f64(factor)
    } else {
        elapsed
    }
}

/// A task's duration on the trace's deterministic clock: every executed
/// attempt pays the modeled compute for the task's work counters, plus
/// the (deterministic) backoff waits and the modeled time of the task's
/// replica-restore and retransmission traffic.
fn task_det_ns(
    pc: &PhaseCtx<'_>,
    attempts: u32,
    records: u64,
    pairs: u64,
    bytes: u64,
    c: &Counters,
) -> u64 {
    u64::from(attempts)
        .saturating_mul(pc.cost.compute_ns(records, pairs, bytes))
        .saturating_add(c.backoff_ns)
        .saturating_add(duration_ns(
            pc.net.transfer_time(c.restore_messages, c.restore_bytes),
        ))
        .saturating_add(duration_ns(
            pc.net
                .transfer_time(c.retransmit_messages, c.retransmit_bytes),
        ))
}

/// Assemble a finished engine job's trace. The map/reduce phases close
/// over their per-node task spans (barrier semantics: slowest task's
/// time); the shuffle phase carries the exchange volume plus the
/// *exchange-level* share of the job's recovery traffic — the job total
/// minus what the reduce tasks already booked as inbox re-fetches, so
/// counters sum without double-counting up the span tree.
fn job_trace(
    stats: &JobStats,
    net: &NetModel,
    map_tasks: Vec<TaskTrace>,
    reduce_tasks: Vec<TaskTrace>,
    skew: Option<SkewHistogram>,
) -> JobTrace {
    let rec = &stats.recovery;
    let task_retrans_bytes: u64 = reduce_tasks
        .iter()
        .map(|t| t.counters.retransmit_bytes)
        .sum();
    let task_retrans_msgs: u64 = reduce_tasks
        .iter()
        .map(|t| t.counters.retransmit_messages)
        .sum();
    let ex_retrans_bytes = rec.retransmit_bytes.saturating_sub(task_retrans_bytes);
    let ex_retrans_msgs = rec.retransmit_messages.saturating_sub(task_retrans_msgs);
    let counters = Counters {
        shuffle_bytes: stats.exchange.remote_bytes,
        messages: stats.exchange.remote_messages,
        frames_checksummed: stats.exchange.remote_messages + rec.retransmit_messages,
        retransmit_bytes: ex_retrans_bytes,
        retransmit_messages: ex_retrans_msgs,
        replication_bytes: rec.replication_bytes,
        ..Counters::default()
    };
    let det = duration_ns(stats.exchange.comm_time(net))
        .saturating_add(duration_ns(
            net.transfer_time(ex_retrans_msgs, ex_retrans_bytes),
        ))
        .saturating_add(duration_ns(
            net.transfer_time(rec.replication_messages, rec.replication_bytes),
        ));
    JobTrace {
        name: stats.name.clone(),
        phases: vec![
            PhaseTrace::barrier(PhaseKind::Map, map_tasks),
            PhaseTrace::solo(PhaseKind::Shuffle, stats.comm_time, det, counters),
            PhaseTrace::barrier(PhaseKind::Reduce, reduce_tasks),
        ],
        skew,
        covers: Vec::new(),
    }
}
