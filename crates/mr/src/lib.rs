//! A simulated message-passing cluster and MapReduce engine — the MR-MPI
//! substitute the PaPar framework executes on.
//!
//! The paper runs PaPar on MR-MPI (MapReduce over MPI) on a 16-node
//! InfiniBand cluster. This crate reproduces the *structure* of that stack
//! on a single machine:
//!
//! * [`cluster::Cluster`] — `N` simulated nodes, each with a private
//!   [`store::DataStore`] of named datasets (the stand-in for HDFS paths),
//!   plus an all-to-all [`cluster::Cluster::exchange`] primitive that moves
//!   serialized byte buffers between nodes (the `MPI_Isend`/`Irecv`/`Wait`
//!   analog) while accounting every byte.
//! * [`engine`] — MapReduce jobs: a map phase over each node's local data,
//!   a shuffle keyed by a user partitioner, and a reduce phase, with
//!   deterministic ordering guarantees.
//! * [`sampler`] — distributed key sampling for balanced reduce ranges
//!   (paper Section III-D, "Data Sampling").
//! * [`stats`] — per-job timing under a *virtual clock*: node tasks execute
//!   sequentially and each node is charged its measured compute time; the
//!   job's simulated makespan is `max(map) + comm + max(reduce)` (BSP
//!   barriers, like MapReduce), with communication time from a configurable
//!   [`stats::NetModel`].
//! * [`fault`] — seeded deterministic fault injection (node crashes,
//!   dropped/corrupted transfers, stragglers) and task-level recovery:
//!   failed tasks re-execute under a [`fault::RetryPolicy`], lost fragments
//!   are re-fetched from replicas, and every recovered run produces
//!   partitions byte-identical to the fault-free run.
//!
//! ## Threads and the virtual clock
//!
//! Node tasks within a phase run concurrently on scoped OS threads (the
//! [`cluster::Cluster::with_threads`] knob, default
//! `std::thread::available_parallelism()` or the `PAPAR_THREADS` env var),
//! joining at the BSP barriers, so wall-clock time tracks per-node work
//! instead of total work. The *virtual* clock is unchanged: each node is
//! still charged its own measured compute time and the makespan still
//! composes as `max(map) + comm + max(reduce)`. Output bytes, fault
//! schedules and recovery byte/message accounting are identical for every
//! thread count — faults are pre-drawn per `(job, phase, node, attempt)` at
//! the phase barrier and per-node results land in pre-allocated slots. Task
//! compute is measured on the per-thread CPU clock (see [`mod@self`]'s
//! private `timer` module), so charged durations exclude scheduler
//! out-time and stay close to the dedicated-node times the makespan model
//! assumes even when threads exceed physical cores; residual cache and
//! memory-bandwidth contention remains as measurement noise.

pub mod checkpoint;
pub mod cluster;
pub mod engine;
pub mod fault;
pub mod sampler;
pub mod stats;
pub mod store;
mod timer;

pub use checkpoint::{CheckpointSession, StageRecord};
pub use cluster::{default_thread_budget, Cluster};
pub use engine::{Entry, MapInput, MapReduceJob, Mapper, Partitioner, Reducer, TaskCtx};
pub use fault::{ChaosSpec, Fault, FaultPlan, RecoveryAction, RetryPolicy};
pub use sampler::RangePartitioner;
pub use stats::{JobStats, NetModel, RecoveryStats};

/// The phase of a MapReduce task, used in fault injection and error
/// context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskPhase {
    Map,
    Reduce,
}

impl std::fmt::Display for TaskPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskPhase::Map => write!(f, "map"),
            TaskPhase::Reduce => write!(f, "reduce"),
        }
    }
}

/// Error type for cluster operations. Structured variants keep the
/// failing job/node/task context so the exec layer can report *which*
/// task died instead of a flattened message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// Free-form engine or cluster error.
    Msg(String),
    /// Wire/codec failure; the codec error is retained as the
    /// [`std::error::Error::source`].
    Codec(papar_record::CodecError),
    /// A task kept failing until its retry budget was exhausted; the last
    /// attempt's error is retained as the source.
    TaskAborted {
        job: String,
        node: usize,
        phase: TaskPhase,
        attempts: u32,
        source: Box<MrError>,
    },
    /// A dataset fragment was lost (node crash) and no live replica could
    /// restore it.
    DataLoss {
        dataset: String,
        node: usize,
        detail: String,
    },
    /// A shuffle wire-format counter (`reducer` or `seq`) exceeded the
    /// format's 32-bit range. Before this variant the encoder truncated
    /// silently, corrupting shuffles past 2^32 pairs per mapper.
    WireOverflow {
        /// Which counter overflowed.
        field: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A partitioner assigned a key to a reducer outside
    /// `0..num_reducers`. Before this variant the engine silently
    /// clamped the id to the last reducer, so a buggy distribute policy
    /// skewed the output instead of failing.
    PartitionOutOfRange {
        /// The out-of-range reducer id the partitioner produced (as the
        /// raw key value for identity-style partitioners, so negative
        /// ids report faithfully).
        id: i64,
        /// The job's reducer count.
        num_reducers: usize,
    },
    /// The same fault kind appeared more than once in a `--faults` spec.
    /// Before this variant the counts silently summed, so
    /// `crash=1,crash=2` injected three crashes — neither entry's intent
    /// survives that merge, so the spec is rejected instead.
    DuplicateFaultKind {
        /// The repeated kind (`crash`, `drop`, `corrupt` or `straggler`).
        kind: String,
    },
    /// A task's retry budget ran out while injected faults kept firing.
    /// Carried as the `source` of [`MrError::TaskAborted`] so the abort
    /// reports what recovery was attempted — not just that it failed.
    RetriesExhausted {
        /// Executions performed (original plus retries).
        attempts: u32,
        /// The worker's recovery accounting at the moment it gave up.
        stats: Box<crate::stats::RecoveryStats>,
    },
    /// A checkpoint file or manifest failed its FNV-1a verification (or
    /// was torn mid-write); the offending data was renamed aside and the
    /// affected stages will be recomputed.
    CheckpointCorrupt {
        /// Path of the quarantined file.
        path: String,
        /// What the verifier saw.
        detail: String,
    },
    /// A checkpoint's plan/input/config fingerprint does not match this
    /// run, so `--resume` refuses rather than producing wrong bytes.
    ResumeMismatch {
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint stored in the checkpoint manifest.
        found: u64,
    },
    /// The `PAPAR_THREADS` environment variable is set but is not a
    /// positive integer. Before this variant the value was silently
    /// ignored in favor of the host's parallelism — tolerable for one
    /// `papar run`, but a resident daemon would mis-size every request
    /// forever with no signal — so the budget is rejected at startup.
    BadThreadBudget {
        /// The offending `PAPAR_THREADS` value, verbatim.
        value: String,
    },
}

impl MrError {
    /// Free-form error constructor (the pre-enum `MrError(msg)` shape).
    pub fn msg(m: impl Into<String>) -> Self {
        MrError::Msg(m.into())
    }
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::Msg(m) => write!(f, "mapreduce error: {m}"),
            MrError::Codec(e) => write!(f, "mapreduce error: {e}"),
            MrError::TaskAborted {
                job,
                node,
                phase,
                attempts,
                source,
            } => write!(
                f,
                "job '{job}': {phase} task on node {node} aborted after {attempts} attempt(s): {source}"
            ),
            MrError::DataLoss {
                dataset,
                node,
                detail,
            } => write!(
                f,
                "dataset '{dataset}' lost on node {node} with no live replica: {detail}"
            ),
            MrError::WireOverflow { field, value } => write!(
                f,
                "shuffle {field} {value} exceeds the wire format's u32 range"
            ),
            MrError::PartitionOutOfRange { id, num_reducers } => write!(
                f,
                "partitioner assigned reducer {id}, outside 0..{num_reducers}"
            ),
            MrError::DuplicateFaultKind { kind } => write!(
                f,
                "fault kind '{kind}' appears more than once in the spec; \
                 give each kind a single count"
            ),
            MrError::RetriesExhausted { attempts, stats } => write!(
                f,
                "retry budget exhausted after {attempts} attempt(s): {} fault(s) fired, \
                 {} task retr{} ({:?} re-executed, {:?} backoff), {} B restored from replicas",
                stats.faults_injected,
                stats.tasks_retried,
                if stats.tasks_retried == 1 { "y" } else { "ies" },
                stats.reexec_task_time,
                stats.backoff_time,
                stats.restore_bytes,
            ),
            MrError::CheckpointCorrupt { path, detail } => write!(
                f,
                "checkpoint '{path}' is corrupt and was quarantined: {detail}"
            ),
            MrError::ResumeMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this run's \
                 fingerprint {expected:#018x} (plan, input, seed or config changed); \
                 refusing to resume"
            ),
            MrError::BadThreadBudget { value } => write!(
                f,
                "PAPAR_THREADS wants a positive integer, got '{value}'; \
                 unset it to use the host's parallelism"
            ),
        }
    }
}

impl std::error::Error for MrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrError::Codec(e) => Some(e),
            MrError::TaskAborted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<papar_record::CodecError> for MrError {
    fn from(e: papar_record::CodecError) -> Self {
        MrError::Codec(e)
    }
}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, MrError>;

#[cfg(test)]
mod error_tests {
    use super::{MrError, TaskPhase};
    use std::error::Error;

    #[test]
    fn source_chains_through_task_aborted() {
        let codec = papar_record::CodecError("truncated frame".into());
        let e = MrError::TaskAborted {
            job: "sort".into(),
            node: 3,
            phase: TaskPhase::Reduce,
            attempts: 2,
            source: Box::new(MrError::Codec(codec.clone())),
        };
        assert!(e.to_string().contains("reduce task on node 3"));
        let src = e.source().expect("task abort chains its cause");
        assert!(src.to_string().contains("truncated frame"));
        let inner = src.source().expect("codec error is the root cause");
        assert_eq!(inner.to_string(), codec.to_string());
    }

    #[test]
    fn msg_display_matches_legacy_format() {
        assert_eq!(MrError::msg("boom").to_string(), "mapreduce error: boom");
    }

    #[test]
    fn retries_exhausted_reports_the_recovery_ledger() {
        let stats = crate::stats::RecoveryStats {
            faults_injected: 3,
            tasks_retried: 2,
            restore_bytes: 512,
            ..Default::default()
        };
        let e = MrError::TaskAborted {
            job: "distr".into(),
            node: 1,
            phase: TaskPhase::Map,
            attempts: 3,
            source: Box::new(MrError::RetriesExhausted {
                attempts: 3,
                stats: Box::new(stats),
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("aborted after 3 attempt(s)"), "{msg}");
        assert!(msg.contains("3 fault(s) fired"), "{msg}");
        assert!(msg.contains("2 task retries"), "{msg}");
        assert!(msg.contains("512 B restored"), "{msg}");
    }

    #[test]
    fn checkpoint_errors_name_the_path_and_fingerprints() {
        let e = MrError::CheckpointCorrupt {
            path: "/run/frag-0000.bin".into(),
            detail: "frame checksum mismatch".into(),
        };
        assert!(e.to_string().contains("quarantined"));
        assert!(e.to_string().contains("/run/frag-0000.bin"));
        let e = MrError::ResumeMismatch {
            expected: 0xAB,
            found: 0xCD,
        };
        assert!(e.to_string().contains("0x00000000000000cd"));
        assert!(e.to_string().contains("refusing to resume"));
    }
}
