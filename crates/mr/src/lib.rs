//! A simulated message-passing cluster and MapReduce engine — the MR-MPI
//! substitute the PaPar framework executes on.
//!
//! The paper runs PaPar on MR-MPI (MapReduce over MPI) on a 16-node
//! InfiniBand cluster. This crate reproduces the *structure* of that stack
//! on a single machine:
//!
//! * [`cluster::Cluster`] — `N` simulated nodes, each with a private
//!   [`store::DataStore`] of named datasets (the stand-in for HDFS paths),
//!   plus an all-to-all [`cluster::Cluster::exchange`] primitive that moves
//!   serialized byte buffers between nodes (the `MPI_Isend`/`Irecv`/`Wait`
//!   analog) while accounting every byte.
//! * [`engine`] — MapReduce jobs: a map phase over each node's local data,
//!   a shuffle keyed by a user partitioner, and a reduce phase, with
//!   deterministic ordering guarantees.
//! * [`sampler`] — distributed key sampling for balanced reduce ranges
//!   (paper Section III-D, "Data Sampling").
//! * [`stats`] — per-job timing under a *virtual clock*: node tasks execute
//!   sequentially and each node is charged its measured compute time; the
//!   job's simulated makespan is `max(map) + comm + max(reduce)` (BSP
//!   barriers, like MapReduce), with communication time from a configurable
//!   [`stats::NetModel`].
//!
//! ## Why a virtual clock
//!
//! Running node tasks on real threads would make per-node times meaningless
//! whenever the host has fewer cores than simulated nodes (a 16-node
//! strong-scaling sweep on a laptop). Sequential execution with per-node
//! timing is deterministic, noise-free, and preserves exactly what the
//! paper's scalability figures measure: the critical-path node time plus
//! communication volume.

pub mod cluster;
pub mod engine;
pub mod sampler;
pub mod stats;
pub mod store;

pub use cluster::Cluster;
pub use engine::{Entry, MapInput, MapReduceJob, Mapper, Partitioner, Reducer, TaskCtx};
pub use sampler::RangePartitioner;
pub use stats::{JobStats, NetModel};

/// Error type for cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrError(pub String);

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mapreduce error: {}", self.0)
    }
}

impl std::error::Error for MrError {}

impl From<papar_record::CodecError> for MrError {
    fn from(e: papar_record::CodecError) -> Self {
        MrError(e.to_string())
    }
}

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, MrError>;
