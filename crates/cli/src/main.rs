//! `papar` binary: thin shell around [`papar_cli::run`].

fn main() {
    let spec = match papar_cli::parse_args(std::env::args().skip(1)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run(&spec) {
        Ok(summary) => {
            println!("read {} records", summary.records_in);
            for (id, time, bytes) in &summary.jobs {
                println!("job '{id}': {time:?} simulated, {bytes} bytes shuffled");
            }
            println!("total simulated partitioning time: {:?}", summary.total_sim);
            if summary.faults_injected > 0 || !summary.recovery.is_zero() {
                println!(
                    "recovery: {} fault(s) injected, {} task(s) re-executed ({:?} redone compute, {:?} backoff, {} B replica/restore/retransmit traffic)",
                    summary.faults_injected,
                    summary.recovery.tasks_retried,
                    summary.recovery.reexec_task_time,
                    summary.recovery.backoff_time,
                    summary.recovery.total_bytes(),
                );
                for line in &summary.recovery_log {
                    println!("  {line}");
                }
            }
            println!("wrote {} partitions:", summary.files.len());
            for f in &summary.files {
                println!("  {}", f.display());
            }
        }
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(1);
        }
    }
}
