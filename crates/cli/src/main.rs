//! `papar` binary: thin shell around [`papar_cli::run`],
//! [`papar_cli::run_check`], [`papar_cli::run_plan`], and the daemon
//! surface ([`papar_cli::run_serve`] / [`papar_cli::run_submit`] /
//! [`papar_cli::run_status`]).
//!
//! `papar check ...` analyzes configurations without touching data;
//! `papar plan ...` shows the physical plan a run would execute;
//! `papar run ...` (or bare `papar ...`, kept for compatibility) executes
//! the workflow, refusing to start when the same analysis finds errors;
//! `papar serve ...` keeps plans, datasets, and the cluster resident,
//! with `papar submit ...` / `papar status ...` as its clients.

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("check") => {
            argv.next();
            check_main(argv);
        }
        Some("plan") => {
            argv.next();
            plan_main(argv);
        }
        Some("run") => {
            argv.next();
            run_main(argv);
        }
        Some("serve") => {
            argv.next();
            serve_main(argv);
        }
        Some("submit") => {
            argv.next();
            submit_main(argv);
        }
        Some("status") => {
            argv.next();
            status_main(argv);
        }
        _ => run_main(argv),
    }
}

fn serve_main(argv: impl Iterator<Item = String>) {
    let spec = match papar_cli::parse_serve_args(argv) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = papar_cli::run_serve(&spec) {
        eprintln!("papar: {e}");
        std::process::exit(1);
    }
}

fn submit_main(argv: impl Iterator<Item = String>) {
    let spec = match papar_cli::parse_submit_args(argv) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run_submit(&spec) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(1);
        }
    }
}

fn status_main(argv: impl Iterator<Item = String>) {
    let spec = match papar_cli::parse_status_args(argv) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run_status(&spec) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(1);
        }
    }
}

fn plan_main(argv: impl Iterator<Item = String>) {
    let spec = match papar_cli::parse_plan_args(argv) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run_plan(&spec) {
        Ok(report) => println!("{}", report.output),
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(1);
        }
    }
}

fn check_main(argv: impl Iterator<Item = String>) {
    let spec = match papar_cli::parse_check_args(argv) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run_check(&spec) {
        Ok(report) => {
            println!("{}", report.output);
            std::process::exit(if report.errors > 0 { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(2);
        }
    }
}

fn run_main(argv: impl Iterator<Item = String>) {
    let spec = match papar_cli::parse_args(argv) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run(&spec) {
        Ok(summary) => {
            for w in &summary.check_warnings {
                eprintln!("papar: {w}");
            }
            for ev in &summary.checkpoint_events {
                eprintln!("papar: {ev}");
            }
            println!("read {} records", summary.records_in);
            if let Some(rationale) = &summary.rationale {
                print!("{rationale}");
            }
            for note in &summary.notes {
                println!("papar: {note}");
            }
            if summary.stages_resumed > 0 {
                println!(
                    "resumed from checkpoint: {} stage(s) restored, not re-executed",
                    summary.stages_resumed
                );
            }
            for (id, time, bytes) in &summary.jobs {
                println!("job '{id}': {time:?} simulated, {bytes} bytes shuffled");
            }
            println!("total simulated partitioning time: {:?}", summary.total_sim);
            if summary.faults_injected > 0 || !summary.recovery.is_zero() {
                println!(
                    "recovery: {} fault(s) injected, {} task(s) re-executed ({:?} redone compute, {:?} backoff, {} B replica/restore/retransmit traffic)",
                    summary.faults_injected,
                    summary.recovery.tasks_retried,
                    summary.recovery.reexec_task_time,
                    summary.recovery.backoff_time,
                    summary.recovery.total_bytes(),
                );
                for line in &summary.recovery_log {
                    println!("  {line}");
                }
            }
            if let Some(profile) = &summary.profile {
                println!("{profile}");
            }
            if let Some(path) = &summary.trace_file {
                println!(
                    "trace written to {} (open in chrome://tracing or Perfetto)",
                    path.display()
                );
            }
            println!("wrote {} partitions:", summary.files.len());
            for f in &summary.files {
                println!("  {}", f.display());
            }
        }
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(1);
        }
    }
}
