//! `papar` binary: thin shell around [`papar_cli::run`].

fn main() {
    let spec = match papar_cli::parse_args(std::env::args().skip(1)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match papar_cli::run(&spec) {
        Ok(summary) => {
            println!("read {} records", summary.records_in);
            for (id, time, bytes) in &summary.jobs {
                println!("job '{id}': {time:?} simulated, {bytes} bytes shuffled");
            }
            println!("total simulated partitioning time: {:?}", summary.total_sim);
            println!("wrote {} partitions:", summary.files.len());
            for f in &summary.files {
                println!("  {}", f.display());
            }
        }
        Err(e) => {
            eprintln!("papar: {e}");
            std::process::exit(1);
        }
    }
}
