//! The `papar` command-line tool: run a PaPar partitioning workflow over
//! real files on disk.
//!
//! This is the deployment surface a downstream user adopts: point the tool
//! at the two configuration documents, the input file, and an output
//! directory, and it parses, plans, executes on the simulated cluster, and
//! writes one output file per partition in the input's format:
//!
//! ```sh
//! papar --input-config blast_db.xml --workflow partition.xml \
//!       --data env_nr.db --out partitions/ --nodes 16 \
//!       --arg num_partitions=32
//! ```
//!
//! The library half (this module) is fully testable without spawning the
//! binary; `main.rs` is a thin argument-parsing shell around [`run`].

use papar_config::input::InputFormat;
use papar_config::{InputConfig, WorkflowConfig};
use papar_core::exec::{ExecOptions, WorkflowRunner};
use papar_core::plan::Planner;
use papar_mr::{ChaosSpec, Cluster, RetryPolicy};
use papar_record::batch::{Batch, Dataset};
use papar_record::Schema;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Everything `papar run` needs.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Path to the InputData configuration document.
    pub input_config: PathBuf,
    /// Path to the Workflow configuration document.
    pub workflow: PathBuf,
    /// Path to the input data file.
    pub data: PathBuf,
    /// Directory to write the partition files into (created if missing).
    pub out_dir: PathBuf,
    /// Simulated cluster size.
    pub nodes: usize,
    /// Launch-time workflow arguments (`key=value` pairs). The workflow's
    /// input-path argument is bound to the data file's path automatically
    /// when not given.
    pub args: HashMap<String, String>,
    /// For binary inputs whose record region is followed by payload (e.g. a
    /// full muBLASTP database file): read exactly this many records.
    /// `None` reads the longest whole-record suffix-free prefix.
    pub records: Option<usize>,
    /// Fault spec (`crash=1,drop=2,...`) realized into a seeded schedule;
    /// `None` runs fault-free.
    pub faults: Option<String>,
    /// Seed for the fault schedule (same seed, same faults).
    pub fault_seed: u64,
    /// Replicas kept per materialized fragment (0 disables checkpointing;
    /// crashes then lose data unrecoverably).
    pub replication: usize,
    /// Executions allowed per task before the job aborts.
    pub max_retries: u32,
    /// OS threads for the engine's node tasks (`None` → `PAPAR_THREADS` or
    /// the host's available parallelism). Output bytes are identical for
    /// every value; only wall-clock time changes.
    pub threads: Option<usize>,
    /// Disable physical-plan fusion rewrites (`--no-fuse`): every logical
    /// job runs as its own MR job. Output bytes are identical either way;
    /// only job counts and shuffle traffic change.
    pub no_fuse: bool,
    /// Disable the engine's zero-copy reduce path (`--no-zerocopy`):
    /// shuffled pairs are decoded into owned values before sorting, the
    /// pre-optimization baseline. Output bytes are identical either way;
    /// only staged bytes and allocations change.
    pub no_zerocopy: bool,
    /// Print a per-phase virtual-time breakdown after the run.
    pub profile: bool,
    /// Write a Chrome trace-event JSON file of the run's span tree
    /// (loadable in chrome://tracing or Perfetto).
    pub trace_out: Option<PathBuf>,
    /// Persist per-stage progress into this run directory
    /// (`--checkpoint`); with [`RunSpec::resume`] set, completed stages
    /// are restored from it instead of re-executed.
    pub checkpoint: Option<PathBuf>,
    /// Resume from [`RunSpec::checkpoint`]'s manifest (`--resume`).
    pub resume: bool,
    /// Run the cost-based adaptive planner (`--adaptive`): a sampling
    /// pre-pass over the input feeds a candidate enumeration whose
    /// winner overrides the literal reducer/stride/boundary/fusion
    /// knobs. Output bytes are identical either way (only output-neutral
    /// knobs are tunable); `--no-adaptive` names the default explicitly.
    pub adaptive: bool,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            input_config: PathBuf::new(),
            workflow: PathBuf::new(),
            data: PathBuf::new(),
            out_dir: PathBuf::new(),
            nodes: 0,
            args: HashMap::new(),
            records: None,
            faults: None,
            fault_seed: 0,
            replication: 0,
            // Matches the engine's default retry policy; a derived zero
            // would clamp every task to a single attempt.
            max_retries: 3,
            threads: None,
            no_fuse: false,
            no_zerocopy: false,
            profile: false,
            trace_out: None,
            checkpoint: None,
            resume: false,
            adaptive: false,
        }
    }
}

/// A summary of a completed run, for printing.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Records read from the input file.
    pub records_in: usize,
    /// Partition files written, in partition order.
    pub files: Vec<PathBuf>,
    /// Per-job lines: `(job id, simulated time, shuffled bytes)`.
    pub jobs: Vec<(String, std::time::Duration, u64)>,
    /// Total simulated partitioning time.
    pub total_sim: std::time::Duration,
    /// Faults that fired during the run.
    pub faults_injected: u32,
    /// Workflow-wide recovery accounting.
    pub recovery: papar_mr::RecoveryStats,
    /// Rendered fault/recovery log lines, in order.
    pub recovery_log: Vec<String>,
    /// Warning-severity diagnostics from the pre-run static analysis
    /// (error-severity ones refuse the run instead).
    pub check_warnings: Vec<String>,
    /// Rendered per-phase breakdown table (present with `--profile`).
    pub profile: Option<String>,
    /// The Chrome trace-event file written (present with `--trace`).
    pub trace_file: Option<PathBuf>,
    /// Stages restored from the checkpoint instead of executed (0 unless
    /// `--resume` skipped work).
    pub stages_resumed: usize,
    /// Corrupt or torn checkpoint data found while resuming, already
    /// quarantined and recomputed.
    pub checkpoint_events: Vec<String>,
    /// Rendered adaptive-planner rationale (present with `--adaptive`).
    pub rationale: Option<String>,
    /// Rendered engine notes: collapsed reducer counts, post-run
    /// re-balance hints.
    pub notes: Vec<String>,
}

/// CLI error: a message for the user (exit code 1).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse one `--arg key=value` pair into the argument map, refusing
/// duplicates. Workflow arguments bind exactly once; before this check a
/// repeated `--arg` silently kept the last value, so a typo'd sweep
/// (`--arg num_partitions=4 ... --arg num_partitions=8`) ran with a
/// surprise binding instead of an error naming both values.
fn insert_arg(args: &mut HashMap<String, String>, kv: &str) -> Result<(), CliError> {
    let (k, v) = kv
        .split_once('=')
        .ok_or_else(|| fail(format!("--arg wants key=value, got '{kv}'")))?;
    if let Some(prev) = args.get(k) {
        return Err(fail(format!(
            "--arg '{k}' given twice: '{prev}' then '{v}' (each workflow argument \
             binds exactly once)"
        )));
    }
    args.insert(k.to_string(), v.to_string());
    Ok(())
}

/// Execute a run spec end-to-end.
pub fn run(spec: &RunSpec) -> Result<RunSummary, CliError> {
    let input_cfg_text = std::fs::read_to_string(&spec.input_config)
        .map_err(|e| fail(format!("cannot read {}: {e}", spec.input_config.display())))?;
    let input_cfg = InputConfig::parse_str(&input_cfg_text)
        .map_err(|e| fail(format!("{}: {e}", spec.input_config.display())))?;
    let workflow_text = std::fs::read_to_string(&spec.workflow)
        .map_err(|e| fail(format!("cannot read {}: {e}", spec.workflow.display())))?;
    let workflow = WorkflowConfig::parse_str(&workflow_text)
        .map_err(|e| fail(format!("{}: {e}", spec.workflow.display())))?;

    // Bind arguments: any hdfs-typed argument bound to the data file path
    // becomes the external input; default the conventional names.
    let mut args = spec.args.clone();
    let data_path = spec.data.display().to_string();
    for name in ["input_path", "input_file"] {
        if workflow.argument(name).is_some() && !args.contains_key(name) {
            args.insert(name.to_string(), data_path.clone());
        }
    }
    for name in ["output_path"] {
        if workflow.argument(name).is_some() && !args.contains_key(name) {
            args.insert(name.to_string(), spec.out_dir.display().to_string());
        }
    }

    let schema = Arc::new(Schema::from_input_config(&input_cfg));
    let records = read_data_file(&input_cfg, &schema, &spec.data, spec.records)?;
    let records_in = records.len();

    // Static analysis gate: refuse to start the cluster while any
    // error-severity diagnostic stands. Warnings ride along on the summary.
    let ctx = papar_check::CheckContext {
        args: args.clone(),
        nodes: Some(spec.nodes),
        replication: Some(spec.replication),
        records: Some(records_in),
        ..Default::default()
    };
    let analysis = papar_check::analyze(&workflow, std::slice::from_ref(&input_cfg), &ctx);
    if analysis.has_errors() {
        let rendered: String = analysis
            .errors()
            .iter()
            .map(|d| format!("  {d}\n"))
            .collect();
        return Err(fail(format!(
            "{} rejected by static analysis:\n{rendered}(`papar check` re-runs \
             this analysis standalone)",
            spec.workflow.display()
        )));
    }
    let check_warnings: Vec<String> = analysis.diagnostics.iter().map(|d| d.to_string()).collect();

    let planner = Planner::new(workflow, vec![input_cfg.clone()]);
    let plan = planner.bind(&args).map_err(|e| fail(e.to_string()))?;
    // The analyzer and the planner infer the same metadata independently;
    // a divergence (P099) is a framework bug and also refuses the run.
    let divergences = papar_check::verify_plan(&analysis, &plan);
    if !divergences.is_empty() {
        return Err(fail(format!(
            "plan-invariant verification failed:\n{}",
            papar_check::render_text(&divergences)
        )));
    }
    if plan.external_inputs.len() != 1 {
        return Err(fail(format!(
            "the workflow expects {} external inputs; the CLI provides exactly one (--data)",
            plan.external_inputs.len()
        )));
    }
    let input_name = plan.external_inputs[0].0.clone();
    let num_jobs = plan.jobs.len();

    let exec_options = ExecOptions {
        threads: spec.threads,
        trace: spec.profile || spec.trace_out.is_some(),
        fuse: !spec.no_fuse,
        zerocopy: !spec.no_zerocopy,
        adaptive: spec.adaptive,
        ..ExecOptions::default()
    };
    // Adaptive planning: sample the loaded input, enumerate and cost
    // candidate knob settings, and hand the winning decision to the
    // runner (the literal configured knobs become overridable defaults).
    let input_batch = Batch::Flat(records);
    let decision = if spec.adaptive {
        let stats = papar_core::stats::collect_for_plan(
            &plan,
            |name| (name == input_name).then_some(&input_batch),
            exec_options.sample_stride,
        )
        .map_err(|e| fail(e.to_string()))?;
        Some(papar_core::adaptive::choose(
            &plan,
            spec.nodes,
            &exec_options,
            stats.as_ref(),
        ))
    } else {
        None
    };

    // The physical plan the runner will execute must pass the same gate.
    let toggles = decision
        .as_ref()
        .map(|d| d.knobs().fuse)
        .unwrap_or_else(|| papar_core::physplan::FuseToggles::from_flag(!spec.no_fuse));
    let phys = papar_core::physplan::lower_with(&plan, spec.nodes, None, toggles);
    let divergences = papar_check::verify_physical_plan(&plan, &phys, spec.nodes, None);
    if !divergences.is_empty() {
        return Err(fail(format!(
            "physical-plan verification failed:\n{}",
            papar_check::render_text(&divergences)
        )));
    }
    let mut runner = WorkflowRunner::with_options(plan, exec_options);
    if let Some(d) = decision.clone() {
        runner = runner.with_decision(d);
    }
    if let Some(dir) = &spec.checkpoint {
        // Salt the resume fingerprint with everything byte-affecting the
        // runner cannot see: the fault schedule and the recovery knobs.
        let salt = format!(
            "faults={:?} seed={} replication={} max_retries={}",
            spec.faults, spec.fault_seed, spec.replication, spec.max_retries
        );
        runner = runner.with_checkpoint(
            dir,
            spec.resume,
            papar_record::wire::checksum(salt.as_bytes()),
        );
    }
    let mut cluster = Cluster::try_new(spec.nodes)
        .map_err(|e| fail(e.to_string()))?
        .with_replication(spec.replication)
        .with_retry(RetryPolicy {
            max_attempts: spec.max_retries.max(1),
            ..RetryPolicy::default()
        });
    if let Some(fault_spec) = &spec.faults {
        let chaos = ChaosSpec::parse(fault_spec).map_err(|e| fail(e.to_string()))?;
        cluster = cluster.with_fault_plan(chaos.realize(spec.fault_seed, spec.nodes, num_jobs));
    }
    runner
        .scatter_input(
            &mut cluster,
            &input_name,
            Dataset::new(schema.clone(), input_batch),
        )
        .map_err(|e| fail(e.to_string()))?;
    let report = runner.run(&mut cluster).map_err(|e| match e {
        papar_core::error::CoreError::Mr(papar_mr::MrError::ResumeMismatch { .. }) => {
            fail(format!(
                "error[P020]: {e}\n(the checkpoint was taken by a run with a different \
                 plan, input, fault seed or configuration; re-run with --checkpoint \
                 to start it over)"
            ))
        }
        e => fail(e.to_string()),
    })?;

    // Render/export the span tree before the partitions are written, so a
    // disk-full failure below still leaves the trace on disk for debugging.
    let mut profile = None;
    let mut trace_file = None;
    if let Some(trace) = &report.trace {
        if spec.profile {
            let mut rendered = papar_trace::render_profile(trace);
            // Bound-vs-observed columns: re-run the static interpretation
            // over the exact input count and line its intervals up with
            // the traced counters (debug builds additionally assert
            // containment after every stage).
            let phys = papar_core::physplan::lower_with(runner.plan(), spec.nodes, None, toggles);
            let mut opts = papar_core::bounds::BoundsOptions {
                num_nodes: spec.nodes,
                default_reducers: None,
                sources: Default::default(),
                reducer_overrides: decision
                    .as_ref()
                    .map(|d| d.knobs().sort_reducers.clone())
                    .unwrap_or_default(),
            };
            for (name, _) in &runner.plan().external_inputs {
                opts.sources.insert(
                    name.clone(),
                    papar_core::bounds::SourceBounds::exact(records_in as u64),
                );
            }
            let bounds = papar_core::bounds::compute(runner.plan(), &phys, &opts);
            let static_bounds: Vec<papar_trace::StaticBound> = bounds
                .stages
                .iter()
                .map(|s| papar_trace::StaticBound {
                    name: s.id.clone(),
                    records_in: (s.records_in.lo, s.records_in.hi),
                    records_out: (s.records_out.lo, s.records_out.hi),
                    pairs: (s.pairs.lo, s.pairs.hi),
                    max_load: (s.max_load.lo, s.max_load.hi),
                })
                .collect();
            rendered.push_str(&papar_trace::render_bounds_check(trace, &static_bounds));
            // Predicted-vs-observed row of the adaptive cost model.
            if let Some(r) = &report.rationale {
                rendered.push('\n');
                rendered.push_str(&papar_trace::render_prediction_check(
                    trace,
                    &r.stats_job,
                    &papar_trace::Prediction {
                        cost_ns: r.predicted.cost_ns,
                        max_load: r.predicted.max_load,
                        shuffle_bytes: r.predicted.shuffle_bytes,
                    },
                ));
            }
            profile = Some(rendered);
        }
        if let Some(path) = &spec.trace_out {
            std::fs::write(path, papar_trace::to_chrome_json(trace))
                .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
            trace_file = Some(path.clone());
        }
    }

    // Write each output partition in the input's on-disk format.
    std::fs::create_dir_all(&spec.out_dir)
        .map_err(|e| fail(format!("cannot create {}: {e}", spec.out_dir.display())))?;
    let partitions = cluster
        .collect(&runner.plan().output_path)
        .map_err(|e| fail(e.to_string()))?;
    let mut files = Vec::with_capacity(partitions.len());
    for (i, part) in partitions.iter().enumerate() {
        let records = part.batch.clone().flatten();
        let path = spec.out_dir.join(match input_cfg.format {
            InputFormat::Binary => format!("partition_{i:04}.bin"),
            InputFormat::Text => format!("partition_{i:04}.txt"),
        });
        match input_cfg.format {
            InputFormat::Binary => {
                let bytes =
                    papar_record::codec::binary::write(&input_cfg, &part.schema, &records, None)
                        .map_err(|e| fail(e.to_string()))?;
                std::fs::write(&path, bytes)
                    .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
            }
            InputFormat::Text => {
                let text = papar_record::codec::text::write(&input_cfg, &part.schema, &records)
                    .map_err(|e| fail(e.to_string()))?;
                std::fs::write(&path, text)
                    .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
            }
        }
        files.push(path);
    }

    Ok(RunSummary {
        records_in,
        files,
        jobs: report
            .jobs
            .iter()
            .map(|j| (j.name.clone(), j.sim_time(), j.exchange.remote_bytes))
            .collect(),
        total_sim: report.total_sim_time(),
        faults_injected: report.faults_injected(),
        recovery: report.total_recovery(),
        recovery_log: report
            .recovery_events
            .iter()
            .map(|e| e.to_string())
            .collect(),
        check_warnings,
        profile,
        trace_file,
        stages_resumed: report.stages_resumed,
        checkpoint_events: report.checkpoint_events.clone(),
        rationale: report.rationale.as_ref().map(|r| r.render()),
        notes: report.notes.iter().map(|n| n.to_string()).collect(),
    })
}

/// Read the input data file per its configuration — delegated to the
/// loader the daemon uses ([`papar_serve::job::load_records`]), so
/// `papar run` and a served job can never diverge on how a file's
/// record region is bounded.
fn read_data_file(
    cfg: &InputConfig,
    schema: &Schema,
    path: &Path,
    records: Option<usize>,
) -> Result<Vec<papar_record::Record>, CliError> {
    papar_serve::job::load_records(cfg, schema, path, records).map_err(fail)
}

/// Everything `papar check` needs.
#[derive(Debug, Clone, Default)]
pub struct CheckSpec {
    /// Path to the Workflow configuration document.
    pub workflow: PathBuf,
    /// Paths to InputData configuration documents (any number, including
    /// zero — unresolvable formats are then diagnosed).
    pub input_configs: Vec<PathBuf>,
    /// Cluster size, when known (enables partition-count checks).
    pub nodes: Option<usize>,
    /// Replication factor, when known.
    pub replication: Option<usize>,
    /// Input record count, when known (enables `L_m^{km}` divisibility).
    pub records: Option<usize>,
    /// Launch arguments; the analysis is symbolic for any left unbound.
    pub args: HashMap<String, String>,
    /// Emit machine-readable JSON instead of one-per-line text.
    pub json: bool,
    /// Run the interval bounds analysis (`--bounds`): bind the plan with
    /// placeholder paths, lower it, propagate cardinality/volume/skew
    /// intervals, and print the per-stage table plus P021/W007/W008/W009.
    pub bounds: bool,
    /// Promote warning-severity diagnostics to errors (`--deny-warnings`):
    /// a warnings-only run then exits 1 instead of 0.
    pub deny_warnings: bool,
    /// `W008` threshold (`--skew-ratio`, default 4.0): worst-case
    /// busiest-partition load over the fair share.
    pub skew_ratio: Option<f64>,
    /// Declared upper bound on distinct values of any single input field
    /// (`--distinct-keys`); enables `P021`.
    pub distinct_keys: Option<u64>,
}

/// What `papar check` found, rendered and counted.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Rendered diagnostics (text or JSON per the spec).
    pub output: String,
    /// Error-severity count (non-zero → exit code 1).
    pub errors: usize,
    /// Warning-severity count.
    pub warnings: usize,
}

/// Run the static analyzer over configuration documents on disk.
pub fn run_check(spec: &CheckSpec) -> Result<CheckReport, CliError> {
    let workflow_xml = std::fs::read_to_string(&spec.workflow)
        .map_err(|e| fail(format!("cannot read {}: {e}", spec.workflow.display())))?;
    let mut input_texts: Vec<(String, String)> = Vec::new();
    for p in &spec.input_configs {
        let text = std::fs::read_to_string(p)
            .map_err(|e| fail(format!("cannot read {}: {e}", p.display())))?;
        let label = p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        input_texts.push((label, text));
    }
    let ctx = papar_check::CheckContext {
        args: spec.args.clone(),
        nodes: spec.nodes,
        replication: spec.replication,
        records: spec.records,
        ..Default::default()
    };
    let inputs: Vec<(&str, &str)> = input_texts
        .iter()
        .map(|(l, t)| (l.as_str(), t.as_str()))
        .collect();
    let mut analysis = papar_check::check_sources(&workflow_xml, &inputs, &ctx);

    // Cross-check the inference against the compiled plan whenever the
    // documents are clean enough to bind with the given arguments.
    let mut bounds_table = None;
    if !analysis.has_errors() {
        if let Ok(wf) = WorkflowConfig::parse_str(&workflow_xml) {
            let cfgs: Vec<InputConfig> = input_texts
                .iter()
                .filter_map(|(_, t)| InputConfig::parse_str(t).ok())
                .collect();
            // Path arguments bind to placeholders — neither the
            // cross-check nor the bounds analysis reads data.
            let mut args = spec.args.clone();
            for (name, placeholder) in [
                ("input_path", "/plan/input"),
                ("input_file", "/plan/input"),
                ("output_path", "/plan/output"),
            ] {
                if wf.argument(name).is_some() && !args.contains_key(name) {
                    args.insert(name.to_string(), placeholder.to_string());
                }
            }
            if let Ok(plan) = Planner::new(wf.clone(), cfgs).bind(&args) {
                let divergences = papar_check::verify_plan(&analysis, &plan);
                analysis.diagnostics.extend(divergences);
                if spec.bounds {
                    let nodes = spec.nodes.unwrap_or(4);
                    let phys = papar_core::physplan::lower(&plan, nodes, None, true);
                    let report = papar_check::analyze_bounds(
                        &wf,
                        &plan,
                        &phys,
                        &papar_check::BoundsConfig {
                            num_nodes: nodes,
                            default_reducers: None,
                            records: spec.records.map(|n| n as u64),
                            distinct_keys: spec.distinct_keys,
                            skew_ratio: spec.skew_ratio.unwrap_or(4.0),
                            reducer_overrides: Default::default(),
                        },
                    );
                    analysis.diagnostics.extend(report.diagnostics);
                    bounds_table = Some(report.table);
                }
            } else if spec.bounds {
                return Err(fail(
                    "--bounds needs the workflow to bind; pass the missing --arg values",
                ));
            }
        }
    }
    // `--deny-warnings` promotes every warning to an error, so a
    // warnings-only run exits 1 instead of 0. Codes stay W0xx: the finding
    // is the same, only the policy differs.
    if spec.deny_warnings {
        for d in &mut analysis.diagnostics {
            d.severity = papar_check::Severity::Error;
        }
    }

    let errors = analysis.errors().len();
    let warnings = analysis.diagnostics.len() - errors;
    let output = if spec.json {
        papar_check::json::to_json(&analysis.diagnostics)
    } else {
        let mut out = papar_check::render_text(&analysis.diagnostics);
        if let Some(table) = bounds_table {
            out.push_str(&table);
        }
        out.push_str(&format!(
            "{}: {errors} error(s), {warnings} warning(s)",
            spec.workflow.display()
        ));
        out
    };
    Ok(CheckReport {
        output,
        errors,
        warnings,
    })
}

/// Parse `papar check` arguments into a [`CheckSpec`].
pub fn parse_check_args<I: Iterator<Item = String>>(mut argv: I) -> Result<CheckSpec, CliError> {
    let mut spec = CheckSpec::default();
    let need = |flag: &str, it: &mut I| -> Result<String, CliError> {
        it.next()
            .ok_or_else(|| fail(format!("{flag} needs a value")))
    };
    let parse_usize = |flag: &str, v: String| -> Result<usize, CliError> {
        v.parse()
            .map_err(|_| fail(format!("{flag} wants a non-negative integer, got '{v}'")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--workflow" => spec.workflow = need("--workflow", &mut argv)?.into(),
            "--input-config" => spec
                .input_configs
                .push(need("--input-config", &mut argv)?.into()),
            "--nodes" => {
                spec.nodes = Some(parse_usize("--nodes", need("--nodes", &mut argv)?)?);
            }
            "--replication" => {
                spec.replication = Some(parse_usize(
                    "--replication",
                    need("--replication", &mut argv)?,
                )?);
            }
            "--records" => {
                spec.records = Some(parse_usize("--records", need("--records", &mut argv)?)?);
            }
            "--arg" => insert_arg(&mut spec.args, &need("--arg", &mut argv)?)?,
            "--format" => {
                let v = need("--format", &mut argv)?;
                spec.json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(fail(format!(
                            "--format wants 'text' or 'json', got '{other}'"
                        )))
                    }
                };
            }
            "--bounds" => spec.bounds = true,
            "--deny-warnings" => spec.deny_warnings = true,
            "--skew-ratio" => {
                let v = need("--skew-ratio", &mut argv)?;
                let r: f64 = v
                    .parse()
                    .map_err(|_| fail(format!("--skew-ratio wants a number, got '{v}'")))?;
                if !r.is_finite() || r < 1.0 {
                    return Err(fail(format!("--skew-ratio wants a number >= 1, got '{v}'")));
                }
                spec.skew_ratio = Some(r);
            }
            "--distinct-keys" => {
                let v = need("--distinct-keys", &mut argv)?;
                spec.distinct_keys = Some(v.parse().map_err(|_| {
                    fail(format!(
                        "--distinct-keys wants a non-negative integer, got '{v}'"
                    ))
                })?);
            }
            "-h" | "--help" => return Err(fail(CHECK_USAGE)),
            other => return Err(fail(format!("unknown flag '{other}'\n{CHECK_USAGE}"))),
        }
    }
    if spec.workflow.as_os_str().is_empty() {
        return Err(fail(format!("--workflow is required\n{CHECK_USAGE}")));
    }
    Ok(spec)
}

/// Usage text for `papar check`.
pub const CHECK_USAGE: &str = "\
usage: papar check --workflow <xml> [--input-config <xml>]...
                   [--nodes N] [--replication N] [--records N]
                   [--arg key=value]... [--format text|json]
                   [--bounds] [--distinct-keys N] [--skew-ratio R]
                   [--deny-warnings]

Statically analyzes the workflow without reading any data: dataflow over
$variable references, schema inference through every operator, distribution
legality, and determinism lints. Arguments left unbound are analyzed
symbolically. Exit code 0 when clean or warnings only, 1 when any
error-severity diagnostic is found, 2 on usage errors.

Bounds analysis (abstract interpretation over the physical plan):
  --bounds           propagate record/byte/distinct-key/max-load intervals
                     through every physical stage; prints a per-stage table
                     and enables P021/W007/W008/W009. Use --records N to make
                     source counts exact; unhinted sources stay [0, ?].
  --distinct-keys N  declared bound on distinct values of any input field
                     (needed for P021: reducers that can never receive a key)
  --skew-ratio R     W008 threshold: flag stages whose worst-case partition
                     load exceeds R times the fair share (default 4.0)
  --deny-warnings    promote warnings to errors: warnings-only runs exit 1";

/// Everything `papar plan` needs.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// Path to the Workflow configuration document.
    pub workflow: PathBuf,
    /// Paths to InputData configuration documents.
    pub input_configs: Vec<PathBuf>,
    /// Cluster size the plan is lowered for (the group→split fusion gate
    /// depends on it).
    pub nodes: usize,
    /// Launch arguments. Conventional path arguments (`input_path`,
    /// `input_file`, `output_path`) default to placeholders — planning
    /// never reads data, so any concrete string binds.
    pub args: HashMap<String, String>,
    /// Lower with fusion rewrites disabled.
    pub no_fuse: bool,
    /// Print the full logical→physical mapping instead of the one-line
    /// summary.
    pub explain: bool,
    /// Exact record count of every external input (`--records`); makes
    /// the `--explain` bound columns exact instead of `[0, ?]`.
    pub records: Option<u64>,
    /// Run the adaptive planner and print its rationale (`--adaptive`).
    /// With [`PlanSpec::data`] set, the real sampling pre-pass feeds it;
    /// without data it degenerates to weighing fusion toggles.
    pub adaptive: bool,
    /// Input data file to sample for `--adaptive` (`--data`); read with
    /// the first `--input-config`, never partitioned.
    pub data: Option<PathBuf>,
}

impl Default for PlanSpec {
    fn default() -> Self {
        PlanSpec {
            workflow: PathBuf::new(),
            input_configs: Vec::new(),
            nodes: 4,
            args: HashMap::new(),
            no_fuse: false,
            explain: false,
            records: None,
            adaptive: false,
            data: None,
        }
    }
}

/// What `papar plan` computed, rendered and counted.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Rendered plan: the full `--explain` mapping, or a one-line summary.
    pub output: String,
    /// Logical jobs in the bound workflow plan.
    pub logical_jobs: usize,
    /// Physical stages after lowering.
    pub stages: usize,
    /// Whether fusion rewrites were enabled.
    pub fused: bool,
}

/// Bind a workflow and lower it to a physical plan, without reading data.
pub fn run_plan(spec: &PlanSpec) -> Result<PlanReport, CliError> {
    let workflow_text = std::fs::read_to_string(&spec.workflow)
        .map_err(|e| fail(format!("cannot read {}: {e}", spec.workflow.display())))?;
    let workflow = WorkflowConfig::parse_str(&workflow_text)
        .map_err(|e| fail(format!("{}: {e}", spec.workflow.display())))?;
    let mut input_cfgs = Vec::new();
    for p in &spec.input_configs {
        let text = std::fs::read_to_string(p)
            .map_err(|e| fail(format!("cannot read {}: {e}", p.display())))?;
        input_cfgs.push(
            InputConfig::parse_str(&text).map_err(|e| fail(format!("{}: {e}", p.display())))?,
        );
    }

    // Planning never touches data, so conventional path arguments bind to
    // placeholders when the user does not care to provide them.
    let mut args = spec.args.clone();
    for (name, placeholder) in [
        ("input_path", "/plan/input"),
        ("input_file", "/plan/input"),
        ("output_path", "/plan/output"),
    ] {
        if workflow.argument(name).is_some() && !args.contains_key(name) {
            args.insert(name.to_string(), placeholder.to_string());
        }
    }

    let plan = Planner::new(workflow.clone(), input_cfgs.clone())
        .bind(&args)
        .map_err(|e| fail(e.to_string()))?;

    // Adaptive planning: sample the data file (when given) and run the
    // enumerate → cost → choose loop; the rationale prints after the
    // plan and the bound table reflects the chosen reducer counts.
    let decision = if spec.adaptive {
        let exec_options = ExecOptions {
            fuse: !spec.no_fuse,
            adaptive: true,
            ..ExecOptions::default()
        };
        let stats = match (&spec.data, input_cfgs.first()) {
            (Some(data), Some(cfg)) => {
                let schema = Arc::new(Schema::from_input_config(cfg));
                let records = read_data_file(cfg, &schema, data, None)?;
                let batch = Batch::Flat(records);
                papar_core::stats::collect_for_plan(
                    &plan,
                    |name| (plan.external_inputs.iter().any(|(n, _)| n == name))
                        .then_some(&batch),
                    exec_options.sample_stride,
                )
                .map_err(|e| fail(e.to_string()))?
            }
            _ => None,
        };
        Some(papar_core::adaptive::choose(
            &plan,
            spec.nodes,
            &exec_options,
            stats.as_ref(),
        ))
    } else {
        None
    };

    let toggles = decision
        .as_ref()
        .map(|d| d.knobs().fuse)
        .unwrap_or_else(|| papar_core::physplan::FuseToggles::from_flag(!spec.no_fuse));
    let phys = papar_core::physplan::lower_with(&plan, spec.nodes, None, toggles);
    let divergences = papar_check::verify_physical_plan(&plan, &phys, spec.nodes, None);
    if !divergences.is_empty() {
        return Err(fail(format!(
            "physical-plan verification failed:\n{}",
            papar_check::render_text(&divergences)
        )));
    }
    let mut output = if spec.explain {
        // The explain text itself is fingerprint-stable (checkpoint resume
        // hashes it); the bound table rides along after it.
        let mut out = papar_core::physplan::explain(&plan, &phys);
        let report = papar_check::analyze_bounds(
            &workflow,
            &plan,
            &phys,
            &papar_check::BoundsConfig {
                num_nodes: spec.nodes,
                default_reducers: None,
                records: spec.records,
                reducer_overrides: decision
                    .as_ref()
                    .map(|d| d.knobs().sort_reducers.clone())
                    .unwrap_or_default(),
                ..Default::default()
            },
        );
        out.push_str("\nstatic bounds (intervals admitted by the declared sources):\n");
        out.push_str(&report.table);
        out
    } else {
        format!(
            "workflow '{}': {} logical job(s) -> {} physical stage(s) ({})\n\
             (`papar plan --explain` prints the full logical→physical mapping)",
            plan.id,
            plan.jobs.len(),
            phys.stages.len(),
            if phys.fused { "fused" } else { "--no-fuse" },
        )
    };
    if let Some(d) = &decision {
        output.push('\n');
        output.push_str(&d.rationale.render());
    }
    Ok(PlanReport {
        output,
        logical_jobs: plan.jobs.len(),
        stages: phys.stages.len(),
        fused: phys.fused,
    })
}

/// Parse `papar plan` arguments into a [`PlanSpec`].
pub fn parse_plan_args<I: Iterator<Item = String>>(mut argv: I) -> Result<PlanSpec, CliError> {
    let mut spec = PlanSpec::default();
    let need = |flag: &str, it: &mut I| -> Result<String, CliError> {
        it.next()
            .ok_or_else(|| fail(format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--workflow" => spec.workflow = need("--workflow", &mut argv)?.into(),
            "--input-config" => spec
                .input_configs
                .push(need("--input-config", &mut argv)?.into()),
            "--nodes" => {
                let v = need("--nodes", &mut argv)?;
                spec.nodes = v
                    .parse()
                    .map_err(|_| fail(format!("--nodes wants a positive integer, got '{v}'")))?;
                if spec.nodes == 0 {
                    return Err(fail("--nodes wants a positive integer, got '0'"));
                }
            }
            "--arg" => insert_arg(&mut spec.args, &need("--arg", &mut argv)?)?,
            "--no-fuse" => spec.no_fuse = true,
            "--explain" => spec.explain = true,
            "--adaptive" => spec.adaptive = true,
            "--no-adaptive" => spec.adaptive = false,
            "--data" => spec.data = Some(need("--data", &mut argv)?.into()),
            "--records" => {
                let v = need("--records", &mut argv)?;
                spec.records = Some(v.parse().map_err(|_| {
                    fail(format!("--records wants a non-negative integer, got '{v}'"))
                })?);
            }
            "-h" | "--help" => return Err(fail(PLAN_USAGE)),
            other => return Err(fail(format!("unknown flag '{other}'\n{PLAN_USAGE}"))),
        }
    }
    if spec.workflow.as_os_str().is_empty() {
        return Err(fail(format!("--workflow is required\n{PLAN_USAGE}")));
    }
    Ok(spec)
}

/// Usage text for `papar plan`.
pub const PLAN_USAGE: &str = "\
usage: papar plan --workflow <xml> [--input-config <xml>]...
                  [--nodes N] [--arg key=value]... [--no-fuse] [--explain]
                  [--records N] [--adaptive [--data <file>]]

Binds the workflow and lowers it to the physical plan `papar run` would
execute, without reading any data. `--explain` prints every logical job and
every physical stage with its fusion and streaming annotations, followed by
the static bound table (record/pair/max-load intervals per stage; `--records
N` makes source counts exact). `--no-fuse` shows the unfused plan.
`--adaptive` runs the cost-based planner and prints its rationale — every
candidate considered, every rejection and its reason, and the winner's
predicted cost; give `--data <file>` to feed it the real sampling pre-pass
(otherwise it only weighs fusion toggles). Conventional path arguments
(input_path, input_file, output_path) default to placeholders. Exit code 0 on
success, 1 when binding or physical-plan verification fails, 2 on usage
errors.";

/// Parse command-line arguments into a [`RunSpec`].
pub fn parse_args<I: Iterator<Item = String>>(mut argv: I) -> Result<RunSpec, CliError> {
    let mut spec = RunSpec {
        nodes: 4,
        max_retries: 3,
        ..Default::default()
    };
    let need = |flag: &str, it: &mut I| -> Result<String, CliError> {
        it.next()
            .ok_or_else(|| fail(format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--input-config" => spec.input_config = need("--input-config", &mut argv)?.into(),
            "--workflow" => spec.workflow = need("--workflow", &mut argv)?.into(),
            "--data" => spec.data = need("--data", &mut argv)?.into(),
            "--out" => spec.out_dir = need("--out", &mut argv)?.into(),
            "--nodes" => {
                let v = need("--nodes", &mut argv)?;
                spec.nodes = v
                    .parse()
                    .map_err(|_| fail(format!("--nodes wants a positive integer, got '{v}'")))?;
                if spec.nodes == 0 {
                    return Err(fail("--nodes wants a positive integer, got '0'"));
                }
            }
            "--records" => {
                let v = need("--records", &mut argv)?;
                spec.records = Some(v.parse().map_err(|_| {
                    fail(format!("--records wants a non-negative integer, got '{v}'"))
                })?);
            }
            "--arg" => insert_arg(&mut spec.args, &need("--arg", &mut argv)?)?,
            "--faults" => {
                let v = need("--faults", &mut argv)?;
                // Validate now so the user hears about a typo before any
                // data is read.
                ChaosSpec::parse(&v).map_err(|e| fail(e.to_string()))?;
                spec.faults = Some(v);
            }
            "--fault-seed" => {
                let v = need("--fault-seed", &mut argv)?;
                spec.fault_seed = v
                    .parse()
                    .map_err(|_| fail(format!("--fault-seed wants an integer, got '{v}'")))?;
            }
            "--replication" => {
                let v = need("--replication", &mut argv)?;
                spec.replication = v
                    .parse()
                    .map_err(|_| fail(format!("--replication wants an integer, got '{v}'")))?;
            }
            "--max-retries" => {
                let v = need("--max-retries", &mut argv)?;
                spec.max_retries = v
                    .parse()
                    .map_err(|_| fail(format!("--max-retries wants an integer, got '{v}'")))?;
                if spec.max_retries == 0 {
                    return Err(fail("--max-retries wants a positive integer, got '0'"));
                }
            }
            "--threads" => {
                let v = need("--threads", &mut argv)?;
                let t: usize = v
                    .parse()
                    .map_err(|_| fail(format!("--threads wants a positive integer, got '{v}'")))?;
                if t == 0 {
                    return Err(fail("--threads wants a positive integer, got '0'"));
                }
                spec.threads = Some(t);
            }
            "--no-fuse" => spec.no_fuse = true,
            "--no-zerocopy" => spec.no_zerocopy = true,
            "--adaptive" => spec.adaptive = true,
            "--no-adaptive" => spec.adaptive = false,
            "--profile" => spec.profile = true,
            "--trace" => spec.trace_out = Some(need("--trace", &mut argv)?.into()),
            "--checkpoint" => {
                let dir: PathBuf = need("--checkpoint", &mut argv)?.into();
                if spec.checkpoint.as_ref().is_some_and(|d| *d != dir) {
                    return Err(fail("--checkpoint and --resume name different directories"));
                }
                spec.checkpoint = Some(dir);
            }
            "--resume" => {
                let dir: PathBuf = need("--resume", &mut argv)?.into();
                if spec.checkpoint.as_ref().is_some_and(|d| *d != dir) {
                    return Err(fail("--checkpoint and --resume name different directories"));
                }
                spec.checkpoint = Some(dir);
                spec.resume = true;
            }
            "-h" | "--help" => {
                return Err(fail(USAGE));
            }
            other => return Err(fail(format!("unknown flag '{other}'\n{USAGE}"))),
        }
    }
    for (flag, p) in [
        ("--input-config", &spec.input_config),
        ("--workflow", &spec.workflow),
        ("--data", &spec.data),
        ("--out", &spec.out_dir),
    ] {
        if p.as_os_str().is_empty() {
            return Err(fail(format!("{flag} is required\n{USAGE}")));
        }
    }
    Ok(spec)
}

/// Usage text.
pub const USAGE: &str = "\
usage: papar [run] --input-config <xml> --workflow <xml> --data <file> --out <dir>
             [--nodes N] [--records N] [--arg key=value]...
             [--faults SPEC] [--fault-seed N] [--replication N] [--max-retries N]
             [--threads N] [--no-fuse] [--no-zerocopy] [--adaptive] [--profile]
             [--trace <file>] [--checkpoint <dir> | --resume <dir>]
       papar check --workflow <xml> [options]   (see `papar check --help`)
       papar plan --workflow <xml> [options]    (see `papar plan --help`)

Runs the PaPar partitioning workflow described by the two configuration
documents over the data file, on an N-node simulated cluster, and writes
one file per partition into the output directory.

Fault injection (chaos testing the simulated cluster):
  --faults SPEC      inject faults, e.g. 'crash=1,drop=2,corrupt=1,straggler=1'
  --fault-seed N     seed for fault placement (same seed, same schedule; default 0)
  --replication N    replicas per fragment; crashes need N >= 1 to recover (default 0)
  --max-retries N    executions allowed per task before aborting (default 3)

Performance:
  --threads N        OS threads for node tasks; output bytes are identical for
                     every N (default: PAPAR_THREADS or available parallelism)
  --no-fuse          run every logical job as its own MR job instead of fusing
                     adjacent sort+distribute / group+split pairs; output bytes
                     are identical, only job counts and shuffle traffic change
                     (`papar plan --explain` shows what fusion would do)
  --no-zerocopy      decode shuffled pairs into owned values before the reduce
                     sort (the pre-optimization baseline) instead of sorting
                     borrowed views with packed key prefixes; output bytes are
                     identical, only staged bytes and allocations change
                     (compare with --profile's staged/allocs columns)
  --adaptive         run the cost-based adaptive planner: a sampling pre-pass
                     summarizes the input's key distribution, candidate plans
                     (reducer counts, sampling stride, range-vs-cyclic
                     boundaries, per-rewrite fusion) are priced with the cost
                     model under static bounds, and the cheapest admissible one
                     runs; the rationale is printed and output bytes stay
                     identical (only output-neutral knobs are tuned)
  --no-adaptive      keep the configured literal knobs (the default, named)

Observability:
  --profile          print a per-phase virtual-time breakdown (paper Fig. 13 style)
  --trace FILE       write a Chrome trace-event JSON span tree; open it in
                     chrome://tracing or https://ui.perfetto.dev. The file is
                     byte-identical for every --threads value.

Checkpointing (crash-consistent; resumed output is byte-identical to a cold run):
  --checkpoint DIR   durably publish each completed stage's output fragments and
                     stats into DIR (write-ahead manifest, fsync+rename commits)
  --resume DIR       validate DIR's manifest, skip its completed stages and
                     re-execute from the first incomplete one; refuses with
                     error[P020] when the plan/input/seed/config fingerprint
                     differs. Corrupt or torn data is quarantined (*.quarantine)
                     and recomputed, never silently reused.";

// ---------------------------------------------------------------------
// papar serve / submit / status: the resident daemon surface.
// ---------------------------------------------------------------------

/// Everything `papar serve` needs.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Where to listen: a Unix socket path, or `tcp:HOST:PORT`.
    pub socket: String,
    /// Pending-job admission limit (queued + running).
    pub queue_capacity: usize,
    /// Compiled plans kept resident.
    pub plan_cache: usize,
    /// Decoded input files kept resident.
    pub data_cache: usize,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            socket: String::new(),
            queue_capacity: 32,
            plan_cache: 16,
            data_cache: 8,
        }
    }
}

/// Parse `papar serve` arguments into a [`ServeSpec`].
pub fn parse_serve_args<I: Iterator<Item = String>>(mut argv: I) -> Result<ServeSpec, CliError> {
    let mut spec = ServeSpec::default();
    let need = |flag: &str, it: &mut I| -> Result<String, CliError> {
        it.next()
            .ok_or_else(|| fail(format!("{flag} needs a value")))
    };
    let parse_cap = |flag: &str, v: String| -> Result<usize, CliError> {
        let n: usize = v
            .parse()
            .map_err(|_| fail(format!("{flag} wants a positive integer, got '{v}'")))?;
        if n == 0 {
            return Err(fail(format!("{flag} wants a positive integer, got '0'")));
        }
        Ok(n)
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--socket" => spec.socket = need("--socket", &mut argv)?,
            "--queue" => {
                spec.queue_capacity = parse_cap("--queue", need("--queue", &mut argv)?)?;
            }
            "--plan-cache" => {
                spec.plan_cache = parse_cap("--plan-cache", need("--plan-cache", &mut argv)?)?;
            }
            "--data-cache" => {
                spec.data_cache = parse_cap("--data-cache", need("--data-cache", &mut argv)?)?;
            }
            "-h" | "--help" => return Err(fail(SERVE_USAGE)),
            other => return Err(fail(format!("unknown flag '{other}'\n{SERVE_USAGE}"))),
        }
    }
    if spec.socket.is_empty() {
        return Err(fail(format!("--socket is required\n{SERVE_USAGE}")));
    }
    Ok(spec)
}

/// Run the daemon until a `papar submit --shutdown` or SIGTERM/SIGINT,
/// then drain and exit. Startup validation (socket, `PAPAR_THREADS`)
/// fails here, before any request is accepted.
pub fn run_serve(spec: &ServeSpec) -> Result<(), CliError> {
    let server = papar_serve::Server::bind(papar_serve::ServeOptions {
        endpoint: papar_serve::Endpoint::parse(&spec.socket),
        queue_capacity: spec.queue_capacity,
        plan_cache: spec.plan_cache,
        data_cache: spec.data_cache,
        handle_signals: true,
    })
    .map_err(|e| fail(e.to_string()))?;
    eprintln!(
        "papar serve: listening on {} (engine threads: {}, queue capacity: {})",
        server.endpoint(),
        server.default_threads(),
        spec.queue_capacity,
    );
    server.run().map_err(|e| fail(e.to_string()))
}

/// Everything `papar submit` needs.
#[derive(Debug, Clone, Default)]
pub struct SubmitSpec {
    /// The daemon's socket (same syntax as `papar serve --socket`).
    pub socket: String,
    /// The job, with `papar run`'s flag names.
    pub job: papar_serve::JobSpec,
    /// Return immediately after admission instead of waiting for the
    /// result (`--detach`); poll with `papar status <job-id>`.
    pub detach: bool,
    /// Ask the daemon to drain its queue and exit (`--shutdown`).
    pub shutdown: bool,
}

/// Parse `papar submit` arguments into a [`SubmitSpec`].
pub fn parse_submit_args<I: Iterator<Item = String>>(mut argv: I) -> Result<SubmitSpec, CliError> {
    let mut spec = SubmitSpec {
        job: papar_serve::JobSpec {
            nodes: 4,
            ..papar_serve::JobSpec::default()
        },
        ..SubmitSpec::default()
    };
    let mut args: HashMap<String, String> = HashMap::new();
    let need = |flag: &str, it: &mut I| -> Result<String, CliError> {
        it.next()
            .ok_or_else(|| fail(format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--socket" => spec.socket = need("--socket", &mut argv)?,
            "--input-config" => spec.job.input_config = need("--input-config", &mut argv)?,
            "--workflow" => spec.job.workflow = need("--workflow", &mut argv)?,
            "--data" => spec.job.data = need("--data", &mut argv)?,
            "--out" => spec.job.out_dir = need("--out", &mut argv)?,
            "--nodes" => {
                let v = need("--nodes", &mut argv)?;
                spec.job.nodes = v
                    .parse()
                    .map_err(|_| fail(format!("--nodes wants a positive integer, got '{v}'")))?;
                if spec.job.nodes == 0 {
                    return Err(fail("--nodes wants a positive integer, got '0'"));
                }
            }
            "--records" => {
                let v = need("--records", &mut argv)?;
                spec.job.records = Some(v.parse().map_err(|_| {
                    fail(format!("--records wants a non-negative integer, got '{v}'"))
                })?);
            }
            "--arg" => insert_arg(&mut args, &need("--arg", &mut argv)?)?,
            "--threads" => {
                let v = need("--threads", &mut argv)?;
                let t: u32 = v
                    .parse()
                    .map_err(|_| fail(format!("--threads wants a positive integer, got '{v}'")))?;
                if t == 0 {
                    return Err(fail("--threads wants a positive integer, got '0'"));
                }
                spec.job.threads = Some(t);
            }
            "--no-fuse" => spec.job.no_fuse = true,
            "--no-zerocopy" => spec.job.no_zerocopy = true,
            "--adaptive" => spec.job.adaptive = true,
            "--no-adaptive" => spec.job.adaptive = false,
            "--detach" => spec.detach = true,
            "--shutdown" => spec.shutdown = true,
            "-h" | "--help" => return Err(fail(SUBMIT_USAGE)),
            other => return Err(fail(format!("unknown flag '{other}'\n{SUBMIT_USAGE}"))),
        }
    }
    if spec.socket.is_empty() {
        return Err(fail(format!("--socket is required\n{SUBMIT_USAGE}")));
    }
    if !spec.shutdown {
        for (flag, v) in [
            ("--input-config", &spec.job.input_config),
            ("--workflow", &spec.job.workflow),
            ("--data", &spec.job.data),
            ("--out", &spec.job.out_dir),
        ] {
            if v.is_empty() {
                return Err(fail(format!("{flag} is required\n{SUBMIT_USAGE}")));
            }
        }
    }
    // Sorted for a deterministic wire encoding (the daemon re-sorts for
    // hashing anyway; this keeps repeated submits byte-identical on the
    // wire too).
    let mut pairs: Vec<(String, String)> = args.into_iter().collect();
    pairs.sort();
    spec.job.args = pairs;
    // The daemon resolves paths against *its* working directory;
    // absolutize against ours so `papar submit` behaves like `papar run`
    // regardless of where the daemon was started.
    for p in [
        &mut spec.job.input_config,
        &mut spec.job.workflow,
        &mut spec.job.data,
        &mut spec.job.out_dir,
    ] {
        let path = std::path::Path::new(p.as_str());
        if !p.is_empty() && path.is_relative() {
            if let Ok(cwd) = std::env::current_dir() {
                *p = cwd.join(path).display().to_string();
            }
        }
    }
    Ok(spec)
}

/// Execute a submit: admit the job and either detach or block for the
/// result. Returns the lines to print.
pub fn run_submit(spec: &SubmitSpec) -> Result<String, CliError> {
    let endpoint = papar_serve::Endpoint::parse(&spec.socket);
    let mut client = papar_serve::Client::connect(&endpoint).map_err(|e| fail(e.to_string()))?;
    if spec.shutdown {
        client.shutdown().map_err(|e| fail(e.to_string()))?;
        return Ok("daemon is draining its queue and shutting down".to_string());
    }
    let (id, position) = client
        .submit(spec.job.clone())
        .map_err(|e| fail(e.to_string()))?;
    if spec.detach {
        return Ok(format!(
            "job {id} queued at position {position}\n(`papar status {id} --socket {}` follows it)",
            spec.socket
        ));
    }
    let report = client.wait(id).map_err(|e| fail(e.to_string()))?;
    render_job_report(&report)
}

/// Everything `papar status` needs.
#[derive(Debug, Clone, Default)]
pub struct StatusSpec {
    /// The daemon's socket.
    pub socket: String,
    /// The job to report on; `None` pings the daemon and prints its
    /// lifetime counters instead.
    pub job: Option<u64>,
}

/// Parse `papar status` arguments into a [`StatusSpec`].
pub fn parse_status_args<I: Iterator<Item = String>>(mut argv: I) -> Result<StatusSpec, CliError> {
    let mut spec = StatusSpec::default();
    let need = |flag: &str, it: &mut I| -> Result<String, CliError> {
        it.next()
            .ok_or_else(|| fail(format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--socket" => spec.socket = need("--socket", &mut argv)?,
            "-h" | "--help" => return Err(fail(STATUS_USAGE)),
            other => {
                let id: u64 = other.parse().map_err(|_| {
                    fail(format!("expected a job id, got '{other}'\n{STATUS_USAGE}"))
                })?;
                if spec.job.is_some() {
                    return Err(fail(format!("more than one job id given\n{STATUS_USAGE}")));
                }
                spec.job = Some(id);
            }
        }
    }
    if spec.socket.is_empty() {
        return Err(fail(format!("--socket is required\n{STATUS_USAGE}")));
    }
    Ok(spec)
}

/// Execute a status query. Returns the lines to print.
pub fn run_status(spec: &StatusSpec) -> Result<String, CliError> {
    let endpoint = papar_serve::Endpoint::parse(&spec.socket);
    let mut client = papar_serve::Client::connect(&endpoint).map_err(|e| fail(e.to_string()))?;
    match spec.job {
        Some(id) => {
            let report = client.status(id).map_err(|e| fail(e.to_string()))?;
            render_job_report(&report)
        }
        None => {
            let stats = client.ping().map_err(|e| fail(e.to_string()))?;
            Ok(format!(
                "daemon alive on {}\n\
                 jobs: {} done, {} failed\n\
                 plans: {} resident, {} hit(s), {} miss(es)\n\
                 data: {} hit(s), {} miss(es)",
                spec.socket,
                stats.jobs_done,
                stats.jobs_failed,
                stats.plans_cached,
                stats.plan_hits,
                stats.plan_misses,
                stats.data_hits,
                stats.data_misses,
            ))
        }
    }
}

/// Render a job report the way the daemon's stats deserve: one state
/// line, then the job's own detail (summary + profile table, or the
/// failure). A `Failed` report comes back as `Err` so callers exit 1.
fn render_job_report(report: &papar_serve::JobReport) -> Result<String, CliError> {
    use papar_serve::JobStateKind;
    match report.state {
        JobStateKind::Queued { position } => {
            Ok(format!("job {}: queued at position {position}", report.id))
        }
        JobStateKind::Running => Ok(format!("job {}: running", report.id)),
        JobStateKind::Done => Ok(format!(
            "job {}: done in {} ms\n{}",
            report.id,
            report.wall_ms,
            report.detail.trim_end()
        )),
        JobStateKind::Failed => Err(fail(format!(
            "job {} failed: {}",
            report.id,
            report.detail.trim_end()
        ))),
    }
}

/// Usage text for `papar serve`.
pub const SERVE_USAGE: &str = "\
usage: papar serve --socket <path|tcp:HOST:PORT>
                   [--queue N] [--plan-cache N] [--data-cache N]

Runs the resident partitioning daemon: compiled plans and decoded input
files stay cached between requests (LRU, keyed by the plan fingerprint),
and jobs execute one at a time on a resident cluster — output bytes are
identical to one-shot `papar run`. Submit work with `papar submit`, follow
it with `papar status`. SIGTERM/SIGINT (or `papar submit --shutdown`)
drains the queue and exits cleanly.

  --socket S       Unix socket path, or tcp:HOST:PORT (tcp:127.0.0.1:0
                   picks a free port and prints it)
  --queue N        admission limit on pending jobs; submits beyond it are
                   refused with a typed queue-full error (default 32)
  --plan-cache N   compiled plans kept resident (default 16)
  --data-cache N   decoded input files kept resident (default 8)";

/// Usage text for `papar submit`.
pub const SUBMIT_USAGE: &str = "\
usage: papar submit --socket <path|tcp:HOST:PORT>
                    --input-config <xml> --workflow <xml> --data <file> --out <dir>
                    [--nodes N] [--records N] [--arg key=value]...
                    [--threads N] [--no-fuse] [--no-zerocopy] [--adaptive]
                    [--detach]
       papar submit --socket <path|tcp:HOST:PORT> --shutdown

Submits one partitioning job to a `papar serve` daemon. Without --detach,
blocks until the job completes and prints the same summary `papar run`
would (plus cache verdicts and the profile table); with --detach, prints
the job id immediately. --shutdown asks the daemon to drain and exit.
Paths are resolved against this command's working directory. Exit code 0
on success, 1 when the job fails or the daemon refuses it, 2 on usage
errors.";

/// Usage text for `papar status`.
pub const STATUS_USAGE: &str = "\
usage: papar status [<job-id>] --socket <path|tcp:HOST:PORT>

With a job id: prints the job's state — queue position while queued, or
the completed job's summary, cache verdicts, and per-phase profile table.
Without one: pings the daemon and prints its lifetime counters (jobs,
plan/data cache hits). Exit code 0 on success, 1 when the job failed or
the daemon is unreachable, 2 on usage errors.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_happy_path() {
        let spec = parse_args(
            [
                "--input-config",
                "in.xml",
                "--workflow",
                "wf.xml",
                "--data",
                "d.bin",
                "--out",
                "parts",
                "--nodes",
                "8",
                "--arg",
                "num_partitions=16",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(spec.nodes, 8);
        assert_eq!(spec.args["num_partitions"], "16");
        assert_eq!(spec.out_dir, PathBuf::from("parts"));
    }

    #[test]
    fn parse_args_chaos_flags() {
        let spec = parse_args(
            [
                "--input-config",
                "in.xml",
                "--workflow",
                "wf.xml",
                "--data",
                "d.bin",
                "--out",
                "parts",
                "--faults",
                "crash=1,straggler=2",
                "--fault-seed",
                "99",
                "--replication",
                "2",
                "--max-retries",
                "5",
                "--threads",
                "4",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(spec.faults.as_deref(), Some("crash=1,straggler=2"));
        assert_eq!(spec.fault_seed, 99);
        assert_eq!(spec.replication, 2);
        assert_eq!(spec.max_retries, 5);
        assert_eq!(spec.threads, Some(4));
        // Defaults: no profiling, no trace export.
        assert!(!spec.profile);
        assert!(spec.trace_out.is_none());
        // Defaults: fault-free, no replication, 3 attempts.
        let spec = parse_args(
            [
                "--input-config",
                "a",
                "--workflow",
                "b",
                "--data",
                "c",
                "--out",
                "d",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(spec.faults.is_none());
        assert_eq!(spec.replication, 0);
        assert_eq!(spec.max_retries, 3);
        // Default: let the engine pick its thread count.
        assert!(spec.threads.is_none());
    }

    #[test]
    fn parse_args_observability_flags() {
        let spec = parse_args(
            [
                "--input-config",
                "a",
                "--workflow",
                "b",
                "--data",
                "c",
                "--out",
                "d",
                "--profile",
                "--trace",
                "trace.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(spec.profile);
        assert_eq!(spec.trace_out, Some(PathBuf::from("trace.json")));
        // --trace requires a path.
        let e = parse_args(["--trace"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(e.to_string().contains("needs a value"), "{e}");
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        let parse = |v: &[&str]| parse_args(v.iter().map(|s| s.to_string()));
        assert!(parse(&["--nodes", "x"]).is_err());
        let e = parse(&["--nodes", "0"]).unwrap_err();
        assert!(e.to_string().contains("positive integer"), "{e}");
        assert!(parse(&["--arg", "noequals"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        // Chaos flags validate eagerly.
        let e = parse(&["--faults", "meteor=1"]).unwrap_err();
        assert!(e.to_string().contains("unknown fault kind"), "{e}");
        assert!(parse(&["--fault-seed", "x"]).is_err());
        assert!(parse(&["--replication", "-1"]).is_err());
        let e = parse(&["--max-retries", "0"]).unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
        let e = parse(&["--threads", "0"]).unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
        assert!(parse(&["--threads", "x"]).is_err());
        // Missing required flags.
        assert!(parse(&[]).is_err());
        let e = parse(&["--input-config", "a", "--workflow", "b", "--data", "c"]).unwrap_err();
        assert!(e.to_string().contains("--out"), "{e}");
    }

    #[test]
    fn parse_args_checkpoint_flags() {
        let base = [
            "--input-config",
            "a",
            "--workflow",
            "b",
            "--data",
            "c",
            "--out",
            "d",
        ];
        let parse =
            |extra: &[&str]| parse_args(base.iter().chain(extra.iter()).map(|s| s.to_string()));
        // Defaults: no checkpointing.
        let spec = parse(&[]).unwrap();
        assert!(spec.checkpoint.is_none());
        assert!(!spec.resume);
        // --checkpoint writes; --resume reads and writes.
        let spec = parse(&["--checkpoint", "run1"]).unwrap();
        assert_eq!(spec.checkpoint, Some(PathBuf::from("run1")));
        assert!(!spec.resume);
        let spec = parse(&["--resume", "run1"]).unwrap();
        assert_eq!(spec.checkpoint, Some(PathBuf::from("run1")));
        assert!(spec.resume);
        // Naming the same dir twice is fine; different dirs conflict.
        let spec = parse(&["--checkpoint", "run1", "--resume", "run1"]).unwrap();
        assert!(spec.resume);
        let e = parse(&["--checkpoint", "run1", "--resume", "run2"]).unwrap_err();
        assert!(e.to_string().contains("different directories"), "{e}");
        let e = parse(&["--resume", "run2", "--checkpoint", "run1"]).unwrap_err();
        assert!(e.to_string().contains("different directories"), "{e}");
        // Both flags need a value.
        assert!(parse_args(["--checkpoint"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--resume"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn parse_args_no_fuse_flag() {
        let base = [
            "--input-config",
            "a",
            "--workflow",
            "b",
            "--data",
            "c",
            "--out",
            "d",
        ];
        let spec = parse_args(base.iter().map(|s| s.to_string())).unwrap();
        assert!(!spec.no_fuse, "fusion is on by default");
        let with = base.iter().chain(&["--no-fuse"]).map(|s| s.to_string());
        assert!(parse_args(with).unwrap().no_fuse);
    }

    #[test]
    fn parse_args_no_zerocopy_flag() {
        let base = [
            "--input-config",
            "a",
            "--workflow",
            "b",
            "--data",
            "c",
            "--out",
            "d",
        ];
        let spec = parse_args(base.iter().map(|s| s.to_string())).unwrap();
        assert!(
            !spec.no_zerocopy,
            "the zero-copy reduce path is on by default"
        );
        let with = base.iter().chain(&["--no-zerocopy"]).map(|s| s.to_string());
        assert!(parse_args(with).unwrap().no_zerocopy);
    }

    #[test]
    fn parse_plan_args_happy_path() {
        let spec = parse_plan_args(
            [
                "--workflow",
                "wf.xml",
                "--input-config",
                "in.xml",
                "--nodes",
                "8",
                "--arg",
                "num_partitions=16",
                "--no-fuse",
                "--explain",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(spec.workflow, PathBuf::from("wf.xml"));
        assert_eq!(spec.input_configs, vec![PathBuf::from("in.xml")]);
        assert_eq!(spec.nodes, 8);
        assert_eq!(spec.args["num_partitions"], "16");
        assert!(spec.no_fuse);
        assert!(spec.explain);
        // Defaults.
        let spec = parse_plan_args(["--workflow", "w"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(spec.nodes, 4);
        assert!(!spec.no_fuse);
        assert!(!spec.explain);
    }

    #[test]
    fn parse_plan_args_rejects_bad_input() {
        let parse = |v: &[&str]| parse_plan_args(v.iter().map(|s| s.to_string()));
        let e = parse(&[]).unwrap_err();
        assert!(e.to_string().contains("--workflow"), "{e}");
        assert!(parse(&["--workflow", "w", "--nodes", "0"]).is_err());
        assert!(parse(&["--workflow", "w", "--arg", "noequals"]).is_err());
        assert!(parse(&["--workflow", "w", "--bogus"]).is_err());
    }

    #[test]
    fn run_plan_explains_fusion_on_the_blast_example() {
        let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/configs");
        let spec = PlanSpec {
            workflow: format!("{configs}/blast_partition.xml").into(),
            input_configs: vec![format!("{configs}/blast_db.xml").into()],
            args: [("num_partitions".to_string(), "8".to_string())]
                .into_iter()
                .collect(),
            explain: true,
            ..Default::default()
        };
        let fused = run_plan(&spec).unwrap();
        assert_eq!((fused.logical_jobs, fused.stages), (2, 1));
        assert!(fused.fused);
        assert!(fused.output.contains("L0+L1"), "{}", fused.output);
        assert!(
            fused.output.contains("streams '/user/sort_output'"),
            "{}",
            fused.output
        );
        let unfused = run_plan(&PlanSpec {
            no_fuse: true,
            ..spec.clone()
        })
        .unwrap();
        assert_eq!((unfused.logical_jobs, unfused.stages), (2, 2));
        assert!(!unfused.fused);
        assert!(unfused.output.contains("--no-fuse"), "{}", unfused.output);
        // The one-line summary without --explain still counts stages.
        let summary = run_plan(&PlanSpec {
            explain: false,
            ..spec
        })
        .unwrap();
        assert!(
            summary
                .output
                .contains("2 logical job(s) -> 1 physical stage(s)"),
            "{}",
            summary.output
        );
    }

    #[test]
    fn parse_check_args_happy_path() {
        let spec = parse_check_args(
            [
                "--workflow",
                "wf.xml",
                "--input-config",
                "a.xml",
                "--input-config",
                "b.xml",
                "--nodes",
                "8",
                "--arg",
                "num_partitions=16",
                "--format",
                "json",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(spec.workflow, PathBuf::from("wf.xml"));
        assert_eq!(spec.input_configs.len(), 2);
        assert_eq!(spec.nodes, Some(8));
        assert!(spec.replication.is_none());
        assert_eq!(spec.args["num_partitions"], "16");
        assert!(spec.json);
    }

    #[test]
    fn parse_check_args_rejects_bad_input() {
        let parse = |v: &[&str]| parse_check_args(v.iter().map(|s| s.to_string()));
        // --workflow is the only required flag.
        let e = parse(&[]).unwrap_err();
        assert!(e.to_string().contains("--workflow"), "{e}");
        assert!(parse(&["--workflow", "w", "--format", "yaml"]).is_err());
        assert!(parse(&["--workflow", "w", "--nodes", "x"]).is_err());
        assert!(parse(&["--workflow", "w", "--arg", "noequals"]).is_err());
        assert!(parse(&["--workflow", "w", "--bogus"]).is_err());
    }

    #[test]
    fn parse_check_args_bounds_flags() {
        let spec = parse_check_args(
            [
                "--workflow",
                "wf.xml",
                "--bounds",
                "--records",
                "1000",
                "--distinct-keys",
                "7",
                "--skew-ratio",
                "2.5",
                "--deny-warnings",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(spec.bounds);
        assert!(spec.deny_warnings);
        assert_eq!(spec.records, Some(1000));
        assert_eq!(spec.distinct_keys, Some(7));
        assert_eq!(spec.skew_ratio, Some(2.5));
        // Defaults: bounds analysis and warning promotion are opt-in.
        let spec = parse_check_args(["--workflow", "w"].iter().map(|s| s.to_string())).unwrap();
        assert!(!spec.bounds);
        assert!(!spec.deny_warnings);
        assert!(spec.skew_ratio.is_none());
        assert!(spec.distinct_keys.is_none());
        // Ratios below 1 or non-numeric are rejected.
        let parse = |v: &[&str]| parse_check_args(v.iter().map(|s| s.to_string()));
        assert!(parse(&["--workflow", "w", "--skew-ratio", "0.5"]).is_err());
        assert!(parse(&["--workflow", "w", "--skew-ratio", "x"]).is_err());
        assert!(parse(&["--workflow", "w", "--distinct-keys", "x"]).is_err());
    }

    #[test]
    fn run_check_bounds_prints_the_stage_table_on_fig8() {
        let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/configs");
        let spec = CheckSpec {
            workflow: format!("{configs}/blast_partition.xml").into(),
            input_configs: vec![format!("{configs}/blast_db.xml").into()],
            nodes: Some(4),
            records: Some(1000),
            args: [("num_partitions".to_string(), "8".to_string())]
                .into_iter()
                .collect(),
            bounds: true,
            ..Default::default()
        };
        let report = run_check(&spec).unwrap();
        assert_eq!(report.errors, 0, "{}", report.output);
        // The per-stage table shows the fused stage with exact counts.
        assert!(report.output.contains("max-load"), "{}", report.output);
        assert!(report.output.contains("sort+distr"), "{}", report.output);
        assert!(report.output.contains("1000"), "{}", report.output);
    }

    #[test]
    fn run_check_deny_warnings_promotes_to_errors() {
        let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/configs");
        let base = CheckSpec {
            workflow: format!("{configs}/blast_partition.xml").into(),
            input_configs: vec![format!("{configs}/blast_db.xml").into()],
            nodes: Some(4),
            records: Some(1000),
            args: [("num_partitions".to_string(), "8".to_string())]
                .into_iter()
                .collect(),
            ..Default::default()
        };
        // Fig 8 is warnings-only (W004 + W006): exit would be 0.
        let report = run_check(&base).unwrap();
        assert_eq!(report.errors, 0, "{}", report.output);
        assert!(report.warnings > 0, "{}", report.output);
        // --deny-warnings flips the same findings to error severity.
        let strict = CheckSpec {
            deny_warnings: true,
            ..base
        };
        let report = run_check(&strict).unwrap();
        assert_eq!(report.warnings, 0, "{}", report.output);
        assert!(report.errors > 0, "{}", report.output);
        assert!(report.output.contains("error[W0"), "{}", report.output);
    }

    #[test]
    fn run_plan_explain_appends_the_bounds_table() {
        let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/configs");
        let spec = PlanSpec {
            workflow: format!("{configs}/blast_partition.xml").into(),
            input_configs: vec![format!("{configs}/blast_db.xml").into()],
            args: [("num_partitions".to_string(), "8".to_string())]
                .into_iter()
                .collect(),
            explain: true,
            records: Some(640),
            ..Default::default()
        };
        let report = run_plan(&spec).unwrap();
        assert!(report.output.contains("static bounds"), "{}", report.output);
        assert!(report.output.contains("max-load"), "{}", report.output);
        assert!(report.output.contains("640"), "{}", report.output);
        // Without --records the table still prints, with ? for unknowns.
        let report = run_plan(&PlanSpec {
            records: None,
            ..spec
        })
        .unwrap();
        assert!(report.output.contains("[0, ?]"), "{}", report.output);
    }

    #[test]
    fn run_check_reports_errors_without_reading_data() {
        let dir = std::env::temp_dir().join(format!("papar-check-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wf = dir.join("wf.xml");
        std::fs::write(
            &wf,
            r#"<workflow id="w" name="n">
  <operators>
    <operator id="s" operator="Sort">
      <param name="inputPath" type="String" value="$missing"/>
      <param name="outputPath" type="String" value="/out"/>
      <param name="key" type="KeyId" value="k"/>
    </operator>
  </operators>
</workflow>"#,
        )
        .unwrap();
        let spec = CheckSpec {
            workflow: wf,
            ..Default::default()
        };
        let report = run_check(&spec).unwrap();
        assert!(report.errors > 0);
        assert!(report.output.contains("P001"), "{}", report.output);
        // JSON mode round-trips through the parser.
        let json_spec = CheckSpec { json: true, ..spec };
        let report = run_check(&json_spec).unwrap();
        assert!(papar_check::json::from_json(&report.output).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_files_are_reported_with_paths() {
        let spec = RunSpec {
            input_config: "/nonexistent/in.xml".into(),
            workflow: "/nonexistent/wf.xml".into(),
            data: "/nonexistent/d".into(),
            out_dir: std::env::temp_dir(),
            nodes: 2,
            args: HashMap::new(),
            records: None,
            ..Default::default()
        };
        let e = run(&spec).unwrap_err();
        assert!(e.to_string().contains("/nonexistent/in.xml"), "{e}");
    }
}
