//! End-to-end CLI test: a real muBLASTP database file on disk, real
//! configuration files, partition files written and re-read.

use mublastp::dbgen::DbSpec;
use papar_cli::{run, RunSpec};
use std::collections::HashMap;

const INPUT_CFG: &str = r#"
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;

const WORKFLOW: &str = r#"
<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("papar-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn partitions_a_real_database_file() {
    let dir = temp_dir("blast");
    let input_cfg = dir.join("blast_db.xml");
    let workflow = dir.join("wf.xml");
    let data = dir.join("env_nr.db");
    std::fs::write(&input_cfg, INPUT_CFG).unwrap();
    std::fs::write(&workflow, WORKFLOW).unwrap();

    // A real database file, payloads and all; the CLI reads the index
    // region (the Figure 4 contract).
    let db = DbSpec::env_nr_scaled(500, 9).generate();
    std::fs::write(&data, db.to_bytes()).unwrap();

    let mut args = HashMap::new();
    args.insert("num_partitions".to_string(), "4".to_string());
    let spec = RunSpec {
        input_config: input_cfg,
        workflow,
        data,
        out_dir: dir.join("parts"),
        nodes: 3,
        args,
        // The file carries sequence payload after the index region.
        records: Some(db.len()),
        ..Default::default()
    };
    let summary = run(&spec).unwrap();
    assert_eq!(summary.records_in, 500);
    assert_eq!(summary.files.len(), 4);
    // The sort and the distribute fuse into one physical MR job.
    assert_eq!(summary.jobs.len(), 1);

    // --no-fuse runs the two logical jobs separately and must produce
    // byte-identical partition files with more shuffle traffic.
    let unfused = run(&RunSpec {
        out_dir: dir.join("parts_nofuse"),
        no_fuse: true,
        ..spec.clone()
    })
    .unwrap();
    assert_eq!(unfused.jobs.len(), 2);
    let shuffled =
        |jobs: &[(String, std::time::Duration, u64)]| jobs.iter().map(|(_, _, b)| b).sum::<u64>();
    assert!(
        shuffled(&summary.jobs) < shuffled(&unfused.jobs),
        "fusion must shuffle fewer bytes: {} vs {}",
        shuffled(&summary.jobs),
        shuffled(&unfused.jobs)
    );
    for (f, u) in summary.files.iter().zip(&unfused.files) {
        assert_eq!(
            std::fs::read(f).unwrap(),
            std::fs::read(u).unwrap(),
            "fused and unfused partitions must be byte-identical"
        );
    }

    // The partition files are valid index files that the baseline agrees
    // with.
    let base =
        mublastp::baseline::partition(&db.index, 4, mublastp::baseline::BaselinePolicy::Cyclic);
    let cfg = papar_config::InputConfig::parse_str(INPUT_CFG).unwrap();
    let schema = papar_record::Schema::from_input_config(&cfg);
    for (i, file) in summary.files.iter().enumerate() {
        let bytes = std::fs::read(file).unwrap();
        let records = papar_record::codec::binary::read(&cfg, &schema, &bytes).unwrap();
        let entries: Vec<_> = records
            .iter()
            .map(|r| mublastp::dbformat::IndexEntry::from_record(r).unwrap())
            .collect();
        assert_eq!(entries, base.partitions[i], "partition {i} differs");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn chaos_flags_recover_to_the_same_partition_files() {
    let dir = temp_dir("chaos");
    let input_cfg = dir.join("blast_db.xml");
    let workflow = dir.join("wf.xml");
    let data = dir.join("env_nr.db");
    std::fs::write(&input_cfg, INPUT_CFG).unwrap();
    std::fs::write(&workflow, WORKFLOW).unwrap();
    let db = DbSpec::env_nr_scaled(200, 5).generate();
    std::fs::write(&data, db.to_bytes()).unwrap();

    let mut args = HashMap::new();
    args.insert("num_partitions".to_string(), "4".to_string());
    let base_spec = RunSpec {
        input_config: input_cfg.clone(),
        workflow: workflow.clone(),
        data: data.clone(),
        out_dir: dir.join("healthy"),
        nodes: 3,
        args: args.clone(),
        records: Some(db.len()),
        ..Default::default()
    };
    let healthy = run(&base_spec).unwrap();
    assert_eq!(healthy.faults_injected, 0);

    let chaos_spec = RunSpec {
        out_dir: dir.join("chaos"),
        faults: Some("crash=1,drop=1".to_string()),
        fault_seed: 11,
        replication: 1,
        ..base_spec
    };
    let chaos = run(&chaos_spec).unwrap();
    assert!(chaos.faults_injected > 0, "the plan must fire");
    assert!(!chaos.recovery_log.is_empty());
    for (h, c) in healthy.files.iter().zip(&chaos.files) {
        assert_eq!(
            std::fs::read(h).unwrap(),
            std::fs::read(c).unwrap(),
            "partition files must be byte-identical after recovery"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn rejects_wrong_argument_names() {
    let dir = temp_dir("badargs");
    let input_cfg = dir.join("in.xml");
    let workflow = dir.join("wf.xml");
    let data = dir.join("d.db");
    std::fs::write(&input_cfg, INPUT_CFG).unwrap();
    std::fs::write(&workflow, WORKFLOW).unwrap();
    std::fs::write(&data, DbSpec::env_nr_scaled(10, 1).generate().to_bytes()).unwrap();
    let mut args = HashMap::new();
    args.insert("num_partitions".to_string(), "2".to_string());
    args.insert("bogus".to_string(), "1".to_string());
    let spec = RunSpec {
        input_config: input_cfg,
        workflow,
        data,
        out_dir: dir.join("parts"),
        nodes: 2,
        args,
        records: Some(10),
        ..Default::default()
    };
    let e = run(&spec).unwrap_err();
    assert!(e.to_string().contains("bogus"), "{e}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn run_refuses_workflows_with_check_errors() {
    let dir = temp_dir("checkgate");
    let input_cfg = dir.join("in.xml");
    let workflow = dir.join("wf.xml");
    let data = dir.join("d.db");
    std::fs::write(&input_cfg, INPUT_CFG).unwrap();
    // The sort key is not a field of the blast_db schema: an error the
    // planner would also catch, but the check gate reports it first, with
    // a source span, before the cluster is even created.
    std::fs::write(&workflow, WORKFLOW.replace("seq_size", "seq_sie")).unwrap();
    std::fs::write(&data, DbSpec::env_nr_scaled(10, 1).generate().to_bytes()).unwrap();
    let mut args = HashMap::new();
    args.insert("num_partitions".to_string(), "2".to_string());
    let spec = RunSpec {
        input_config: input_cfg,
        workflow,
        data,
        out_dir: dir.join("parts"),
        nodes: 2,
        args,
        records: Some(10),
        ..Default::default()
    };
    let e = run(&spec).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("static analysis"), "{msg}");
    assert!(msg.contains("P006"), "{msg}");
    assert!(msg.contains("seq_sie"), "{msg}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn text_workflow_writes_text_partitions() {
    let dir = temp_dir("text");
    let input_cfg = dir.join("edges.xml");
    let workflow = dir.join("wf.xml");
    let data = dir.join("edges.txt");
    std::fs::write(
        &input_cfg,
        r#"
<input id="graph_edge" name="edge lists">
  <input_format>text</input_format>
  <element>
    <value name="vertex_a" type="String"/>
    <delimiter value="\t"/>
    <value name="vertex_b" type="String"/>
    <delimiter value="\n"/>
  </element>
</input>"#,
    )
    .unwrap();
    std::fs::write(
        &workflow,
        r#"
<workflow id="w" name="n">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
    <param name="output_path" type="hdfs" format="graph_edge"/>
    <param name="num_partitions" type="integer" value="2"/>
  </arguments>
  <operators>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#,
    )
    .unwrap();
    std::fs::write(&data, "1\t2\n2\t3\n3\t1\n4\t1\n").unwrap();
    let spec = RunSpec {
        input_config: input_cfg,
        workflow,
        data,
        out_dir: dir.join("parts"),
        nodes: 2,
        args: HashMap::new(),
        records: None,
        ..Default::default()
    };
    let summary = run(&spec).unwrap();
    assert_eq!(summary.records_in, 4);
    assert_eq!(summary.files.len(), 2);
    let p0 = std::fs::read_to_string(&summary.files[0]).unwrap();
    let p1 = std::fs::read_to_string(&summary.files[1]).unwrap();
    // Round-robin over the 4 edges.
    assert_eq!(p0, "1\t2\n3\t1\n");
    assert_eq!(p1, "2\t3\n4\t1\n");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn trace_export_is_valid_and_identical_across_thread_counts() {
    let dir = temp_dir("trace");
    let input_cfg = dir.join("blast_db.xml");
    let workflow = dir.join("wf.xml");
    let data = dir.join("env_nr.db");
    std::fs::write(&input_cfg, INPUT_CFG).unwrap();
    std::fs::write(&workflow, WORKFLOW).unwrap();
    let db = DbSpec::env_nr_scaled(300, 7).generate();
    std::fs::write(&data, db.to_bytes()).unwrap();

    let mut args = HashMap::new();
    args.insert("num_partitions".to_string(), "4".to_string());
    let base = RunSpec {
        input_config: input_cfg,
        workflow,
        data,
        out_dir: dir.join("p1"),
        nodes: 3,
        args,
        records: Some(db.len()),
        profile: true,
        trace_out: Some(dir.join("t1.json")),
        threads: Some(1),
        // Inject faults so the recovery counters appear in the trace too.
        faults: Some("crash=1,drop=1".to_string()),
        fault_seed: 11,
        replication: 1,
        ..Default::default()
    };
    let s1 = run(&base).unwrap();
    let s4 = run(&RunSpec {
        out_dir: dir.join("p4"),
        trace_out: Some(dir.join("t4.json")),
        threads: Some(4),
        ..base.clone()
    })
    .unwrap();

    // The profile table is present and reports the workflow total.
    let profile = s1.profile.as_deref().expect("--profile must render");
    for needle in ["sort", "distr", "map", "shuffle", "reduce", "total"] {
        assert!(
            profile.contains(needle),
            "profile missing {needle}:\n{profile}"
        );
    }

    // The bound-vs-observed table rides along: every traced counter sits
    // inside its static interval, even with faults injected (stats come
    // from the successful attempt only).
    for needle in ["static bounds vs observed", "records_in", "max_load"] {
        assert!(
            profile.contains(needle),
            "profile missing {needle}:\n{profile}"
        );
    }
    assert!(
        !profile.contains("ESCAPED"),
        "observed counter escaped its static bound:\n{profile}"
    );

    // The Chrome export is structurally sane JSON...
    let t1 = std::fs::read_to_string(s1.trace_file.as_ref().unwrap()).unwrap();
    assert!(t1.starts_with("{\"traceEvents\":["));
    assert!(t1.trim_end().ends_with('}'));
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "\"cat\":\"job\"",
        "\"cat\":\"phase\"",
        "\"cat\":\"task\"",
        "\"skew_records\"",
        "\"crashes\"",
    ] {
        assert!(t1.contains(needle), "trace missing {needle}");
    }
    // ...and byte-identical regardless of how many OS threads ran it.
    let t4 = std::fs::read_to_string(s4.trace_file.as_ref().unwrap()).unwrap();
    assert_eq!(t1, t4, "trace export must not depend on --threads");
    std::fs::remove_dir_all(dir).ok();
}
