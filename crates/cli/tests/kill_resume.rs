//! Crash-consistency harness: run the real `papar` binary with
//! `--checkpoint`, SIGKILL it between two stage commits, then `--resume`
//! and require the partition files to be byte-identical to an
//! uninterrupted run — at more than one thread count.
//!
//! `PAPAR_CHECKPOINT_STALL_MS` (honored by the checkpoint layer) widens
//! the window between fragment publication and the manifest commit so the
//! kill lands mid-protocol deterministically enough to test.

use mublastp::dbgen::DbSpec;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const INPUT_CFG: &str = r#"
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;

const WORKFLOW: &str = r#"
<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("papar-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn papar(dir: &Path, out: &str, threads: usize) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_papar"));
    cmd.args(["run", "--input-config"])
        .arg(dir.join("blast_db.xml"))
        .arg("--workflow")
        .arg(dir.join("wf.xml"))
        .arg("--data")
        .arg(dir.join("env_nr.db"))
        .arg("--out")
        .arg(dir.join(out))
        .args(["--nodes", "3", "--records", "500"])
        .args(["--arg", "num_partitions=4"])
        .args(["--threads", &threads.to_string()])
        // Two physical stages, so there is a commit boundary to kill at.
        .arg("--no-fuse");
    cmd
}

fn partition_files(dir: &Path) -> Vec<Vec<u8>> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    names.sort();
    assert_eq!(names.len(), 4, "expected 4 partitions in {}", dir.display());
    names.iter().map(|p| std::fs::read(p).unwrap()).collect()
}

#[test]
fn sigkill_between_stage_commits_then_resume_is_byte_identical() {
    let dir = temp_dir("resume");
    std::fs::write(dir.join("blast_db.xml"), INPUT_CFG).unwrap();
    std::fs::write(dir.join("wf.xml"), WORKFLOW).unwrap();
    let db = DbSpec::env_nr_scaled(500, 7).generate();
    std::fs::write(dir.join("env_nr.db"), db.to_bytes()).unwrap();

    // Uninterrupted baseline, no checkpointing involved.
    let status = papar(&dir, "base", 1).status().unwrap();
    assert!(status.success(), "baseline run failed");
    let baseline = partition_files(&dir.join("base"));

    // Checkpointed run, stalled 1.5 s between publishing a stage's
    // fragments and committing it. Poll the manifest until the first
    // stage's commit lands, then SIGKILL the process while the second
    // stage sits in its stall window — committed stage 0, published but
    // uncommitted stage-1 fragments, no partition files.
    // The output directory is a workflow argument, so it is covered by
    // the resume fingerprint: the killed run and every resume must name
    // the same one.
    let ckpt = dir.join("ckpt");
    let mut child = papar(&dir, "parts", 1)
        .arg("--checkpoint")
        .arg(&ckpt)
        .env("PAPAR_CHECKPOINT_STALL_MS", "1500")
        .spawn()
        .unwrap();
    let manifest = ckpt.join("MANIFEST");
    let header_only = 25; // one header frame: 4 (len) + 8 (fnv) + 13 (payload)
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let committed = std::fs::metadata(&manifest)
            .map(|m| m.len() > header_only)
            .unwrap_or(false);
        if committed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no stage commit appeared within 30s"
        );
        assert!(
            child.try_wait().unwrap().is_none(),
            "the checkpointed run exited before it could be killed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100));
    child.kill().unwrap(); // SIGKILL: no destructors, no flushes
    child.wait().unwrap();
    assert!(
        !dir.join("parts").exists() || partition_files_missing(&dir.join("parts")),
        "the killed run must not have published partitions"
    );

    // Resume at two thread counts; both must reproduce the baseline. The
    // first resume restores stage 0 and re-executes (and re-commits)
    // stage 1; the second then restores both.
    for (t, restored) in [(1usize, 1), (4, 2)] {
        let output = papar(&dir, "parts", t)
            .arg("--resume")
            .arg(&ckpt)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "resume failed at {t} threads: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(&format!(
                "resumed from checkpoint: {restored} stage(s) restored"
            )),
            "missing resume banner at {t} threads:\n{stdout}"
        );
        assert_eq!(
            partition_files(&dir.join("parts")),
            baseline,
            "resumed partitions diverged at {t} threads"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn partition_files_missing(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|d| d.count() == 0)
        .unwrap_or(true)
}
