//! CLI validation matrix for the silent-fallback sweep: inputs that the
//! CLI used to paper over (a malformed or zero `PAPAR_THREADS`, a
//! duplicated `--arg`) must now refuse loudly, with exit codes that
//! scripts can branch on and messages that name the offending values.

use mublastp::dbgen::DbSpec;
use std::path::{Path, PathBuf};
use std::process::Command;

const INPUT_CFG: &str = r#"
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#;

const WORKFLOW: &str = r#"
<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>"#;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("papar-validate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A complete, valid `papar run` setup, so the only fault in each test
/// is the one it injects.
fn fixture(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    std::fs::write(dir.join("blast_db.xml"), INPUT_CFG).unwrap();
    std::fs::write(dir.join("wf.xml"), WORKFLOW).unwrap();
    let db = DbSpec::env_nr_scaled(200, 5).generate();
    std::fs::write(dir.join("env_nr.db"), db.to_bytes()).unwrap();
    dir
}

fn papar_run(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_papar"));
    cmd.args(["run", "--input-config"])
        .arg(dir.join("blast_db.xml"))
        .arg("--workflow")
        .arg(dir.join("wf.xml"))
        .arg("--data")
        .arg(dir.join("env_nr.db"))
        .arg("--out")
        .arg(dir.join("out"))
        .args(["--nodes", "3", "--records", "200"])
        .args(["--arg", "num_partitions=4"]);
    cmd
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_papar_threads_fails_the_run_loudly() {
    let dir = fixture("threads-zero");
    let out = papar_run(&dir).env("PAPAR_THREADS", "0").output().unwrap();
    assert!(!out.status.success(), "a zero thread budget must not run");
    let err = stderr_of(&out);
    assert!(err.contains("PAPAR_THREADS"), "stderr: {err}");
    assert!(err.contains("'0'"), "stderr names the bad value: {err}");
    assert!(
        !dir.join("out").exists(),
        "no partitions may be written on a refused run"
    );
}

#[test]
fn malformed_papar_threads_fails_the_run_loudly() {
    let dir = fixture("threads-garbage");
    let out = papar_run(&dir)
        .env("PAPAR_THREADS", "lots")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("PAPAR_THREADS"), "stderr: {err}");
    assert!(err.contains("'lots'"), "stderr names the bad value: {err}");
}

#[test]
fn valid_papar_threads_is_reported_once_and_runs() {
    let dir = fixture("threads-ok");
    let out = papar_run(&dir).env("PAPAR_THREADS", "2").output().unwrap();
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    let mentions = err.matches("engine thread budget").count();
    assert_eq!(mentions, 1, "budget line printed exactly once:\n{err}");
    assert!(err.contains("PAPAR_THREADS"), "source is named: {err}");
}

#[test]
fn serve_validates_papar_threads_at_startup() {
    // The daemon must refuse to come up at all — not accept submits and
    // fail them later — when the budget is malformed.
    let sock = std::env::temp_dir().join(format!("papar-validate-{}.sock", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_papar"))
        .args(["serve", "--socket"])
        .arg(&sock)
        .env("PAPAR_THREADS", "-3")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("PAPAR_THREADS"), "stderr: {err}");
    assert!(err.contains("'-3'"), "stderr names the bad value: {err}");
    assert!(!sock.exists(), "no socket may be left behind");
}

/// Duplicate `--arg` for the same key is a usage error (exit 2) naming
/// BOTH values, on every subcommand that accepts `--arg`.
#[test]
fn duplicate_arg_is_rejected_naming_both_values() {
    for subcmd in ["run", "plan", "check", "submit"] {
        let out = Command::new(env!("CARGO_BIN_EXE_papar"))
            .args([
                subcmd,
                "--arg",
                "num_partitions=4",
                "--arg",
                "num_partitions=8",
            ])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{subcmd}: duplicate --arg is a usage error"
        );
        let err = stderr_of(&out);
        assert!(
            err.contains("num_partitions") && err.contains("'4'") && err.contains("'8'"),
            "{subcmd}: stderr must name the key and both values:\n{err}"
        );
        assert!(err.contains("twice"), "{subcmd}: stderr: {err}");
    }
}

#[test]
fn same_key_same_value_twice_is_still_rejected() {
    // Even an agreeing duplicate is refused: it is almost always a
    // copy-paste slip, and "last one wins" used to hide real typos.
    let out = Command::new(env!("CARGO_BIN_EXE_papar"))
        .args(["run", "--arg", "k=1", "--arg", "k=1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("twice"));
}

#[test]
fn malformed_arg_without_equals_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_papar"))
        .args(["run", "--arg", "num_partitions"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("key=value"), "stderr: {err}");
    assert!(err.contains("num_partitions"), "stderr: {err}");
}
