//! Borrowed views over wire bytes: zero-copy counterparts to the owned
//! decode path in [`crate::wire`].
//!
//! A view validates structure (tags, lengths, bounds) in a single forward
//! pass and then *borrows* the validated span instead of materializing
//! `Record`/`Value` heap structures. Integrity is already guaranteed one
//! layer down — shuffle transfers are FNV-checksummed frames — so a view
//! only has to prove the span is well-formed, not uncorrupted.
//!
//! Fixed-width fast path: when every field of a schema has a static binary
//! width, a record parses with a single bounds check
//! (`Schema::binary_record_width`), and packed CSC columns skip in one
//! multiplication. Variable-width (string) fields fall back to a per-field
//! walk over their length prefixes.
//!
//! The shuffle's entry framing (tag byte + payload, see the engine's
//! `encode_entry`) lives here as [`EntryView`] so the reduce hot path can
//! sort and group *references into inbox buffers* and decode each entry
//! exactly once, at output-materialization time.

use crate::packed::PackedRecord;
use crate::record::Record;
use crate::value::Value;
use crate::wire::{self, Reader};
use crate::{CodecError, Result, Schema};

/// Entry tag: a single flat record.
pub const ENTRY_REC: u8 = 0;
/// Entry tag: a packed group (tagged key + u32 count + records).
pub const ENTRY_PACKED: u8 = 1;
/// Entry tag: a CSC-compressed packed group (tagged key + u32 count +
/// column-major non-key fields; the key column is factored out).
pub const ENTRY_PACKED_CSC: u8 = 2;

/// A tagged value read without allocating; strings borrow the wire bytes
/// (UTF-8 validated at parse time, exactly like the owned decoder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueView<'a> {
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    Long(i64),
    /// 64-bit float.
    Double(f64),
    /// Borrowed string slice into the wire buffer.
    Str(&'a str),
}

impl<'a> ValueView<'a> {
    /// Parse one tagged value, borrowing string payloads.
    pub fn parse(r: &mut Reader<'a>) -> Result<Self> {
        Ok(match r.read_u8()? {
            0 => ValueView::Int(i32::from_le_bytes(r.read_bytes(4)?.try_into().unwrap())),
            1 => ValueView::Long(i64::from_le_bytes(r.read_bytes(8)?.try_into().unwrap())),
            2 => ValueView::Double(f64::from_le_bytes(r.read_bytes(8)?.try_into().unwrap())),
            3 => {
                let len = r.read_u32()? as usize;
                let bytes = r.read_bytes(len)?;
                ValueView::Str(
                    std::str::from_utf8(bytes).map_err(|_| CodecError("invalid UTF-8".into()))?,
                )
            }
            t => return Err(CodecError(format!("unknown value tag {t}"))),
        })
    }

    /// Copy into an owned [`Value`] (allocates only for strings).
    pub fn to_value(self) -> Value {
        match self {
            ValueView::Int(x) => Value::Int(x),
            ValueView::Long(x) => Value::Long(x),
            ValueView::Double(x) => Value::Double(x),
            ValueView::Str(s) => Value::Str(s.to_string()),
        }
    }
}

/// A schema-driven record view: a validated byte span plus its schema.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    schema: &'a Schema,
    bytes: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Parse one record off the cursor, validating bounds without decoding.
    /// Fixed-width schemas validate with a single bounds check.
    pub fn parse(r: &mut Reader<'a>, schema: &'a Schema) -> Result<Self> {
        let start = r.position();
        wire::skip_record(r, schema)?;
        Ok(RecordView {
            schema,
            bytes: &r.buffer()[start..r.position()],
        })
    }

    /// The validated encoded span.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Decode field `idx` only (walks length prefixes up to `idx` for
    /// variable-width schemas; direct offset for fixed-width ones).
    pub fn field(&self, idx: usize) -> Result<Value> {
        let fields = self.schema.fields();
        if idx >= fields.len() {
            return Err(CodecError(format!(
                "field index {idx} out of range for arity {}",
                fields.len()
            )));
        }
        let mut r = Reader::new(self.bytes);
        for f in &fields[..idx] {
            wire::skip_field(&mut r, f.ty)?;
        }
        wire::decode_field(&mut r, fields[idx].ty)
    }

    /// Decode the whole record into owned values.
    pub fn materialize(&self) -> Result<Record> {
        let mut r = Reader::new(self.bytes);
        wire::decode_record(&mut r, self.schema)
    }
}

/// An owned entry produced by [`EntryView::materialize`]; the engine maps
/// this 1:1 onto its `Entry` enum.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedEntry {
    /// A single flat record.
    Rec(Record),
    /// A packed group.
    Packed(PackedRecord),
}

/// A borrowed shuffle entry: the tag plus the validated payload span.
/// Parsing walks the payload once (bounds + tags only, no allocation);
/// [`EntryView::materialize`] decodes it into owned structures exactly once,
/// when the reducer actually needs the data.
#[derive(Debug, Clone, Copy)]
pub struct EntryView<'a> {
    tag: u8,
    schema: &'a Schema,
    compress_key: Option<usize>,
    /// Payload bytes after the tag.
    payload: &'a [u8],
}

/// Skip a CSC column block: `count` cells of each non-key field,
/// column-major. Fixed-width columns skip with one multiplication.
fn skip_csc_columns(
    r: &mut Reader<'_>,
    schema: &Schema,
    key_idx: usize,
    count: usize,
) -> Result<()> {
    for (fi, field) in schema.fields().iter().enumerate() {
        if fi == key_idx {
            continue;
        }
        match field.ty.binary_width() {
            Some(w) => {
                r.read_bytes(w * count)?;
            }
            None => {
                for _ in 0..count {
                    wire::skip_field(r, field.ty)?;
                }
            }
        }
    }
    Ok(())
}

impl<'a> EntryView<'a> {
    /// Parse one entry off the cursor: reads the tag, validates the payload
    /// structure in a single forward pass, and borrows the span.
    pub fn parse(
        r: &mut Reader<'a>,
        schema: &'a Schema,
        compress_key: Option<usize>,
    ) -> Result<Self> {
        let tag = r.read_u8()?;
        let start = r.position();
        match tag {
            ENTRY_REC => wire::skip_record(r, schema)?,
            ENTRY_PACKED => {
                wire::skip_value(r)?;
                let count = r.read_u32()? as usize;
                // Fixed-width groups skip in one bounds check.
                if let Some(w) = schema.binary_record_width() {
                    r.read_bytes(w * count)?;
                } else {
                    for _ in 0..count {
                        wire::skip_record(r, schema)?;
                    }
                }
            }
            ENTRY_PACKED_CSC => {
                let key_idx = compress_key.ok_or_else(|| {
                    CodecError("received CSC-compressed entry but no compress_key".into())
                })?;
                wire::skip_value(r)?;
                let count = r.read_u32()? as usize;
                skip_csc_columns(r, schema, key_idx, count)?;
            }
            t => return Err(CodecError(format!("unknown entry tag {t}"))),
        }
        Ok(EntryView {
            tag,
            schema,
            compress_key,
            payload: &r.buffer()[start..r.position()],
        })
    }

    /// The entry tag byte.
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Encoded length including the tag byte.
    pub fn encoded_len(&self) -> usize {
        1 + self.payload.len()
    }

    /// Decode into owned structures. This is the single wire→owned copy on
    /// the zero-copy path; rows of CSC entries are rebuilt by *draining* the
    /// decoded columns, never cloning cells.
    pub fn materialize(&self) -> Result<OwnedEntry> {
        let mut r = Reader::new(self.payload);
        match self.tag {
            ENTRY_REC => Ok(OwnedEntry::Rec(wire::decode_record(&mut r, self.schema)?)),
            ENTRY_PACKED => {
                let key = wire::decode_value(&mut r)?;
                let count = r.read_u32()? as usize;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    records.push(wire::decode_record(&mut r, self.schema)?);
                }
                Ok(OwnedEntry::Packed(PackedRecord { key, records }))
            }
            ENTRY_PACKED_CSC => {
                let key_idx = self.compress_key.ok_or_else(|| {
                    CodecError("received CSC-compressed entry but no compress_key".into())
                })?;
                let key = wire::decode_value(&mut r)?;
                let count = r.read_u32()? as usize;
                let mut columns: Vec<std::vec::IntoIter<Value>> =
                    Vec::with_capacity(self.schema.len().saturating_sub(1));
                for (fi, field) in self.schema.fields().iter().enumerate() {
                    if fi == key_idx {
                        continue;
                    }
                    let mut col = Vec::with_capacity(count);
                    for _ in 0..count {
                        col.push(wire::decode_field(&mut r, field.ty)?);
                    }
                    columns.push(col.into_iter());
                }
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let mut values = Vec::with_capacity(self.schema.len());
                    let mut ci = 0;
                    for fi in 0..self.schema.len() {
                        if fi == key_idx {
                            values.push(key.clone());
                        } else {
                            values.push(columns[ci].next().expect("column has `count` cells"));
                            ci += 1;
                        }
                    }
                    records.push(Record::new(values));
                }
                Ok(OwnedEntry::Packed(PackedRecord { key, records }))
            }
            t => Err(CodecError(format!("unknown entry tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;
    use papar_config::input::FieldType;

    fn fixed_schema() -> Schema {
        Schema::new(vec![
            ("a", FieldType::Integer),
            ("b", FieldType::Long),
            ("c", FieldType::Double),
        ])
    }

    fn str_schema() -> Schema {
        Schema::new(vec![("k", FieldType::Str), ("n", FieldType::Integer)])
    }

    #[test]
    fn value_view_matches_owned_decoder() {
        for v in [
            Value::Int(-3),
            Value::Long(1 << 40),
            Value::Double(0.5),
            Value::Str("zürich".into()),
        ] {
            let mut buf = Vec::new();
            wire::encode_value(&v, &mut buf);
            let view = ValueView::parse(&mut Reader::new(&buf)).unwrap();
            assert_eq!(view.to_value(), v);
        }
        // Invalid UTF-8 is rejected at parse, like the owned path.
        let bad = [3u8, 2, 0, 0, 0, 0xFF, 0xFE];
        assert!(ValueView::parse(&mut Reader::new(&bad)).is_err());
    }

    #[test]
    fn record_view_fixed_width_span_and_fields() {
        let schema = fixed_schema();
        let rec = rec![7, 1i64 << 40, 2.5];
        let mut buf = Vec::new();
        wire::encode_record(&rec, &schema, &mut buf).unwrap();
        buf.extend_from_slice(&[0xAA; 3]); // trailing bytes must be left alone
        let mut r = Reader::new(&buf);
        let view = RecordView::parse(&mut r, &schema).unwrap();
        assert_eq!(view.as_bytes().len(), 20);
        assert_eq!(r.remaining(), 3);
        assert_eq!(view.materialize().unwrap(), rec);
        assert_eq!(view.field(1).unwrap(), Value::Long(1 << 40));
    }

    #[test]
    fn record_view_variable_width() {
        let schema = str_schema();
        let rec = rec!["vertex", 9];
        let mut buf = Vec::new();
        wire::encode_record(&rec, &schema, &mut buf).unwrap();
        let view = RecordView::parse(&mut Reader::new(&buf), &schema).unwrap();
        assert_eq!(view.field(0).unwrap(), Value::Str("vertex".into()));
        assert_eq!(view.field(1).unwrap(), Value::Int(9));
        assert!(view.field(2).is_err());
        assert_eq!(view.materialize().unwrap(), rec);
    }

    #[test]
    fn record_view_rejects_truncation() {
        let schema = fixed_schema();
        let mut buf = Vec::new();
        wire::encode_record(&rec![1, 2i64, 3.0], &schema, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(RecordView::parse(&mut Reader::new(&buf[..cut]), &schema).is_err());
        }
    }

    fn encode_entry_rec(rec: &Record, schema: &Schema) -> Vec<u8> {
        let mut buf = vec![ENTRY_REC];
        wire::encode_record(rec, schema, &mut buf).unwrap();
        buf
    }

    #[test]
    fn entry_view_rec_roundtrip() {
        let schema = fixed_schema();
        let rec = rec![1, 2i64, 3.0];
        let buf = encode_entry_rec(&rec, &schema);
        let view = EntryView::parse(&mut Reader::new(&buf), &schema, None).unwrap();
        assert_eq!(view.encoded_len(), buf.len());
        assert_eq!(view.materialize().unwrap(), OwnedEntry::Rec(rec));
    }

    #[test]
    fn entry_view_packed_and_csc_roundtrip() {
        let schema = str_schema();
        let group = PackedRecord {
            key: Value::Str("k1".into()),
            records: vec![rec!["k1", 1], rec!["k1", 2], rec!["k1", 3]],
        };
        // Packed (uncompressed): key + count + rows.
        let mut packed = vec![ENTRY_PACKED];
        wire::encode_value(&group.key, &mut packed);
        packed.extend_from_slice(&(group.records.len() as u32).to_le_bytes());
        for r in &group.records {
            wire::encode_record(r, &schema, &mut packed).unwrap();
        }
        let view = EntryView::parse(&mut Reader::new(&packed), &schema, None).unwrap();
        assert_eq!(
            view.materialize().unwrap(),
            OwnedEntry::Packed(group.clone())
        );

        // CSC: key factored out of column 0.
        let mut csc = vec![ENTRY_PACKED_CSC];
        wire::encode_value(&group.key, &mut csc);
        csc.extend_from_slice(&(group.records.len() as u32).to_le_bytes());
        for r in &group.records {
            wire::encode_field(r.require(1).unwrap(), FieldType::Integer, &mut csc).unwrap();
        }
        let view = EntryView::parse(&mut Reader::new(&csc), &schema, Some(0)).unwrap();
        assert_eq!(view.materialize().unwrap(), OwnedEntry::Packed(group));
        // Missing compress_key on a CSC entry is an error, not a guess.
        assert!(EntryView::parse(&mut Reader::new(&csc), &schema, None).is_err());
    }

    #[test]
    fn entry_view_rejects_bad_tags_and_truncation() {
        let schema = fixed_schema();
        assert!(EntryView::parse(&mut Reader::new(&[9]), &schema, None).is_err());
        let buf = encode_entry_rec(&rec![1, 2i64, 3.0], &schema);
        for cut in 0..buf.len() {
            assert!(EntryView::parse(&mut Reader::new(&buf[..cut]), &schema, None).is_err());
        }
    }
}
