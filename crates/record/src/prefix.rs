//! Order-preserving key prefixes: a fixed-width, memcmp-able summary of a
//! [`Value`] that lets the shuffle sort and the range partitioner compare
//! raw integers instead of decoded heap values.
//!
//! A prefix is a `(class, bits)` pair — compare `class` first, then `bits`
//! as unsigned integers — plus an `exact` flag:
//!
//! | `Value`     | class | bits                                   | exact                     |
//! |-------------|-------|----------------------------------------|---------------------------|
//! | `Int(i)`    | 0     | order bits of `i as f64`               | always                    |
//! | `Long(l)`   | 0     | order bits of `l as f64`               | iff `l` survives f64 round-trip |
//! | `Double(d)` | 0     | order bits of `d`                      | always                    |
//! | `Str(s)`    | 1     | first 8 bytes, big-endian, NUL-padded  | iff `len < 8` and no NUL byte |
//!
//! "Order bits" is the standard IEEE-754 total-order transform (sign-flip
//! for non-negatives, complement for negatives) so `u64` comparison agrees
//! with [`f64::total_cmp`]. This mirrors `Value::cmp` exactly: numerics of
//! any type compare through f64 `total_cmp` cross-type, strings sort above
//! every numeric, and `i64/i32 → f64` conversion is monotone.
//!
//! **Order contract** (tested here and property-tested in
//! `tests/proptests.rs`): for any values `a`, `b`,
//!
//! * `prefix(a) < prefix(b)` implies `a.cmp(&b) == Less` (and symmetrically
//!   for `Greater`) — a strict prefix inequality is always truthful;
//! * `prefix(a) == prefix(b)` with *both* sides `exact` implies
//!   `a.cmp(&b) == Equal` — an all-exact tie run needs no decode.
//!
//! One-sided exactness is *not* enough: `Long(2^53)` round-trips through
//! f64 (exact) yet shares order bits with the lossy `Long(2^53 + 1)`, and
//! `"a"` (exact) shares a padded prefix with `"a\0"`. So a sort must fall
//! back to `Value::cmp` for any tie run containing at least one inexact
//! member, and may skip the decode only when every member is exact.

use crate::value::Value;
use crate::wire::Reader;
use crate::{CodecError, Result};

/// Class bits: every numeric shares one class so cross-type numeric
/// comparisons stay inside the `bits` field; strings sort strictly above.
pub const CLASS_NUMERIC: u8 = 0;
/// Class bits for strings (`Value::Str > ` every numeric in `Value::cmp`).
pub const CLASS_STR: u8 = 1;

/// A fixed-width order-preserving summary of one [`Value`]. Deliberately
/// not `Ord`: the order relation is `(class, bits)` only (`exact` is
/// metadata, not part of the key) — compare via [`KeyPrefix::packed66`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPrefix {
    /// Type class; compared before `bits`.
    pub class: u8,
    /// Order-preserving payload, compared as an unsigned integer.
    pub bits: u64,
    /// True when a prefix tie between two values that are *both* exact
    /// proves `Value::cmp` equality (see the module docs — one-sided
    /// exactness is not sufficient).
    pub exact: bool,
}

impl KeyPrefix {
    /// Pack class + payload into a single sortable `u66`-in-`u128` (class in
    /// bits 65..64, payload in bits 63..0). Used by the packed sort kernels.
    pub fn packed66(&self) -> u128 {
        ((self.class as u128) << 64) | self.bits as u128
    }
}

/// IEEE-754 total-order transform: maps `f64` bits to a `u64` whose unsigned
/// order equals `f64::total_cmp` order (negatives complemented below all
/// non-negatives, which get their sign bit set).
#[inline]
pub fn f64_order_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

#[inline]
fn str_prefix(bytes: &[u8]) -> (u64, bool) {
    let mut buf = [0u8; 8];
    let take = bytes.len().min(8);
    buf[..take].copy_from_slice(&bytes[..take]);
    // Big-endian pack: u64 compare == memcmp on the padded 8 bytes. Exact
    // only when the string fits *strictly* (so its padding carries at least
    // one NUL) and contains no NUL itself: then any unequal tie partner
    // must either place a byte where this prefix has its pad NUL (prefixes
    // differ) or carry a NUL in its own first 8 bytes (partner is flagged
    // inexact). A length-8 string is never exact — "abcdefgh" ties with
    // "abcdefghz" without either containing a NUL.
    let exact = bytes.len() < 8 && !bytes.contains(&0);
    (u64::from_be_bytes(buf), exact)
}

/// Compute the order-preserving prefix of a decoded value.
pub fn of_value(v: &Value) -> KeyPrefix {
    match v {
        Value::Int(i) => KeyPrefix {
            class: CLASS_NUMERIC,
            bits: f64_order_bits(*i as f64),
            // Every i32 is exactly representable in f64: a tie between two
            // exact numerics means equal f64s, hence equal values under
            // every branch of Value::cmp (i64 or total_cmp).
            exact: true,
        },
        Value::Long(l) => KeyPrefix {
            class: CLASS_NUMERIC,
            bits: f64_order_bits(*l as f64),
            exact: (*l as f64) as i64 == *l,
        },
        Value::Double(d) => KeyPrefix {
            class: CLASS_NUMERIC,
            bits: f64_order_bits(*d),
            // total_cmp equality at equal bits; Value::cmp routes every
            // comparison involving a Double through total_cmp.
            exact: true,
        },
        Value::Str(s) => {
            let (bits, exact) = str_prefix(s.as_bytes());
            KeyPrefix {
                class: CLASS_STR,
                bits,
                exact,
            }
        }
    }
}

/// Read one *tagged* key from the wire and produce its prefix without
/// decoding or allocating; the cursor ends just past the key. Byte-for-byte
/// equivalent to `of_value(&decode_value(r)?)` (tested below).
pub fn from_wire(r: &mut Reader<'_>) -> Result<KeyPrefix> {
    Ok(match r.read_u8()? {
        0 => {
            let i = i32::from_le_bytes(r.read_bytes(4)?.try_into().unwrap());
            of_value(&Value::Int(i))
        }
        1 => {
            let l = i64::from_le_bytes(r.read_bytes(8)?.try_into().unwrap());
            of_value(&Value::Long(l))
        }
        2 => {
            let d = f64::from_le_bytes(r.read_bytes(8)?.try_into().unwrap());
            KeyPrefix {
                class: CLASS_NUMERIC,
                bits: f64_order_bits(d),
                exact: true,
            }
        }
        3 => {
            let len = r.read_u32()? as usize;
            let bytes = r.read_bytes(len)?;
            let (bits, exact) = str_prefix(bytes);
            KeyPrefix {
                class: CLASS_STR,
                bits,
                exact,
            }
        }
        t => return Err(CodecError(format!("unknown value tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;
    use std::cmp::Ordering;

    fn check_agrees(a: &Value, b: &Value) {
        let (pa, pb) = (of_value(a), of_value(b));
        match pa.packed66().cmp(&pb.packed66()) {
            Ordering::Less => assert_eq!(a.cmp(b), Ordering::Less, "{a:?} vs {b:?}"),
            Ordering::Greater => assert_eq!(a.cmp(b), Ordering::Greater, "{a:?} vs {b:?}"),
            Ordering::Equal => {
                if pa.exact && pb.exact {
                    assert_eq!(a.cmp(b), Ordering::Equal, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn prefix_order_agrees_with_value_cmp_on_edge_cases() {
        let vals = [
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i32::MIN),
            Value::Int(i32::MAX),
            Value::Long(0),
            Value::Long(-1),
            Value::Long(i64::MIN),
            Value::Long(i64::MAX),
            Value::Long((1 << 53) + 1), // f64-lossy
            Value::Long(-(1 << 53) - 1),
            Value::Double(0.0),
            Value::Double(-0.0),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(f64::INFINITY),
            Value::Double(f64::NAN),
            Value::Double(-f64::NAN),
            Value::Double(1.5),
            Value::Double(-1.5),
            Value::Str(String::new()),
            Value::Str("a".into()),
            Value::Str("a\0".into()),
            Value::Str("abcdefgh".into()),
            Value::Str("abcdefghi".into()),
            Value::Str("abcdefgi".into()),
            Value::Str("München".into()),
        ];
        for a in &vals {
            for b in &vals {
                check_agrees(a, b);
            }
        }
    }

    #[test]
    fn lossy_long_ties_are_flagged_inexact() {
        let a = Value::Long((1 << 53) + 1);
        let b = Value::Long(1 << 53);
        let (pa, pb) = (of_value(&a), of_value(&b));
        assert_eq!(pa.class, pb.class);
        assert_eq!(pa.bits, pb.bits, "rounds to the same f64");
        assert!(!pa.exact);
        assert!(pb.exact, "2^53 round-trips exactly");
        // The tie is resolvable because at least one side knows it is lossy.
        assert_eq!(a.cmp(&b), Ordering::Greater);
    }

    #[test]
    fn string_prefix_is_memcmp_order() {
        let cases = ["", "a", "ab", "abcdefgh", "abcdefghz", "b", "\u{10348}"];
        for x in cases {
            for y in cases {
                check_agrees(&Value::Str(x.into()), &Value::Str(y.into()));
            }
        }
        assert!(of_value(&Value::Str("hi".into())).exact);
        assert!(of_value(&Value::Str(String::new())).exact);
        assert!(
            !of_value(&Value::Str("abcdefgh".into())).exact,
            "length-8 strings tie with longer extensions"
        );
        assert!(!of_value(&Value::Str("123456789".into())).exact);
        assert!(!of_value(&Value::Str("a\0".into())).exact);
    }

    #[test]
    fn from_wire_matches_of_value_and_leaves_cursor_past_key() {
        for v in [
            Value::Int(-7),
            Value::Long(1 << 60),
            Value::Double(-2.25),
            Value::Str("shuffle".into()),
            Value::Str(String::new()),
        ] {
            let mut buf = Vec::new();
            wire::encode_value(&v, &mut buf);
            buf.extend_from_slice(b"tail");
            let mut r = Reader::new(&buf);
            let p = from_wire(&mut r).unwrap();
            assert_eq!(p, of_value(&v), "{v:?}");
            assert_eq!(r.remaining(), 4, "cursor must stop exactly past {v:?}");
        }
        assert!(from_wire(&mut Reader::new(&[9])).is_err());
    }

    #[test]
    fn packed66_orders_like_class_then_bits() {
        let s = of_value(&Value::Str("a".into()));
        let n = of_value(&Value::Double(f64::INFINITY));
        assert!(s.packed66() > n.packed66(), "strings above all numerics");
        let lo = of_value(&Value::Int(-5));
        let hi = of_value(&Value::Int(5));
        assert!(lo.packed66() < hi.packed66());
    }
}
