//! Dataset fragments in either the flat or the packed format.

use std::sync::Arc;

use crate::packed::{pack, unpack, PackedRecord};
use crate::record::Record;
use crate::{CodecError, Result, Schema};

/// A fragment of a dataset as held by one node of the cluster.
///
/// A batch is the unit the operators transform. Its *format* is part of its
/// type, because PaPar's format operators (`orig`/`pack`/`unpack`) convert
/// between the two representations while basic operators require a specific
/// one (e.g. `distribute` with the `graphVertexCut` policy consumes packed
/// low-degree groups but flat high-degree edges — paper Figure 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Batch {
    /// Original flat record layout.
    Flat(Vec<Record>),
    /// Packed `(key, group)` layout produced by the `pack` format operator.
    Packed(Vec<PackedRecord>),
}

impl Batch {
    /// An empty flat batch.
    pub fn empty() -> Self {
        Batch::Flat(Vec::new())
    }

    /// Number of *flat* records represented (packed groups count their
    /// members).
    pub fn record_count(&self) -> usize {
        match self {
            Batch::Flat(v) => v.len(),
            Batch::Packed(v) => v.iter().map(|p| p.records.len()).sum(),
        }
    }

    /// Number of top-level *entries* — what the distribute operator permutes:
    /// flat records, or whole packed groups (paper Figure 11 distributes
    /// low-degree groups as single entries).
    pub fn entry_count(&self) -> usize {
        match self {
            Batch::Flat(v) => v.len(),
            Batch::Packed(v) => v.len(),
        }
    }

    /// True when there are no records at all.
    pub fn is_empty(&self) -> bool {
        self.record_count() == 0
    }

    /// Borrow the flat records, or error if the batch is packed.
    pub fn as_flat(&self) -> Result<&[Record]> {
        match self {
            Batch::Flat(v) => Ok(v),
            Batch::Packed(_) => Err(CodecError(
                "expected flat records, found packed data (apply 'unpack' first)".into(),
            )),
        }
    }

    /// Borrow the packed groups, or error if the batch is flat.
    pub fn as_packed(&self) -> Result<&[PackedRecord]> {
        match self {
            Batch::Packed(v) => Ok(v),
            Batch::Flat(_) => Err(CodecError(
                "expected packed data, found flat records (apply 'pack' first)".into(),
            )),
        }
    }

    /// Consume into flat records, or error if packed.
    pub fn into_flat(self) -> Result<Vec<Record>> {
        match self {
            Batch::Flat(v) => Ok(v),
            Batch::Packed(_) => Err(CodecError(
                "expected flat records, found packed data (apply 'unpack' first)".into(),
            )),
        }
    }

    /// Consume into packed groups, or error if flat.
    pub fn into_packed(self) -> Result<Vec<PackedRecord>> {
        match self {
            Batch::Packed(v) => Ok(v),
            Batch::Flat(_) => Err(CodecError(
                "expected packed data, found flat records (apply 'pack' first)".into(),
            )),
        }
    }

    /// Apply the `pack` format operator: group adjacent equal keys.
    pub fn pack_by(self, key_idx: usize) -> Result<Batch> {
        match self {
            Batch::Flat(v) => Ok(Batch::Packed(pack(v, key_idx)?)),
            already @ Batch::Packed(_) => Ok(already),
        }
    }

    /// Apply the `unpack` format operator: flatten groups.
    pub fn unpack(self) -> Batch {
        match self {
            Batch::Packed(v) => Batch::Flat(unpack(v)),
            flat @ Batch::Flat(_) => flat,
        }
    }

    /// Normalize to flat records regardless of current format (the paper's
    /// rule that "all data will be unpacked to make sure the output has the
    /// same format of input" at the end of a workflow).
    pub fn flatten(self) -> Vec<Record> {
        match self {
            Batch::Flat(v) => v,
            Batch::Packed(v) => unpack(v),
        }
    }
}

/// A batch together with the schema its records follow.
///
/// The schema travels with the data because add-on operators extend it
/// mid-workflow (e.g. the `indegree` attribute in the hybrid-cut).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// The field layout of every record in `batch`.
    pub schema: Arc<Schema>,
    /// The records.
    pub batch: Batch,
}

impl Dataset {
    /// Create a dataset.
    pub fn new(schema: Arc<Schema>, batch: Batch) -> Self {
        Dataset { schema, batch }
    }

    /// An empty flat dataset with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Dataset {
            schema,
            batch: Batch::empty(),
        }
    }

    /// Verify every record conforms to the schema (used by tests and debug
    /// assertions, not on the hot path).
    pub fn check_conformance(&self) -> Result<()> {
        let check = |r: &Record| -> Result<()> {
            if r.conforms_to(&self.schema) {
                Ok(())
            } else {
                Err(CodecError(format!(
                    "record {} does not conform to schema of arity {}",
                    r.display_tuple(),
                    self.schema.len()
                )))
            }
        };
        match &self.batch {
            Batch::Flat(v) => v.iter().try_for_each(check),
            Batch::Packed(v) => v.iter().flat_map(|p| p.records.iter()).try_for_each(check),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;
    use papar_config::input::FieldType;

    #[test]
    fn counts_distinguish_entries_and_records() {
        let flat = Batch::Flat(vec![rec![1, 1], rec![2, 1], rec![3, 2]]);
        assert_eq!(flat.record_count(), 3);
        assert_eq!(flat.entry_count(), 3);
        let packed = flat.clone().pack_by(1).unwrap();
        assert_eq!(packed.record_count(), 3);
        assert_eq!(packed.entry_count(), 2);
    }

    #[test]
    fn format_conversions() {
        let rows = vec![rec![1, 1], rec![2, 1]];
        let b = Batch::Flat(rows.clone());
        let packed = b.pack_by(1).unwrap();
        assert!(packed.as_packed().is_ok());
        assert!(packed.as_flat().is_err());
        let back = packed.unpack();
        assert_eq!(back.as_flat().unwrap(), rows.as_slice());
    }

    #[test]
    fn pack_is_idempotent_and_unpack_too() {
        let b = Batch::Flat(vec![rec![1, 1]]).pack_by(1).unwrap();
        let again = b.clone().pack_by(1).unwrap();
        assert_eq!(b, again);
        let f = Batch::Flat(vec![rec![1, 1]]).unpack();
        assert!(matches!(f, Batch::Flat(_)));
    }

    #[test]
    fn flatten_normalizes() {
        let rows = vec![rec![1, 1], rec![2, 1], rec![3, 2]];
        let packed = Batch::Flat(rows.clone()).pack_by(1).unwrap();
        assert_eq!(packed.flatten(), rows);
    }

    #[test]
    fn conformance_check() {
        let schema = Arc::new(Schema::new(vec![
            ("a", FieldType::Integer),
            ("b", FieldType::Integer),
        ]));
        let good = Dataset::new(schema.clone(), Batch::Flat(vec![rec![1, 2]]));
        assert!(good.check_conformance().is_ok());
        let bad = Dataset::new(schema, Batch::Flat(vec![rec![1, "x"]]));
        assert!(bad.check_conformance().is_err());
    }

    #[test]
    fn into_conversions_error_on_wrong_format() {
        let flat = Batch::Flat(vec![rec![1]]);
        assert!(flat.clone().into_packed().is_err());
        assert!(flat.into_flat().is_ok());
    }
}
