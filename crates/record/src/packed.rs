//! The packed data format produced by the `pack` format operator.
//!
//! Paper Section III-B: format operators (`orig`, `pack`, `unpack`) change
//! the data *format* without reordering records or adding/deleting
//! attributes. `pack` turns a run of records sharing a key into one
//! [`PackedRecord`]; `unpack` flattens it back. The PowerLyra hybrid-cut
//! workflow packs edges by in-vertex after the group job (paper Figure 11,
//! step 3) so that the split job can route a whole vertex group at once.

use crate::record::Record;
use crate::value::Value;
use crate::{CodecError, Result};

/// A key together with every record of its group.
///
/// Invariant: each member record still contains the key field (packing does
/// not delete attributes — only the `compress` module factors the key out,
/// and it restores it on decompression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRecord {
    /// The shared group key.
    pub key: Value,
    /// The records of the group, in their grouped order.
    pub records: Vec<Record>,
}

impl PackedRecord {
    /// Create a packed record, checking that every member really carries
    /// `key` in field `key_idx`.
    pub fn new(key: Value, records: Vec<Record>, key_idx: usize) -> Result<Self> {
        for r in &records {
            match r.value(key_idx) {
                Some(v) if *v == key => {}
                Some(v) => {
                    return Err(CodecError(format!(
                        "record key {v} does not match group key {key}"
                    )))
                }
                None => {
                    return Err(CodecError(format!(
                        "record arity {} has no key field {key_idx}",
                        r.arity()
                    )))
                }
            }
        }
        Ok(PackedRecord { key, records })
    }

    /// Number of records in the group.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the group is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Pack a run of records by the key at `key_idx`.
///
/// Records with equal keys must be adjacent (which is what the group
/// operator's reduce stage guarantees); non-adjacent equal keys produce
/// separate packs, mirroring how a streaming packer behaves.
pub fn pack(records: Vec<Record>, key_idx: usize) -> Result<Vec<PackedRecord>> {
    let mut out: Vec<PackedRecord> = Vec::new();
    for r in records {
        let key = r.require(key_idx)?.clone();
        match out.last_mut() {
            Some(last) if last.key == key => last.records.push(r),
            _ => out.push(PackedRecord {
                key,
                records: vec![r],
            }),
        }
    }
    Ok(out)
}

/// Flatten packed records back to the original flat format (`unpack`).
pub fn unpack(packed: Vec<PackedRecord>) -> Vec<Record> {
    let total: usize = packed.iter().map(|p| p.records.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in packed {
        out.extend(p.records);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    /// The worked example of paper Figure 11: edges grouped by in-vertex,
    /// with the indegree attribute appended, for in-vertex 1.
    fn figure11_group() -> Vec<Record> {
        vec![
            rec!["2", "1", 4i64],
            rec!["3", "1", 4i64],
            rec!["4", "1", 4i64],
            rec!["5", "1", 4i64],
        ]
    }

    #[test]
    fn pack_groups_adjacent_keys() {
        let mut rows = figure11_group();
        rows.push(rec!["1", "2", 1i64]);
        let packed = pack(rows, 1).unwrap();
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[0].key, Value::Str("1".into()));
        assert_eq!(packed[0].len(), 4);
        assert_eq!(packed[1].key, Value::Str("2".into()));
        assert_eq!(packed[1].len(), 1);
    }

    #[test]
    fn pack_then_unpack_is_identity() {
        let rows = figure11_group();
        let packed = pack(rows.clone(), 1).unwrap();
        assert_eq!(unpack(packed), rows);
    }

    #[test]
    fn pack_keeps_nonadjacent_keys_separate() {
        let rows = vec![rec![1, 10], rec![2, 20], rec![1, 30]];
        let packed = pack(rows, 0).unwrap();
        assert_eq!(packed.len(), 3);
    }

    #[test]
    fn new_validates_member_keys() {
        let ok = PackedRecord::new(
            Value::Str("1".into()),
            vec![rec!["2", "1"], rec!["3", "1"]],
            1,
        );
        assert!(ok.is_ok());
        let bad = PackedRecord::new(
            Value::Str("1".into()),
            vec![rec!["2", "1"], rec!["3", "9"]],
            1,
        );
        assert!(bad.is_err());
        let out_of_range = PackedRecord::new(Value::Int(0), vec![rec![1]], 5);
        assert!(out_of_range.is_err());
    }

    #[test]
    fn empty_input_packs_to_nothing() {
        assert!(pack(Vec::new(), 0).unwrap().is_empty());
        assert!(unpack(Vec::new()).is_empty());
    }
}
