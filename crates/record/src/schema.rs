//! Dataset schemas: ordered, named, typed field lists.

use papar_config::input::{FieldDef, FieldType, InputConfig};
use std::sync::Arc;

use crate::{CodecError, Result};

/// The field layout of a dataset.
///
/// A schema starts from an InputData configuration and can be *extended* by
/// add-on operators, which append new attributes (paper Section III-B: the
/// PowerLyra `count` add-on appends `indegree` to every edge record).
/// Schemas are cheap to share (`Arc` them) and compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Build a schema from explicit `(name, type)` pairs.
    pub fn new(fields: Vec<(impl Into<String>, FieldType)>) -> Self {
        Schema {
            fields: fields
                .into_iter()
                .map(|(name, ty)| FieldDef::new(name, ty))
                .collect(),
        }
    }

    /// The flattened schema of an InputData configuration.
    pub fn from_input_config(cfg: &InputConfig) -> Self {
        Schema {
            fields: cfg.fields(),
        }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields (never produced by parsing, but
    /// possible when built programmatically).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Index of the field named `name`, with a descriptive error.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            CodecError(format!(
                "no field '{name}' in schema [{}]",
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// A new schema with one extra field appended (add-on attribute).
    ///
    /// Returns an error if the name is already taken — attributes must be
    /// fresh, matching the paper's semantics where add-ons *add* attributes.
    pub fn with_attr(&self, name: &str, ty: FieldType) -> Result<Arc<Schema>> {
        if self.index_of(name).is_some() {
            return Err(CodecError(format!(
                "attribute '{name}' already exists in schema"
            )));
        }
        let mut fields = self.fields.clone();
        fields.push(FieldDef::new(name, ty));
        Ok(Arc::new(Schema { fields }))
    }

    /// A new schema with the named field removed (used by `unpack` when the
    /// final output must match the original input format, and by CSC
    /// compression which factors out the group key).
    pub fn without_field(&self, name: &str) -> Result<Arc<Schema>> {
        let idx = self.require(name)?;
        let mut fields = self.fields.clone();
        fields.remove(idx);
        Ok(Arc::new(Schema { fields }))
    }

    /// Total width in bytes of one record in the fixed-width binary format,
    /// if every field has a fixed width.
    pub fn binary_record_width(&self) -> Option<usize> {
        self.fields
            .iter()
            .map(|f| f.ty.binary_width())
            .sum::<Option<usize>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blast_schema() -> Schema {
        Schema::new(vec![
            ("seq_start", FieldType::Integer),
            ("seq_size", FieldType::Integer),
            ("desc_start", FieldType::Integer),
            ("desc_size", FieldType::Integer),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = blast_schema();
        assert_eq!(s.index_of("seq_size"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("desc_size").is_ok());
        assert!(s.require("nope").is_err());
    }

    #[test]
    fn binary_width() {
        assert_eq!(blast_schema().binary_record_width(), Some(16));
        let s = Schema::new(vec![("a", FieldType::Str)]);
        assert_eq!(s.binary_record_width(), None);
    }

    #[test]
    fn with_attr_appends_fresh_field() {
        let s = Schema::new(vec![
            ("vertex_a", FieldType::Str),
            ("vertex_b", FieldType::Str),
        ]);
        let s2 = s.with_attr("indegree", FieldType::Long).unwrap();
        assert_eq!(s2.len(), 3);
        assert_eq!(s2.index_of("indegree"), Some(2));
        assert!(s.with_attr("vertex_a", FieldType::Long).is_err());
    }

    #[test]
    fn without_field_removes() {
        let s = blast_schema();
        let s2 = s.without_field("desc_start").unwrap();
        assert_eq!(s2.len(), 3);
        assert_eq!(s2.index_of("desc_size"), Some(2));
        assert!(s.without_field("ghost").is_err());
    }

    #[test]
    fn from_input_config_flattens() {
        let cfg = InputConfig::parse_str(
            r#"
<input id="blast_db" name="n">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#,
        )
        .unwrap();
        let s = Schema::from_input_config(&cfg);
        assert_eq!(s, blast_schema());
    }
}
