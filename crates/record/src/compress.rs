//! CSR/CSC-style compression of packed data (paper Section III-D, "Data
//! Compression").
//!
//! After the group job of the hybrid-cut workflow, the packed format carries
//! redundant data: every member record still contains the group key (the
//! in-vertex) and usually the add-on attribute too. The paper's example —
//! reducer 0 holding `{{2,1,4},{3,1,4},{4,1,4},{5,1,4}}` for in-vertex 1 —
//! compresses to the CSC form `{0, {2,3,4,5}, {4,4,4,4}}`: one start
//! pointer, the out-vertex id array and the value array. The value array is
//! *not* further compressed "to keep the generality".
//!
//! This module implements exactly that transform at the wire level:
//! [`encode_compressed`] factors the key column out of every group and
//! stores the remaining columns as arrays; [`decode_compressed`] restores
//! the original packed batch bit-for-bit. The byte saving is what the
//! paper's "up to 13% improvement" in shuffle volume comes from, reproduced
//! by the `ablation-compress` experiment.

use crate::packed::PackedRecord;
use crate::record::Record;
use crate::wire::{self, Reader};
use crate::{Batch, CodecError, Result, Schema};

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encode a packed batch in the compressed CSC-style layout.
///
/// Layout: `u32 group-count`, then the start-pointer array (`u32` per group,
/// CSC row/column pointers over the concatenated member arrays), then per
/// group: the tagged key followed by the non-key columns stored
/// column-major.
pub fn encode_compressed(
    batch: &Batch,
    schema: &Schema,
    key_idx: usize,
    buf: &mut Vec<u8>,
) -> Result<()> {
    let groups = batch.as_packed()?;
    if key_idx >= schema.len() {
        return Err(CodecError(format!(
            "key index {key_idx} out of range for schema of arity {}",
            schema.len()
        )));
    }
    put_u32(buf, groups.len() as u32);
    // CSC start pointers: starts[i] is the offset of group i's first member
    // in the concatenated member arrays (the paper's example stores `0` for
    // the first in-vertex).
    let mut start = 0u32;
    for g in groups {
        put_u32(buf, start);
        start = start
            .checked_add(g.records.len() as u32)
            .ok_or_else(|| CodecError("group sizes overflow u32".into()))?;
    }
    put_u32(buf, start); // total member count terminates the pointer array
    for g in groups {
        wire::encode_value(&g.key, buf);
        // Column-major: for each non-key field, the array of its values.
        for (fi, field) in schema.fields().iter().enumerate() {
            if fi == key_idx {
                continue;
            }
            for rec in &g.records {
                let v = rec.require(fi)?;
                wire::encode_field(v, field.ty, buf)?;
            }
        }
        // Consistency: every member must actually carry the group key.
        for rec in &g.records {
            if rec.require(key_idx)? != &g.key {
                return Err(CodecError(format!(
                    "member key {} differs from group key {}",
                    rec.require(key_idx)?,
                    g.key
                )));
            }
        }
    }
    Ok(())
}

/// Decode a compressed batch back to the packed format, restoring the key
/// field inside every member record.
pub fn decode_compressed(r: &mut Reader<'_>, schema: &Schema, key_idx: usize) -> Result<Batch> {
    if key_idx >= schema.len() {
        return Err(CodecError(format!(
            "key index {key_idx} out of range for schema of arity {}",
            schema.len()
        )));
    }
    let n_groups = read_u32(r)? as usize;
    let mut starts = Vec::with_capacity(n_groups + 1);
    for _ in 0..=n_groups {
        starts.push(read_u32(r)? as usize);
    }
    for w in starts.windows(2) {
        if w[1] < w[0] {
            return Err(CodecError("start pointers are not monotone".into()));
        }
    }
    let mut groups = Vec::with_capacity(n_groups);
    for gi in 0..n_groups {
        let count = starts[gi + 1] - starts[gi];
        let key = wire::decode_value(r)?;
        // Read columns, then transpose into records.
        let mut columns: Vec<Vec<crate::Value>> = Vec::with_capacity(schema.len() - 1);
        for (fi, field) in schema.fields().iter().enumerate() {
            if fi == key_idx {
                continue;
            }
            let mut col = Vec::with_capacity(count);
            for _ in 0..count {
                col.push(wire::decode_field(r, field.ty)?);
            }
            columns.push(col);
        }
        let mut records = Vec::with_capacity(count);
        #[allow(clippy::needless_range_loop)] // ri walks several columns in lockstep
        for ri in 0..count {
            let mut values = Vec::with_capacity(schema.len());
            let mut ci = 0;
            for fi in 0..schema.len() {
                if fi == key_idx {
                    values.push(key.clone());
                } else {
                    values.push(columns[ci][ri].clone());
                    ci += 1;
                }
            }
            records.push(Record::new(values));
        }
        groups.push(PackedRecord { key, records });
    }
    Ok(Batch::Packed(groups))
}

fn read_u32(r: &mut Reader<'_>) -> Result<u32> {
    // Reader has no public u32; decode via a 4-byte integer field.
    match wire::decode_field(r, papar_config::input::FieldType::Integer)? {
        crate::Value::Int(v) => Ok(v as u32),
        _ => unreachable!("Integer field always decodes to Int"),
    }
}

/// Compare compressed vs uncompressed encoded sizes.
///
/// Returns `(compressed, uncompressed)` byte counts. The saving depends on
/// the input (it "highly depends on the input data" per the paper): big
/// groups with wide keys compress well, singleton groups can even expand.
pub fn compression_sizes(batch: &Batch, schema: &Schema, key_idx: usize) -> Result<(usize, usize)> {
    let mut c = Vec::new();
    encode_compressed(batch, schema, key_idx, &mut c)?;
    let plain = wire::encoded_size(batch, schema)?;
    Ok((c.len(), plain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;
    use papar_config::input::FieldType;

    fn grouped_edge_schema() -> Schema {
        Schema::new(vec![
            ("vertex_a", FieldType::Str),
            ("vertex_b", FieldType::Str),
            ("indegree", FieldType::Long),
        ])
    }

    /// The paper's worked example: reducer 0 after step 3 of Figure 11.
    fn figure11_packed() -> Batch {
        Batch::Flat(vec![
            rec!["2", "1", 4i64],
            rec!["3", "1", 4i64],
            rec!["4", "1", 4i64],
            rec!["5", "1", 4i64],
        ])
        .pack_by(1)
        .unwrap()
    }

    #[test]
    fn roundtrip_restores_packed_batch() {
        let schema = grouped_edge_schema();
        let batch = figure11_packed();
        let mut buf = Vec::new();
        encode_compressed(&batch, &schema, 1, &mut buf).unwrap();
        let mut rd = Reader::new(&buf);
        let got = decode_compressed(&mut rd, &schema, 1).unwrap();
        assert_eq!(got, batch);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn paper_example_actually_shrinks() {
        let schema = grouped_edge_schema();
        let batch = figure11_packed();
        let (compressed, plain) = compression_sizes(&batch, &schema, 1).unwrap();
        // The key "1" (5 bytes encoded) is stored once instead of 4 times.
        assert!(
            compressed < plain,
            "expected shrink, got {compressed} >= {plain}"
        );
    }

    #[test]
    fn multiple_groups_roundtrip() {
        let schema = grouped_edge_schema();
        let batch = Batch::Flat(vec![
            rec!["2", "1", 2i64],
            rec!["3", "1", 2i64],
            rec!["1", "2", 1i64],
            rec!["9", "7", 3i64],
            rec!["8", "7", 3i64],
            rec!["5", "7", 3i64],
        ])
        .pack_by(1)
        .unwrap();
        let mut buf = Vec::new();
        encode_compressed(&batch, &schema, 1, &mut buf).unwrap();
        let got = decode_compressed(&mut Reader::new(&buf), &schema, 1).unwrap();
        assert_eq!(got, batch);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let schema = grouped_edge_schema();
        let batch = Batch::Packed(Vec::new());
        let mut buf = Vec::new();
        encode_compressed(&batch, &schema, 1, &mut buf).unwrap();
        let got = decode_compressed(&mut Reader::new(&buf), &schema, 1).unwrap();
        assert_eq!(got, batch);
    }

    #[test]
    fn rejects_flat_batches_and_bad_key_index() {
        let schema = grouped_edge_schema();
        let flat = Batch::Flat(vec![rec!["a", "b", 1i64]]);
        let mut buf = Vec::new();
        assert!(encode_compressed(&flat, &schema, 1, &mut buf).is_err());
        let packed = figure11_packed();
        assert!(encode_compressed(&packed, &schema, 17, &mut buf).is_err());
    }

    #[test]
    fn rejects_inconsistent_member_keys() {
        let schema = grouped_edge_schema();
        let batch = Batch::Packed(vec![PackedRecord {
            key: crate::Value::Str("1".into()),
            records: vec![rec!["2", "1", 1i64], rec!["2", "9", 1i64]],
        }]);
        let mut buf = Vec::new();
        assert!(encode_compressed(&batch, &schema, 1, &mut buf).is_err());
    }

    #[test]
    fn truncated_input_errors() {
        let schema = grouped_edge_schema();
        let batch = figure11_packed();
        let mut buf = Vec::new();
        encode_compressed(&batch, &schema, 1, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(decode_compressed(&mut Reader::new(&buf), &schema, 1).is_err());
    }
}
