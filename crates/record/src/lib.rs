//! Record model and codecs for the PaPar framework.
//!
//! PaPar operators manipulate *records*: flat tuples of typed values whose
//! layout is declared by an InputData configuration (paper Section III-A).
//! This crate provides:
//!
//! * [`value::Value`] — the dynamically-typed field value with a total order
//!   (used as operator keys),
//! * [`schema::Schema`] — the field list of a dataset, extendable by add-on
//!   operators that append attributes (paper Section III-B),
//! * [`record::Record`] — one tuple,
//! * [`batch::Batch`] — a dataset fragment, either in the original flat
//!   format or in the *packed* format produced by the `pack` format operator,
//! * [`packed::PackedRecord`] — a key plus the group of records sharing it,
//! * [`codec`] — readers/writers for the two on-disk formats (fixed-width
//!   binary and delimited text),
//! * [`wire`] — the byte serialization used when records travel between
//!   simulated cluster nodes, and
//! * [`compress`] — the CSR/CSC-style compression of packed data described
//!   in paper Section III-D ("Data Compression"),
//! * [`view`] — borrowed zero-copy views over wire bytes (the reduce hot
//!   path sorts references into shuffle buffers instead of owned pairs), and
//! * [`prefix`] — order-preserving fixed-width key prefixes so sorts and
//!   range partitioning compare raw integers, falling back to full decode
//!   only on prefix ties.

pub mod batch;
pub mod codec;
pub mod compress;
pub mod packed;
pub mod prefix;
pub mod record;
pub mod schema;
pub mod value;
pub mod view;
pub mod wire;

pub use batch::Batch;
pub use packed::PackedRecord;
pub use record::Record;
pub use schema::Schema;
pub use value::Value;

/// Error raised by codecs and wire (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;
