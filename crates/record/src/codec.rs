//! On-disk codecs for the two input formats of paper Section III-A.
//!
//! * [`binary`] — fixed-width binary records starting `start_position`
//!   bytes into the file (the muBLASTP index of Figure 4), and
//! * [`text`] — delimiter-separated text records (the edge lists of
//!   Figure 5).
//!
//! Both directions are provided so a PaPar workflow can write its output
//! partitions "with the same format of input" (paper Section III-C).

pub mod binary {
    //! Fixed-width binary records.

    use crate::{CodecError, Record, Result, Schema, Value};
    use papar_config::input::{FieldType, InputConfig, InputFormat};

    /// Decode every record from `data`, honoring the config's
    /// `start_position` and field widths.
    pub fn read(cfg: &InputConfig, schema: &Schema, data: &[u8]) -> Result<Vec<Record>> {
        if cfg.format != InputFormat::Binary {
            return Err(CodecError(format!(
                "input '{}' is not a binary input",
                cfg.id
            )));
        }
        let width = schema
            .binary_record_width()
            .ok_or_else(|| CodecError("schema has variable-width fields".into()))?;
        let start = cfg.start_position as usize;
        if data.len() < start {
            return Err(CodecError(format!(
                "file is {} bytes but start_position is {start}",
                data.len()
            )));
        }
        let body = &data[start..];
        if !body.len().is_multiple_of(width) {
            return Err(CodecError(format!(
                "trailing {} bytes do not form a whole {width}-byte record",
                body.len() % width
            )));
        }
        let mut out = Vec::with_capacity(body.len() / width);
        let mut pos = 0;
        while pos < body.len() {
            let mut values = Vec::with_capacity(schema.len());
            for f in schema.fields() {
                let w = f.ty.binary_width().expect("checked fixed width");
                let chunk = &body[pos..pos + w];
                values.push(decode_fixed(chunk, f.ty));
                pos += w;
            }
            out.push(Record::new(values));
        }
        Ok(out)
    }

    fn decode_fixed(chunk: &[u8], ty: FieldType) -> Value {
        match ty {
            FieldType::Integer => Value::Int(i32::from_le_bytes(chunk.try_into().unwrap())),
            FieldType::Long => Value::Long(i64::from_le_bytes(chunk.try_into().unwrap())),
            FieldType::Double => Value::Double(f64::from_le_bytes(chunk.try_into().unwrap())),
            FieldType::Str => unreachable!("validated fixed width"),
        }
    }

    /// Encode records after a `start_position`-sized header.
    ///
    /// `header` is copied verbatim when given (it must be exactly
    /// `start_position` bytes); otherwise the header region is zero-filled,
    /// which is how the synthetic muBLASTP databases are written.
    pub fn write(
        cfg: &InputConfig,
        schema: &Schema,
        records: &[Record],
        header: Option<&[u8]>,
    ) -> Result<Vec<u8>> {
        let width = schema
            .binary_record_width()
            .ok_or_else(|| CodecError("schema has variable-width fields".into()))?;
        let start = cfg.start_position as usize;
        let mut out = Vec::with_capacity(start + records.len() * width);
        match header {
            Some(h) if h.len() == start => out.extend_from_slice(h),
            Some(h) => {
                return Err(CodecError(format!(
                    "header is {} bytes, start_position wants {start}",
                    h.len()
                )))
            }
            None => out.resize(start, 0),
        }
        for rec in records {
            if rec.arity() != schema.len() {
                return Err(CodecError(format!(
                    "record arity {} does not match schema arity {}",
                    rec.arity(),
                    schema.len()
                )));
            }
            for (v, f) in rec.values().iter().zip(schema.fields()) {
                crate::wire::encode_field(v, f.ty, &mut out)?;
            }
        }
        Ok(out)
    }
}

pub mod text {
    //! Delimiter-separated text records.

    use crate::{CodecError, Record, Result, Schema, Value};
    use papar_config::input::{InputConfig, InputFormat};

    /// The delimiter plan derived from a text InputData configuration: one
    /// separator after each field; the final one terminates the record.
    /// When the configuration declares one fewer delimiter than fields, a
    /// newline terminator is implied.
    fn delimiter_plan(cfg: &InputConfig, n_fields: usize) -> Result<Vec<String>> {
        let mut delims = cfg.delimiters();
        if delims.len() == n_fields.saturating_sub(1) {
            delims.push("\n".to_string());
        }
        if delims.len() != n_fields {
            return Err(CodecError(format!(
                "input '{}' declares {} delimiters for {} fields (want {} or {})",
                cfg.id,
                cfg.delimiters().len(),
                n_fields,
                n_fields.saturating_sub(1),
                n_fields
            )));
        }
        if delims.iter().any(|d| d.is_empty()) {
            return Err(CodecError("empty delimiter".into()));
        }
        Ok(delims)
    }

    /// Decode every record from `data`.
    ///
    /// Empty trailing content after the last record terminator is accepted
    /// (files customarily end with the terminator); anything else that does
    /// not complete a record is an error.
    pub fn read(cfg: &InputConfig, schema: &Schema, data: &str) -> Result<Vec<Record>> {
        if cfg.format != InputFormat::Text {
            return Err(CodecError(format!(
                "input '{}' is not a text input",
                cfg.id
            )));
        }
        let delims = delimiter_plan(cfg, schema.len())?;
        let mut out = Vec::new();
        let mut rest = data;
        'records: while !rest.is_empty() {
            let mut values = Vec::with_capacity(schema.len());
            let mut cursor = rest;
            for (i, (field, delim)) in schema.fields().iter().zip(&delims).enumerate() {
                match cursor.find(delim.as_str()) {
                    Some(at) => {
                        values.push(Value::parse_typed(&cursor[..at], field.ty)?);
                        cursor = &cursor[at + delim.len()..];
                    }
                    None => {
                        // Only trailing whitespace may remain after the last
                        // complete record.
                        if i == 0 && cursor.trim().is_empty() {
                            break 'records;
                        }
                        return Err(CodecError(format!(
                            "truncated record: missing delimiter {delim:?} for field '{}'",
                            field.name
                        )));
                    }
                }
            }
            out.push(Record::new(values));
            rest = cursor;
        }
        Ok(out)
    }

    /// Encode records in the configured text format.
    pub fn write(cfg: &InputConfig, schema: &Schema, records: &[Record]) -> Result<String> {
        let delims = delimiter_plan(cfg, schema.len())?;
        let mut out = String::new();
        for rec in records {
            if rec.arity() != schema.len() {
                return Err(CodecError(format!(
                    "record arity {} does not match schema arity {}",
                    rec.arity(),
                    schema.len()
                )));
            }
            for (v, d) in rec.values().iter().zip(&delims) {
                let text = v.to_string();
                if text.contains(d.as_str()) {
                    return Err(CodecError(format!(
                        "value {text:?} contains the delimiter {d:?}"
                    )));
                }
                out.push_str(&text);
                out.push_str(d);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rec, Schema};
    use papar_config::input::InputConfig;

    fn blast_cfg() -> InputConfig {
        InputConfig::parse_str(
            r#"
<input id="blast_db" name="n">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>"#,
        )
        .unwrap()
    }

    fn edge_cfg() -> InputConfig {
        InputConfig::parse_str(
            r#"
<input id="graph_edge" name="n">
  <input_format>text</input_format>
  <element>
    <value name="vertex_a" type="String"/>
    <delimiter value="\t"/>
    <value name="vertex_b" type="String"/>
    <delimiter value="\n"/>
  </element>
</input>"#,
        )
        .unwrap()
    }

    #[test]
    fn binary_roundtrip_with_header() {
        let cfg = blast_cfg();
        let schema = Schema::from_input_config(&cfg);
        let records = vec![rec![0, 94, 0, 74], rec![94, 100, 74, 89]];
        let header = [7u8; 32];
        let bytes = binary::write(&cfg, &schema, &records, Some(&header)).unwrap();
        assert_eq!(bytes.len(), 32 + 2 * 16);
        assert_eq!(&bytes[..32], &header);
        let got = binary::read(&cfg, &schema, &bytes).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn binary_zero_header_default() {
        let cfg = blast_cfg();
        let schema = Schema::from_input_config(&cfg);
        let bytes = binary::write(&cfg, &schema, &[rec![1, 2, 3, 4]], None).unwrap();
        assert!(bytes[..32].iter().all(|&b| b == 0));
    }

    #[test]
    fn binary_rejects_truncated_and_misaligned() {
        let cfg = blast_cfg();
        let schema = Schema::from_input_config(&cfg);
        // Shorter than the header.
        assert!(binary::read(&cfg, &schema, &[0u8; 16]).is_err());
        // Header plus a partial record.
        assert!(binary::read(&cfg, &schema, &[0u8; 32 + 10]).is_err());
        // Wrong-size explicit header.
        assert!(binary::write(&cfg, &schema, &[], Some(&[0u8; 8])).is_err());
    }

    #[test]
    fn binary_empty_body_is_ok() {
        let cfg = blast_cfg();
        let schema = Schema::from_input_config(&cfg);
        let got = binary::read(&cfg, &schema, &[0u8; 32]).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn text_roundtrip_edges() {
        let cfg = edge_cfg();
        let schema = Schema::from_input_config(&cfg);
        let records = vec![rec!["2", "1"], rec!["3", "1"], rec!["1", "2"]];
        let s = text::write(&cfg, &schema, &records).unwrap();
        assert_eq!(s, "2\t1\n3\t1\n1\t2\n");
        let got = text::read(&cfg, &schema, &s).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn text_rejects_truncated_record() {
        let cfg = edge_cfg();
        let schema = Schema::from_input_config(&cfg);
        assert!(text::read(&cfg, &schema, "2\t1\n3").is_err());
        assert!(text::read(&cfg, &schema, "2\n").is_err());
    }

    #[test]
    fn text_accepts_trailing_whitespace_only() {
        let cfg = edge_cfg();
        let schema = Schema::from_input_config(&cfg);
        let got = text::read(&cfg, &schema, "2\t1\n  ").unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn text_numeric_fields_parse() {
        let cfg = InputConfig::parse_str(
            r#"
<input id="num" name="n">
  <input_format>text</input_format>
  <element>
    <value name="id" type="integer"/>
    <delimiter value=","/>
    <value name="score" type="double"/>
    <delimiter value="\n"/>
  </element>
</input>"#,
        )
        .unwrap();
        let schema = Schema::from_input_config(&cfg);
        let got = text::read(&cfg, &schema, "5,1.5\n6,2.25\n").unwrap();
        assert_eq!(got, vec![rec![5, 1.5], rec![6, 2.25]]);
        assert!(text::read(&cfg, &schema, "x,1.5\n").is_err());
    }

    #[test]
    fn text_write_rejects_value_containing_delimiter() {
        let cfg = edge_cfg();
        let schema = Schema::from_input_config(&cfg);
        assert!(text::write(&cfg, &schema, &[rec!["a\tb", "c"]]).is_err());
    }

    #[test]
    fn text_implied_newline_terminator() {
        let cfg = InputConfig::parse_str(
            r#"
<input id="pair" name="n">
  <input_format>text</input_format>
  <element>
    <value name="a" type="String"/>
    <delimiter value=" "/>
    <value name="b" type="String"/>
  </element>
</input>"#,
        )
        .unwrap();
        let schema = Schema::from_input_config(&cfg);
        let got = text::read(&cfg, &schema, "x y\nz w\n").unwrap();
        assert_eq!(got, vec![rec!["x", "y"], rec!["z", "w"]]);
    }

    #[test]
    fn wrong_format_cross_calls_error() {
        let bcfg = blast_cfg();
        let bschema = Schema::from_input_config(&bcfg);
        let tcfg = edge_cfg();
        let tschema = Schema::from_input_config(&tcfg);
        assert!(text::read(&bcfg, &bschema, "x").is_err());
        assert!(binary::read(&tcfg, &tschema, &[]).is_err());
    }
}
