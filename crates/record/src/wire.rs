//! Wire serialization: the byte format records use when they travel between
//! simulated cluster nodes.
//!
//! The shuffle of the MapReduce substrate moves *bytes*, exactly like MR-MPI
//! moves MPI messages, so communication volume is measurable and the CSR/CSC
//! compression of paper Section III-D has something real to compress.
//!
//! Two encodings exist:
//!
//! * **schema-driven** ([`encode_record`]/[`decode_record`]) — no per-field
//!   tags; field types come from the schema. Fixed-width fields take exactly
//!   their width; strings are `u32` length-prefixed.
//! * **tagged** ([`encode_value`]/[`decode_value`]) — a 1-byte type tag then
//!   the payload; used for group keys and reduce keys whose type is not
//!   described by the record schema.
//!
//! All integers are little-endian.

use papar_config::input::FieldType;

use crate::packed::PackedRecord;
use crate::record::Record;
use crate::value::Value;
use crate::{Batch, CodecError, Result, Schema};

/// A cursor over a byte slice for decoding.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Absolute byte offset of the cursor within the wrapped slice (public so
    /// view layers can record where a value starts without copying it).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The whole wrapped slice, independent of cursor position.
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "truncated buffer: needed {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte (public for framing layers built on this module).
    pub fn read_u8(&mut self) -> Result<u8> {
        self.u8()
    }

    /// Read a little-endian `u32` (public for framing layers).
    pub fn read_u32(&mut self) -> Result<u32> {
        self.u32()
    }

    /// Read a little-endian `u64` (public for framing layers — manifest
    /// records store checksums and fingerprints at this width).
    pub fn read_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read exactly `n` raw bytes (public for framing layers — manifest
    /// records carry length-prefixed strings and nested payloads).
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError("invalid UTF-8".into()))
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// FNV-1a 64-bit checksum of a byte slice — the integrity tag shuffle
/// transfers carry so in-flight corruption is detected instead of decoded
/// into garbage. FNV is not cryptographic; it only needs to catch bit flips.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Wrap a payload in a checksummed frame: `[len u32][fnv1a u64][payload]`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode one frame, verifying its checksum; errors on truncation or a
/// checksum mismatch (i.e. corruption anywhere in the payload).
pub fn decode_frame<'a>(r: &mut Reader<'a>) -> Result<&'a [u8]> {
    let len = r.u32()? as usize;
    let expect = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
    let payload = r.take(len)?;
    let got = checksum(payload);
    if got != expect {
        return Err(CodecError(format!(
            "frame checksum mismatch: stored {expect:#018x}, computed {got:#018x}"
        )));
    }
    Ok(payload)
}

/// Encode one value according to its declared field type (schema-driven).
pub fn encode_field(v: &Value, ty: FieldType, buf: &mut Vec<u8>) -> Result<()> {
    match (ty, v) {
        (FieldType::Integer, Value::Int(x)) => buf.extend_from_slice(&x.to_le_bytes()),
        (FieldType::Long, Value::Long(x)) => buf.extend_from_slice(&x.to_le_bytes()),
        (FieldType::Double, Value::Double(x)) => buf.extend_from_slice(&x.to_le_bytes()),
        (FieldType::Str, Value::Str(s)) => {
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        (ty, v) => {
            return Err(CodecError(format!(
                "value {v} does not match declared field type {ty:?}"
            )))
        }
    }
    Ok(())
}

/// Decode one value according to its declared field type (schema-driven).
pub fn decode_field(r: &mut Reader<'_>, ty: FieldType) -> Result<Value> {
    Ok(match ty {
        FieldType::Integer => Value::Int(r.i32()?),
        FieldType::Long => Value::Long(r.i64()?),
        FieldType::Double => Value::Double(r.f64()?),
        FieldType::Str => Value::Str(r.str()?),
    })
}

/// Encode a record without tags; the schema supplies the field types.
pub fn encode_record(rec: &Record, schema: &Schema, buf: &mut Vec<u8>) -> Result<()> {
    if rec.arity() != schema.len() {
        return Err(CodecError(format!(
            "record arity {} does not match schema arity {}",
            rec.arity(),
            schema.len()
        )));
    }
    for (v, f) in rec.values().iter().zip(schema.fields()) {
        encode_field(v, f.ty, buf)?;
    }
    Ok(())
}

/// Decode a record using the schema's field types.
pub fn decode_record(r: &mut Reader<'_>, schema: &Schema) -> Result<Record> {
    let mut values = Vec::with_capacity(schema.len());
    for f in schema.fields() {
        values.push(decode_field(r, f.ty)?);
    }
    Ok(Record::new(values))
}

/// Encode a value with a 1-byte type tag (for keys of unknown schema).
pub fn encode_value(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Int(x) => {
            buf.push(0);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Long(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode a tagged value.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Int(r.i32()?),
        1 => Value::Long(r.i64()?),
        2 => Value::Double(r.f64()?),
        3 => Value::Str(r.str()?),
        t => return Err(CodecError(format!("unknown value tag {t}"))),
    })
}

/// Advance past one tagged value without decoding or allocating.
pub fn skip_value(r: &mut Reader<'_>) -> Result<()> {
    match r.u8()? {
        0 => r.take(4).map(|_| ()),
        1 | 2 => r.take(8).map(|_| ()),
        3 => {
            let len = r.u32()? as usize;
            r.take(len).map(|_| ())
        }
        t => Err(CodecError(format!("unknown value tag {t}"))),
    }
}

/// Advance past one schema-driven field without decoding or allocating.
pub fn skip_field(r: &mut Reader<'_>, ty: FieldType) -> Result<()> {
    match ty.binary_width() {
        Some(w) => r.take(w).map(|_| ()),
        None => {
            let len = r.u32()? as usize;
            r.take(len).map(|_| ())
        }
    }
}

/// Advance past one schema-driven record without decoding or allocating.
/// Fixed-width schemas skip in a single bounds check.
pub fn skip_record(r: &mut Reader<'_>, schema: &Schema) -> Result<()> {
    if let Some(w) = schema.binary_record_width() {
        return r.take(w).map(|_| ());
    }
    for f in schema.fields() {
        skip_field(r, f.ty)?;
    }
    Ok(())
}

const BATCH_FLAT: u8 = 0;
const BATCH_PACKED: u8 = 1;

/// Encode a whole batch (format tag + entry count + entries).
pub fn encode_batch(batch: &Batch, schema: &Schema, buf: &mut Vec<u8>) -> Result<()> {
    match batch {
        Batch::Flat(records) => {
            buf.push(BATCH_FLAT);
            put_u32(buf, records.len() as u32);
            for rec in records {
                encode_record(rec, schema, buf)?;
            }
        }
        Batch::Packed(groups) => {
            buf.push(BATCH_PACKED);
            put_u32(buf, groups.len() as u32);
            for g in groups {
                encode_value(&g.key, buf);
                put_u32(buf, g.records.len() as u32);
                for rec in &g.records {
                    encode_record(rec, schema, buf)?;
                }
            }
        }
    }
    Ok(())
}

/// Decode a whole batch.
pub fn decode_batch(r: &mut Reader<'_>, schema: &Schema) -> Result<Batch> {
    match r.u8()? {
        BATCH_FLAT => {
            let n = r.u32()? as usize;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(decode_record(r, schema)?);
            }
            Ok(Batch::Flat(records))
        }
        BATCH_PACKED => {
            let n = r.u32()? as usize;
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                let key = decode_value(r)?;
                let m = r.u32()? as usize;
                let mut records = Vec::with_capacity(m);
                for _ in 0..m {
                    records.push(decode_record(r, schema)?);
                }
                groups.push(PackedRecord { key, records });
            }
            Ok(Batch::Packed(groups))
        }
        t => Err(CodecError(format!("unknown batch tag {t}"))),
    }
}

/// Convenience: encoded size of a batch in bytes.
pub fn encoded_size(batch: &Batch, schema: &Schema) -> Result<usize> {
    let mut buf = Vec::new();
    encode_batch(batch, schema, &mut buf)?;
    Ok(buf.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    fn blast_schema() -> Schema {
        Schema::new(vec![
            ("seq_start", FieldType::Integer),
            ("seq_size", FieldType::Integer),
            ("desc_start", FieldType::Integer),
            ("desc_size", FieldType::Integer),
        ])
    }

    fn edge_schema() -> Schema {
        Schema::new(vec![
            ("vertex_a", FieldType::Str),
            ("vertex_b", FieldType::Str),
        ])
    }

    #[test]
    fn record_roundtrip_fixed_width() {
        let schema = blast_schema();
        let r0 = rec![293, 91, 272, 107];
        let mut buf = Vec::new();
        encode_record(&r0, &schema, &mut buf).unwrap();
        assert_eq!(buf.len(), 16);
        let mut rd = Reader::new(&buf);
        assert_eq!(decode_record(&mut rd, &schema).unwrap(), r0);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn record_roundtrip_strings() {
        let schema = edge_schema();
        let r0 = rec!["v12", "v3456"];
        let mut buf = Vec::new();
        encode_record(&r0, &schema, &mut buf).unwrap();
        let mut rd = Reader::new(&buf);
        assert_eq!(decode_record(&mut rd, &schema).unwrap(), r0);
    }

    #[test]
    fn tagged_value_roundtrip() {
        for v in [
            Value::Int(-9),
            Value::Long(1 << 40),
            Value::Double(2.5),
            Value::Str("hello".into()),
        ] {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf);
            let mut rd = Reader::new(&buf);
            assert_eq!(decode_value(&mut rd).unwrap(), v);
        }
    }

    #[test]
    fn batch_roundtrip_flat_and_packed() {
        let schema = edge_schema();
        let rows = vec![rec!["2", "1"], rec!["3", "1"], rec!["1", "2"]];
        let flat = Batch::Flat(rows.clone());
        let mut buf = Vec::new();
        encode_batch(&flat, &schema, &mut buf).unwrap();
        let got = decode_batch(&mut Reader::new(&buf), &schema).unwrap();
        assert_eq!(got, flat);

        let packed = Batch::Flat(rows).pack_by(1).unwrap();
        let mut buf2 = Vec::new();
        encode_batch(&packed, &schema, &mut buf2).unwrap();
        let got2 = decode_batch(&mut Reader::new(&buf2), &schema).unwrap();
        assert_eq!(got2, packed);
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let schema = blast_schema();
        let mut buf = Vec::new();
        encode_record(&rec![1, 2, 3, 4], &schema, &mut buf).unwrap();
        buf.truncate(10);
        let mut rd = Reader::new(&buf);
        assert!(decode_record(&mut rd, &schema).is_err());
        assert!(decode_value(&mut Reader::new(&[])).is_err());
        assert!(decode_batch(&mut Reader::new(&[9]), &schema).is_err());
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let schema = blast_schema();
        let mut buf = Vec::new();
        assert!(encode_record(&rec!["oops", 1, 2, 3], &schema, &mut buf).is_err());
        assert!(encode_record(&rec![1, 2], &schema, &mut buf).is_err());
    }

    #[test]
    fn encoded_size_reports_bytes() {
        let schema = blast_schema();
        let b = Batch::Flat(vec![rec![1, 2, 3, 4], rec![5, 6, 7, 8]]);
        // 1 tag + 4 count + 2 * 16 payload.
        assert_eq!(encoded_size(&b, &schema).unwrap(), 1 + 4 + 32);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b""), 0xCBF2_9CE4_8422_2325, "FNV-1a offset basis");
        assert_eq!(checksum(b"papar"), checksum(b"papar"));
        assert_ne!(checksum(b"papar"), checksum(b"parap"), "order matters");
        // Every single-byte flip of a small payload must change the sum.
        let payload = b"shuffle bytes".to_vec();
        let clean = checksum(&payload);
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0xFF;
            assert_ne!(checksum(&bad), clean, "flip at {i} went unnoticed");
        }
    }

    #[test]
    fn frame_roundtrip_and_corruption_detection() {
        let payload = b"the quick brown fragment".to_vec();
        let mut framed = Vec::new();
        encode_frame(&payload, &mut framed);
        assert_eq!(framed.len(), 4 + 8 + payload.len());
        let back = decode_frame(&mut Reader::new(&framed)).unwrap();
        assert_eq!(back, &payload[..]);

        // An empty payload frames fine too.
        let mut empty = Vec::new();
        encode_frame(&[], &mut empty);
        assert_eq!(
            decode_frame(&mut Reader::new(&empty)).unwrap(),
            &[] as &[u8]
        );

        // Flipping any payload byte must be detected.
        for i in 12..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            let err = decode_frame(&mut Reader::new(&bad)).unwrap_err();
            assert!(err.to_string().contains("checksum mismatch"), "{err}");
        }
        // Truncation errors out instead of panicking.
        for cut in 0..framed.len() {
            assert!(decode_frame(&mut Reader::new(&framed[..cut])).is_err());
        }
    }

    #[test]
    fn frames_concatenate() {
        let mut buf = Vec::new();
        encode_frame(b"one", &mut buf);
        encode_frame(b"two!", &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_frame(&mut r).unwrap(), b"one");
        assert_eq!(decode_frame(&mut r).unwrap(), b"two!");
        assert_eq!(r.remaining(), 0);
    }
}
