//! Records: flat tuples of typed values.

use crate::value::Value;
use crate::{CodecError, Result, Schema};

/// One record — a tuple of values laid out according to some [`Schema`].
///
/// Records do not carry their schema; datasets do. That keeps the per-record
/// footprint small, which matters because the partitioning workloads move
/// tens of millions of records through the shuffle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from its values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// The values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a field index.
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value at a field index, with a descriptive error.
    pub fn require(&self, idx: usize) -> Result<&Value> {
        self.values.get(idx).ok_or_else(|| {
            CodecError(format!(
                "field index {idx} out of range for record of arity {}",
                self.values.len()
            ))
        })
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Append an attribute value (add-on operators).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Remove and return the value at `idx` (schema `without_field`).
    pub fn remove(&mut self, idx: usize) -> Value {
        self.values.remove(idx)
    }

    /// Overwrite the value at `idx`.
    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// Consume the record, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// True when every value's runtime type matches the schema.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.len()
            && self
                .values
                .iter()
                .zip(schema.fields())
                .all(|(v, f)| v.field_type() == f.ty)
    }

    /// Render the record in the paper's figure notation: `{94, 100, 74, 89}`.
    pub fn display_tuple(&self) -> String {
        let inner = self
            .values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{inner}}}")
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

/// Build a record from anything convertible to values.
///
/// ```
/// use papar_record::{rec, Value};
/// let r = rec![0, 94, 0, 74];
/// assert_eq!(r.value(1), Some(&Value::Int(94)));
/// ```
#[macro_export]
macro_rules! rec {
    ($($v:expr),* $(,)?) => {
        $crate::Record::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use papar_config::input::FieldType;

    #[test]
    fn construction_and_access() {
        let r = rec![0, 94, 0, 74];
        assert_eq!(r.arity(), 4);
        assert_eq!(r.value(1), Some(&Value::Int(94)));
        assert_eq!(r.value(9), None);
        assert!(r.require(9).is_err());
    }

    #[test]
    fn mutation() {
        let mut r = rec!["v1", "v2"];
        r.push(Value::Long(3));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.remove(2), Value::Long(3));
        r.set(0, Value::Str("v9".into()));
        assert_eq!(r.value(0).unwrap().as_str(), Some("v9"));
    }

    #[test]
    fn conformance() {
        let schema = Schema::new(vec![("a", FieldType::Integer), ("b", FieldType::Str)]);
        assert!(rec![1, "x"].conforms_to(&schema));
        assert!(!rec![1, 2].conforms_to(&schema));
        assert!(!rec![1].conforms_to(&schema));
    }

    #[test]
    fn display_matches_paper_notation() {
        // Figure 1's first index entry.
        assert_eq!(rec![0, 94, 0, 74].display_tuple(), "{0, 94, 0, 74}");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(rec![1, 5] < rec![2, 0]);
        assert!(rec![1, 5] < rec![1, 6]);
        assert_eq!(rec![3, 3], rec![3, 3]);
    }
}
