//! Dynamically-typed field values.

use papar_config::input::FieldType;
use std::cmp::Ordering;
use std::fmt;

use crate::{CodecError, Result};

/// One field value of a record.
///
/// Values carry their own runtime type; the schema says which type each
/// column is supposed to have. `Value` implements a *total* order (doubles
/// compare with `f64::total_cmp`) so any field can serve as a sort/group
/// key, which is exactly how the paper's operators use fields.
#[derive(Debug, Clone)]
pub enum Value {
    /// 32-bit signed integer (`integer`).
    Int(i32),
    /// 64-bit signed integer (`long`).
    Long(i64),
    /// 64-bit float (`double`).
    Double(f64),
    /// UTF-8 string (`String`).
    Str(String),
}

impl PartialEq for Value {
    /// Equality is defined through [`Ord::cmp`] so that `Eq`, `Ord` and
    /// `Hash` stay mutually consistent (e.g. `Int(7) == Long(7)`, and NaN
    /// equals itself under the total order).
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: same-type values compare naturally (integers across
    /// widths compare numerically); across types the order is
    /// numeric < string, which only matters for defensive determinism —
    /// well-typed datasets never mix types within a column.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Long(a), Long(b)) => a.cmp(b),
            (Int(a), Long(b)) => i64::from(*a).cmp(b),
            (Long(a), Int(b)) => a.cmp(&i64::from(*b)),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => f64::from(*a).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&f64::from(*b)),
            (Long(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Long(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                i64::from(*v).hash(state);
            }
            Value::Long(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl Value {
    /// Runtime type of this value.
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::Int(_) => FieldType::Integer,
            Value::Long(_) => FieldType::Long,
            Value::Double(_) => FieldType::Double,
            Value::Str(_) => FieldType::Str,
        }
    }

    /// Parse a text token according to the declared type.
    pub fn parse_typed(text: &str, ty: FieldType) -> Result<Value> {
        match ty {
            FieldType::Integer => text
                .trim()
                .parse::<i32>()
                .map(Value::Int)
                .map_err(|_| CodecError(format!("'{text}' is not an integer"))),
            FieldType::Long => text
                .trim()
                .parse::<i64>()
                .map(Value::Long)
                .map_err(|_| CodecError(format!("'{text}' is not a long"))),
            FieldType::Double => text
                .trim()
                .parse::<f64>()
                .map(Value::Double)
                .map_err(|_| CodecError(format!("'{text}' is not a double"))),
            FieldType::Str => Ok(Value::Str(text.to_string())),
        }
    }

    /// Numeric view as i64, when the value is an integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(i64::from(*v)),
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view as f64 for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(f64::from(*v)),
            Value::Long(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// String view, when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Bytes this value occupies in the fixed-width binary file format, if
    /// it has a fixed width.
    pub fn binary_width(&self) -> Option<usize> {
        self.field_type().binary_width()
    }

    /// A process-independent 64-bit hash (FNV-1a over the value's tagged
    /// bytes). `Int` and `Long` holding the same number hash identically,
    /// consistent with [`PartialEq`].
    ///
    /// Both PaPar's hash-based distribution policies and the native
    /// application partitioners use this function, so "PaPar produces the
    /// same partitions" is checkable bit-for-bit.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        };
        match self {
            Value::Int(v) => {
                eat(0);
                for b in i64::from(*v).to_le_bytes() {
                    eat(b);
                }
            }
            Value::Long(v) => {
                eat(0);
                for b in v.to_le_bytes() {
                    eat(b);
                }
            }
            Value::Double(v) => {
                eat(1);
                for b in v.to_bits().to_le_bytes() {
                    eat(b);
                }
            }
            Value::Str(s) => {
                eat(2);
                for &b in s.as_bytes() {
                    eat(b);
                }
            }
        }
        h
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(3) < Value::Int(5));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Double(1.5) < Value::Double(2.0));
        assert!(Value::Long(-1) < Value::Long(0));
    }

    #[test]
    fn ordering_across_integer_widths_is_numeric() {
        assert_eq!(Value::Int(7).cmp(&Value::Long(7)), Ordering::Equal);
        assert!(Value::Int(7) < Value::Long(8));
        assert!(Value::Long(100) > Value::Int(99));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        let one = Value::Double(1.0);
        // total_cmp puts NaN above all ordinary values; what matters here is
        // that the comparison is deterministic and never panics.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_ne!(nan.cmp(&one), Ordering::Equal);
    }

    #[test]
    fn parse_typed_roundtrips() {
        assert_eq!(
            Value::parse_typed("42", FieldType::Integer).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_typed("-7", FieldType::Long).unwrap(),
            Value::Long(-7)
        );
        assert_eq!(
            Value::parse_typed("2.5", FieldType::Double).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(
            Value::parse_typed("v12", FieldType::Str).unwrap(),
            Value::Str("v12".into())
        );
        assert!(Value::parse_typed("abc", FieldType::Integer).is_err());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Long(9).as_i64(), Some(9));
        assert_eq!(Value::Double(1.5).as_i64(), None);
        assert_eq!(Value::Double(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn display_matches_text_format() {
        assert_eq!(Value::Int(94).to_string(), "94");
        assert_eq!(Value::Str("v1".into()).to_string(), "v1");
    }

    #[test]
    fn hash_consistent_with_eq_across_widths() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        // Int(7) and Long(7) compare equal under cmp, so they must hash equal
        // for use as grouping keys.
        assert_eq!(h(&Value::Int(7)), h(&Value::Long(7)));
    }
}
