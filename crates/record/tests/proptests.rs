//! Property tests for the record model: total-order laws for `Value`,
//! codec round-trips, and pack/compress invariants.

use papar_record::codec;
use papar_record::{prefix, rec, Record, Schema, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Double),
        "[ -~]{0,16}".prop_map(Value::Str),
    ]
}

/// Broader key strategy for the prefix-agreement property: biased toward
/// collisions (ties) and edge shapes — negative ints, Longs around the
/// 2^53 exactness boundary, empty and multi-byte-UTF-8 strings, strings
/// sharing a long common prefix.
fn key_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        (-16i32..16).prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        ((1i64 << 53) - 4..(1i64 << 53) + 4).prop_map(Value::Long),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Double),
        (-4i64..4).prop_map(|x| Value::Double(x as f64)),
        "[ -~]{0,16}".prop_map(Value::Str),
        "(müll|straße|)[a-b]{0,12}".prop_map(Value::Str),
        "common-prefix-[a-c]{0,4}".prop_map(Value::Str),
        Just(Value::Str(String::new())),
    ]
}

proptest! {
    /// Value's Ord is a total order: antisymmetric, transitive, and total.
    #[test]
    fn value_total_order_laws(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering::*;
        // Totality + antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (check the <= relation).
        if a.cmp(&b) != Greater && b.cmp(&c) != Greater {
            prop_assert_ne!(a.cmp(&c), Greater, "{:?} <= {:?} <= {:?}", a, b, c);
        }
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), Equal);
    }

    /// Text codec round-trips arbitrary integer/double rows.
    #[test]
    fn text_codec_roundtrip(rows in prop::collection::vec((any::<i32>(), any::<i32>()), 0..50)) {
        let cfg = papar_config::InputConfig::parse_str(r#"
<input id="pair" name="n">
  <input_format>text</input_format>
  <element>
    <value name="a" type="integer"/>
    <delimiter value=","/>
    <value name="b" type="integer"/>
    <delimiter value="\n"/>
  </element>
</input>"#).unwrap();
        let schema = Schema::from_input_config(&cfg);
        let records: Vec<Record> = rows.iter().map(|&(a, b)| rec![a, b]).collect();
        let text = codec::text::write(&cfg, &schema, &records).unwrap();
        let back = codec::text::read(&cfg, &schema, &text).unwrap();
        prop_assert_eq!(back, records);
    }

    /// The order-preserving key prefix agrees with `Value::cmp`: strict
    /// prefix inequality implies the same strict value inequality, and a
    /// prefix tie with both sides exact implies equal values — the exact
    /// contract the engine's zero-copy sort relies on (ties with an
    /// inexact side are re-checked from decoded keys).
    #[test]
    fn prefix_order_agrees_with_value_cmp(a in key_strategy(), b in key_strategy()) {
        use std::cmp::Ordering::*;
        let pa = prefix::of_value(&a);
        let pb = prefix::of_value(&b);
        match pa.packed66().cmp(&pb.packed66()) {
            Less => prop_assert_eq!(a.cmp(&b), Less, "{:?} vs {:?}", a, b),
            Greater => prop_assert_eq!(a.cmp(&b), Greater, "{:?} vs {:?}", a, b),
            Equal => {
                if pa.exact && pb.exact {
                    prop_assert_eq!(a.cmp(&b), Equal, "{:?} vs {:?}", a, b);
                }
                // An inexact tie promises nothing; the engine decodes.
            }
        }
        // Exactness round-trip: an exact prefix must reproduce under the
        // wire codec (`from_wire` is tested equivalent in the unit tests).
        prop_assert_eq!(prefix::of_value(&a), pa);
    }

    /// Binary codec round-trips arbitrary mixed-width rows.
    #[test]
    fn binary_codec_roundtrip(rows in prop::collection::vec((any::<i32>(), any::<i64>()), 0..50)) {
        let cfg = papar_config::InputConfig::parse_str(r#"
<input id="mixed" name="n">
  <input_format>binary</input_format>
  <start_position>8</start_position>
  <element>
    <value name="a" type="integer"/>
    <value name="b" type="long"/>
  </element>
</input>"#).unwrap();
        let schema = Schema::from_input_config(&cfg);
        let records: Vec<Record> = rows.iter().map(|&(a, b)| rec![a, b]).collect();
        let bytes = codec::binary::write(&cfg, &schema, &records, None).unwrap();
        prop_assert_eq!(bytes.len(), 8 + rows.len() * 12);
        let back = codec::binary::read(&cfg, &schema, &bytes).unwrap();
        prop_assert_eq!(back, records);
    }
}
