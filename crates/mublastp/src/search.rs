//! The BLAST search cost model used to reproduce Figure 12.
//!
//! Figure 12 measures muBLASTP *search* time under two partitionings. What
//! determines that time is load balance: every MPI rank searches one
//! database partition against the whole query batch, and the job finishes
//! when the slowest rank does. The per-partition cost is a function of the
//! subject-length distribution inside the partition, which is exactly what
//! the partitioning policy controls — so a calibrated cost model preserves
//! the figure's comparison without running a real aligner.
//!
//! The model follows the three phases of index-based BLAST search:
//!
//! * **scan** — walking the database index costs O(subject length),
//! * **seeding** — the number of seed hits grows with
//!   `query_len * subject_len`,
//! * **extension** — each promising seed triggers a banded alignment whose
//!   cost grows with `min(query_len, subject_len)`.
//!
//! The extension term makes cost *superlinearly* sensitive to long
//! subjects when queries are long — reproducing the paper's observation
//! that "the skew is more significant for the longer queries because they
//! have relatively longer search time" (the cyclic-vs-block gap widens
//! from batch "100" to batch "500").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dbformat::{BlastDb, IndexEntry};

/// A batch of query sequences (only lengths matter to the model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBatch {
    /// Batch label ("100", "500", "mixed").
    pub name: String,
    /// Query lengths.
    pub lengths: Vec<usize>,
}

impl QueryBatch {
    /// Build a batch the way the paper does: randomly pick `count`
    /// sequences from the database, optionally restricted to a maximum
    /// length ("in the batch 100 and 500, all sequences are less than 100
    /// and 500 letters, respectively; for the mixed batch, 100 sequences
    /// without the limitation of length").
    /// Sampling is length-weighted (probability proportional to sequence
    /// length), so a batch *spans* its permitted bracket instead of
    /// collapsing onto the database's short-sequence mode — batch "500"
    /// genuinely contains longer queries than batch "100", which is what
    /// lets Figure 12's "skew is more significant for the longer queries"
    /// observation reproduce.
    pub fn from_db(
        name: &str,
        db: &BlastDb,
        count: usize,
        max_len: Option<usize>,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let eligible: Vec<usize> = db
            .index
            .iter()
            .map(|e| e.seq_size as usize)
            .filter(|&l| max_len.is_none_or(|m| l < m))
            .collect();
        let lengths = if eligible.is_empty() {
            Vec::new()
        } else {
            // Cumulative length weights for proportional sampling.
            let mut cum = Vec::with_capacity(eligible.len());
            let mut total = 0u64;
            for &l in &eligible {
                total += l as u64;
                cum.push(total);
            }
            (0..count)
                .map(|_| {
                    let x = rng.gen_range(0..total);
                    let idx = cum.partition_point(|&c| c <= x);
                    eligible[idx]
                })
                .collect()
        };
        QueryBatch {
            name: name.to_string(),
            lengths,
        }
    }

    /// The paper's three standard batches for one database.
    pub fn standard_batches(db: &BlastDb, seed: u64) -> Vec<QueryBatch> {
        vec![
            QueryBatch::from_db("100", db, 100, Some(100), seed),
            QueryBatch::from_db("500", db, 100, Some(500), seed.wrapping_add(1)),
            QueryBatch::from_db("mixed", db, 100, None, seed.wrapping_add(2)),
        ]
    }
}

/// Calibration constants of the cost model (arbitrary time units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchCostModel {
    /// Index-scan cost per subject residue.
    pub scan: f64,
    /// Seeding cost per (query residue x subject residue) cell.
    pub seed: f64,
    /// Extension cost coefficient (multiplies `q * s * min(q, s)`).
    pub extend: f64,
}

impl Default for SearchCostModel {
    fn default() -> Self {
        SearchCostModel {
            scan: 1.0,
            seed: 2e-2,
            extend: 5e-5,
        }
    }
}

impl SearchCostModel {
    /// Cost of searching one query of length `q` against one subject of
    /// length `s`.
    pub fn pair_cost(&self, q: usize, s: usize) -> f64 {
        let (qf, sf) = (q as f64, s as f64);
        let band = q.min(s) as f64;
        self.scan * sf + self.seed * qf.sqrt() * sf + self.extend * qf * sf * band
    }

    /// Cost of searching a whole batch against one partition (given its
    /// subject lengths).
    pub fn partition_cost(&self, batch: &QueryBatch, subject_lengths: &[usize]) -> f64 {
        // Group identical query lengths would be an optimization; the
        // experiments use 100 queries so the double loop is fine.
        subject_lengths
            .iter()
            .map(|&s| {
                batch
                    .lengths
                    .iter()
                    .map(|&q| self.pair_cost(q, s))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Per-partition costs for a partitioning of index entries.
    pub fn partition_costs(&self, batch: &QueryBatch, partitions: &[Vec<IndexEntry>]) -> Vec<f64> {
        partitions
            .iter()
            .map(|p| {
                let lens: Vec<usize> = p.iter().map(|e| e.seq_size as usize).collect();
                self.partition_cost(batch, &lens)
            })
            .collect()
    }

    /// The search makespan: one rank per partition, all concurrent, so the
    /// job finishes with the slowest partition.
    pub fn makespan(&self, batch: &QueryBatch, partitions: &[Vec<IndexEntry>]) -> f64 {
        self.partition_costs(batch, partitions)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{self, BaselinePolicy};
    use crate::dbgen::DbSpec;

    #[test]
    fn pair_cost_is_monotone() {
        let m = SearchCostModel::default();
        assert!(m.pair_cost(100, 200) > m.pair_cost(100, 100));
        assert!(m.pair_cost(200, 100) > m.pair_cost(100, 100));
        assert!(m.pair_cost(0, 0) == 0.0);
    }

    #[test]
    fn batches_respect_length_limits() {
        let db = DbSpec::nr_scaled(3000, 21).generate();
        let batches = QueryBatch::standard_batches(&db, 99);
        assert_eq!(batches.len(), 3);
        assert!(batches[0].lengths.iter().all(|&l| l < 100));
        assert!(batches[1].lengths.iter().all(|&l| l < 500));
        assert_eq!(batches[2].lengths.len(), 100);
        // The mixed batch should occasionally include something long.
        assert!(batches[2].lengths.iter().any(|&l| l >= 100));
    }

    #[test]
    fn batch_generation_is_deterministic() {
        let db = DbSpec::env_nr_scaled(1000, 4).generate();
        let a = QueryBatch::from_db("100", &db, 100, Some(100), 7);
        let b = QueryBatch::from_db("100", &db, 100, Some(100), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn cyclic_partitioning_beats_block_on_clustered_db() {
        // The Figure 12 shape: on a length-clustered database the block
        // policy's slowest partition is clearly slower than cyclic's.
        let db = DbSpec::env_nr_scaled(8000, 33).generate();
        let cyclic = baseline::partition(&db.index, 16, BaselinePolicy::Cyclic);
        let block = baseline::partition(&db.index, 16, BaselinePolicy::Block);
        let model = SearchCostModel::default();
        for batch in QueryBatch::standard_batches(&db, 5) {
            let t_cyc = model.makespan(&batch, &cyclic.partitions);
            let t_blk = model.makespan(&batch, &block.partitions);
            assert!(
                t_blk > t_cyc * 1.02,
                "batch {}: block {t_blk} should exceed cyclic {t_cyc}",
                batch.name
            );
        }
    }

    #[test]
    fn gap_widens_for_longer_queries() {
        // "the cyclic policy can achieve more performance benefits for the
        // larger batch" — batch 500's block/cyclic ratio exceeds batch
        // 100's.
        let db = DbSpec::nr_scaled(8000, 44).generate();
        let cyclic = baseline::partition(&db.index, 16, BaselinePolicy::Cyclic);
        let block = baseline::partition(&db.index, 16, BaselinePolicy::Block);
        let model = SearchCostModel::default();
        let ratio = |name: &str, max: Option<usize>, seed: u64| {
            let batch = QueryBatch::from_db(name, &db, 100, max, seed);
            model.makespan(&batch, &block.partitions) / model.makespan(&batch, &cyclic.partitions)
        };
        let r100 = ratio("100", Some(100), 9);
        let r500 = ratio("500", Some(500), 9);
        assert!(
            r500 > r100,
            "batch 500 ratio {r500} should exceed batch 100 ratio {r100}"
        );
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let m = SearchCostModel::default();
        let batch = QueryBatch {
            name: "empty".into(),
            lengths: vec![],
        };
        assert_eq!(m.partition_cost(&batch, &[10, 20]), 0.0);
        assert_eq!(m.makespan(&batch, &[]), 0.0);
        let db = crate::dbformat::BlastDb {
            index: vec![],
            sequences: vec![],
            descriptions: vec![],
        };
        let b = QueryBatch::from_db("100", &db, 5, Some(100), 1);
        assert!(b.lengths.is_empty());
    }
}
