//! Index recalculation: rebuild start pointers after partitioning.
//!
//! After sequences are distributed, each partition becomes an independent
//! database file, so the `seq_start`/`desc_start` offsets must be
//! recomputed as prefix sums of the sizes within the partition (paper
//! Section III-C: "muBLASTP needs to recalculate the start pointers of
//! sequence data and description data. This process has been implemented
//! as a user-defined add-on operator", citing [36]).
//!
//! Provided as a plain function ([`recalculate`]), a payload extractor
//! ([`extract_partition`]) that materializes a partition's own
//! [`BlastDb`], and as [`RecalcOperator`] — a
//! [`papar_core::operator::CustomOperator`] demonstrating the paper's
//! Figure 7 extension point.

use papar_core::operator::{CustomJobCtx, CustomOperator};
use papar_mr::stats::JobStats;
use papar_mr::Cluster;
use papar_record::batch::{Batch, Dataset};
use papar_record::Record;
use std::time::{Duration, Instant};

use crate::dbformat::{BlastDb, IndexEntry};
use crate::{DbError, Result};

/// Rebuild the start pointers of a partition's entries as prefix sums.
pub fn recalculate(entries: &[IndexEntry]) -> Vec<IndexEntry> {
    let mut out = Vec::with_capacity(entries.len());
    let mut seq_off = 0i32;
    let mut desc_off = 0i32;
    for e in entries {
        out.push(IndexEntry {
            seq_start: seq_off,
            seq_size: e.seq_size,
            desc_start: desc_off,
            desc_size: e.desc_size,
        });
        seq_off += e.seq_size;
        desc_off += e.desc_size;
    }
    out
}

/// Materialize one partition as a standalone database: copy each entry's
/// payload out of the source database and rebuild the pointers.
pub fn extract_partition(source: &BlastDb, entries: &[IndexEntry]) -> Result<BlastDb> {
    let mut sequences = Vec::new();
    let mut descriptions = Vec::new();
    let mut index = Vec::with_capacity(entries.len());
    for e in entries {
        let seq_end = e.seq_start as usize + e.seq_size as usize;
        let desc_end = e.desc_start as usize + e.desc_size as usize;
        if e.seq_start < 0 || seq_end > source.sequences.len() {
            return Err(DbError(format!(
                "entry sequence range {}..{seq_end} outside source payload",
                e.seq_start
            )));
        }
        if e.desc_start < 0 || desc_end > source.descriptions.len() {
            return Err(DbError(format!(
                "entry description range {}..{desc_end} outside source payload",
                e.desc_start
            )));
        }
        let seq_start = sequences.len() as i32;
        sequences.extend_from_slice(&source.sequences[e.seq_start as usize..seq_end]);
        let desc_start = descriptions.len() as i32;
        descriptions.extend_from_slice(&source.descriptions[e.desc_start as usize..desc_end]);
        index.push(IndexEntry {
            seq_start,
            seq_size: e.seq_size,
            desc_start,
            desc_size: e.desc_size,
        });
    }
    Ok(BlastDb {
        index,
        sequences,
        descriptions,
    })
}

/// The user-defined add-on operator of paper Section III-C, registered in
/// PaPar workflows as `RecalcIndex`.
///
/// A map-only local job: every node rewrites the pointers of each local
/// fragment (each fragment is one partition produced by the distribute
/// job), producing the output dataset with the same fragment ordinals.
pub struct RecalcOperator;

impl CustomOperator for RecalcOperator {
    fn run(&self, cluster: &mut Cluster, ctx: &CustomJobCtx) -> papar_core::Result<JobStats> {
        let n = cluster.num_nodes();
        let mut stats = JobStats {
            name: ctx.id.clone(),
            map_time_by_node: vec![Duration::ZERO; n],
            reduce_time_by_node: vec![Duration::ZERO; n],
            ..Default::default()
        };
        for node in 0..n {
            let t0 = Instant::now();
            let mut outputs: Vec<(u32, Dataset)> = Vec::new();
            for input in &ctx.inputs {
                let frags: Vec<(u32, std::sync::Arc<Dataset>)> = cluster
                    .node(node)
                    .get(input)
                    .map(|fs| {
                        fs.into_iter()
                            .map(|f| (f.ordinal, std::sync::Arc::clone(&f.data)))
                            .collect()
                    })
                    .unwrap_or_default();
                for (ordinal, frag) in frags {
                    stats.records_in += frag.batch.record_count() as u64;
                    let records = frag.batch.clone().flatten();
                    let entries = records
                        .iter()
                        .map(IndexEntry::from_record)
                        .collect::<Result<Vec<_>>>()
                        .map_err(|e| papar_core::CoreError::exec(e.to_string()))?;
                    let rebuilt: Vec<Record> = recalculate(&entries)
                        .into_iter()
                        .map(IndexEntry::to_record)
                        .collect();
                    stats.records_out += rebuilt.len() as u64;
                    outputs.push((
                        ordinal,
                        Dataset::new(ctx.input_schema.clone(), Batch::Flat(rebuilt)),
                    ));
                }
            }
            for (ordinal, ds) in outputs {
                // Replicated like every materialized fragment, so node
                // crashes after this job stay recoverable.
                cluster.put_fragment(node, &ctx.output, ordinal, ds)?;
            }
            stats.map_time_by_node[node] = t0.elapsed();
        }
        let recovery = cluster.take_recovery();
        let net = *cluster.net();
        stats.absorb_recovery(recovery, &net);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::DbSpec;

    #[test]
    fn recalculate_builds_prefix_sums() {
        let entries = vec![
            IndexEntry {
                seq_start: 500,
                seq_size: 10,
                desc_start: 900,
                desc_size: 5,
            },
            IndexEntry {
                seq_start: 100,
                seq_size: 20,
                desc_start: 700,
                desc_size: 7,
            },
        ];
        let out = recalculate(&entries);
        assert_eq!(out[0].seq_start, 0);
        assert_eq!(out[0].desc_start, 0);
        assert_eq!(out[1].seq_start, 10);
        assert_eq!(out[1].desc_start, 5);
        assert_eq!(out[1].seq_size, 20);
        assert!(recalculate(&[]).is_empty());
    }

    #[test]
    fn extract_partition_produces_valid_standalone_db() {
        let db = DbSpec::env_nr_scaled(100, 13).generate();
        // Take every third entry as a fake partition.
        let part: Vec<IndexEntry> = db.index.iter().copied().step_by(3).collect();
        let sub = extract_partition(&db, &part).unwrap();
        sub.validate().unwrap();
        assert_eq!(sub.len(), part.len());
        // Payload content must match the source sequences.
        for (i, e) in part.iter().enumerate() {
            let original = &db.sequences[e.seq_start as usize..(e.seq_start + e.seq_size) as usize];
            assert_eq!(sub.sequence(i), original);
        }
    }

    #[test]
    fn extract_partition_rejects_out_of_range() {
        let db = DbSpec::env_nr_scaled(10, 1).generate();
        let bogus = IndexEntry {
            seq_start: i32::MAX - 10,
            seq_size: 100,
            desc_start: 0,
            desc_size: 0,
        };
        assert!(extract_partition(&db, &[bogus]).is_err());
    }
}
